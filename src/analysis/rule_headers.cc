// Header hygiene: every header starts with `#pragma once`, and every
// include must earn its place. Unused-include detection is conservative
// in the only safe direction — project headers contribute their
// transitively provided symbols (over-approximated), and standard
// headers are matched against a curated symbol table; a header not in
// the table is never flagged.
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/project.h"
#include "analysis/rules.h"

namespace piggyweb::analysis {

namespace {

// Representative symbols per standard header. Generous on purpose: an
// extra symbol can only suppress a finding, a missing one invents a
// false positive. Headers absent from this table are skipped entirely.
const std::map<std::string_view, std::vector<std::string_view>>&
std_header_symbols() {
  static const std::map<std::string_view, std::vector<std::string_view>>
      kTable = {
          {"algorithm",
           {"sort", "stable_sort", "min", "max", "clamp", "find", "find_if",
            "find_if_not", "lower_bound", "upper_bound", "binary_search",
            "count", "count_if", "transform", "copy", "copy_if", "fill",
            "fill_n", "all_of", "any_of", "none_of", "max_element",
            "min_element", "minmax_element", "remove", "remove_if",
            "unique", "reverse", "rotate", "partial_sort", "nth_element",
            "equal", "mismatch", "merge", "set_intersection", "set_union",
            "partition", "stable_partition", "is_sorted", "shuffle",
            "generate", "iota", "for_each", "swap"}},
          {"array", {"array", "to_array"}},
          {"atomic",
           {"atomic", "atomic_flag", "atomic_ref", "memory_order",
            "memory_order_relaxed", "memory_order_consume",
            "memory_order_acquire", "memory_order_release",
            "memory_order_acq_rel", "memory_order_seq_cst",
            "atomic_thread_fence", "atomic_signal_fence",
            "kill_dependency"}},
          {"bit",
           {"bit_cast", "popcount", "countl_zero", "countr_zero",
            "bit_ceil", "bit_floor", "bit_width", "rotl", "rotr",
            "has_single_bit", "endian"}},
          {"cassert", {"assert"}},
          {"cctype",
           {"isalpha", "isdigit", "isalnum", "isspace", "isupper",
            "islower", "toupper", "tolower", "isxdigit", "ispunct",
            "isprint", "iscntrl"}},
          {"cerrno", {"errno", "ERANGE", "EINVAL", "ENOENT"}},
          {"charconv",
           {"from_chars", "to_chars", "chars_format", "from_chars_result",
            "to_chars_result"}},
          {"chrono",
           {"chrono", "duration", "milliseconds", "microseconds",
            "nanoseconds", "seconds", "minutes", "hours", "steady_clock",
            "system_clock", "high_resolution_clock", "duration_cast",
            "time_point"}},
          {"cinttypes", {"PRIu64", "PRId64", "PRIx64", "imaxabs", "strtoimax"}},
          {"cmath",
           {"sqrt", "pow", "exp", "log", "log2", "log10", "fabs", "abs",
            "floor", "ceil", "round", "lround", "llround", "fmod", "isnan",
            "isinf", "isfinite", "nan", "hypot", "exp2", "expm1", "log1p",
            "erf", "lgamma", "tgamma", "sin", "cos", "tan", "atan",
            "atan2", "cbrt", "trunc", "copysign", "nextafter", "HUGE_VAL",
            "INFINITY", "NAN"}},
          {"condition_variable", {"condition_variable", "cv_status", "notify_all_at_thread_exit"}},
          {"csignal", {"signal", "raise", "sig_atomic_t", "SIGINT", "SIGTERM", "SIGABRT"}},
          {"cstddef",
           {"size_t", "ptrdiff_t", "nullptr_t", "byte", "max_align_t",
            "offsetof", "NULL"}},
          {"cstdint",
           {"uint8_t", "uint16_t", "uint32_t", "uint64_t", "int8_t",
            "int16_t", "int32_t", "int64_t", "uintptr_t", "intptr_t",
            "uintmax_t", "intmax_t", "uint_fast32_t", "uint_least32_t",
            "UINT32_MAX", "UINT64_MAX", "INT32_MAX", "INT64_MAX",
            "INT32_MIN", "INT64_MIN", "SIZE_MAX", "UINT8_MAX",
            "UINT16_MAX"}},
          {"cstdio",
           {"printf", "fprintf", "snprintf", "sprintf", "sscanf", "fopen",
            "fclose", "fread", "fwrite", "fgets", "fputs", "fputc",
            "fgetc", "fflush", "fseek", "ftell", "rewind", "remove",
            "rename", "perror", "stdout", "stderr", "stdin", "FILE",
            "EOF", "SEEK_SET", "SEEK_END", "SEEK_CUR", "puts", "putchar",
            "getline", "tmpfile", "setvbuf"}},
          {"cstdlib",
           {"malloc", "calloc", "realloc", "free", "exit", "abort",
            "atexit", "getenv", "setenv", "system", "strtol", "strtoul",
            "strtoll", "strtoull", "strtod", "strtof", "atoi", "atol",
            "atof", "qsort", "bsearch", "EXIT_SUCCESS", "EXIT_FAILURE",
            "rand", "srand", "RAND_MAX", "labs", "llabs", "div", "ldiv",
            "mkstemp"}},
          {"cstring",
           {"memcpy", "memmove", "memset", "memcmp", "memchr", "strlen",
            "strcmp", "strncmp", "strcpy", "strncpy", "strcat", "strncat",
            "strchr", "strrchr", "strstr", "strtok", "strerror", "strdup",
            "strcasecmp", "strncasecmp"}},
          {"ctime",
           {"time", "time_t", "tm", "localtime", "gmtime", "strftime",
            "mktime", "difftime", "clock", "clock_t", "CLOCKS_PER_SEC",
            "timespec", "nanosleep", "asctime", "ctime"}},
          {"deque", {"deque"}},
          {"exception",
           {"exception", "terminate", "set_terminate", "exception_ptr",
            "current_exception", "rethrow_exception", "uncaught_exceptions"}},
          {"filesystem",
           {"filesystem", "path", "directory_iterator",
            "recursive_directory_iterator", "create_directories",
            "remove_all", "exists", "is_directory", "is_regular_file",
            "file_size", "temp_directory_path", "current_path",
            "canonical", "relative", "copy_file", "rename", "status"}},
          {"fstream", {"ifstream", "ofstream", "fstream", "filebuf"}},
          {"functional",
           {"function", "bind", "ref", "cref", "reference_wrapper",
            "hash", "plus", "minus", "less", "greater", "equal_to",
            "not_fn", "invoke", "mem_fn"}},
          {"initializer_list", {"initializer_list"}},
          {"iomanip",
           {"setw", "setprecision", "setfill", "fixed", "scientific",
            "hex", "dec", "oct", "quoted", "setbase"}},
          {"iostream",
           {"cout", "cerr", "cin", "clog", "endl", "ostream", "istream",
            "iostream", "flush", "ws", "getline"}},
          {"iterator",
           {"back_inserter", "inserter", "front_inserter", "distance",
            "advance", "next", "prev", "begin", "end", "size",
            "iterator_traits", "input_iterator_tag", "ostream_iterator",
            "istream_iterator", "make_move_iterator"}},
          {"limits", {"numeric_limits"}},
          {"list", {"list"}},
          {"map", {"map", "multimap"}},
          {"memory",
           {"unique_ptr", "shared_ptr", "weak_ptr", "make_unique",
            "make_shared", "allocator", "addressof", "align",
            "enable_shared_from_this", "default_delete",
            "allocator_traits", "destroy_at", "construct_at",
            "pointer_traits", "static_pointer_cast", "dynamic_pointer_cast"}},
          {"mutex",
           {"mutex", "recursive_mutex", "timed_mutex", "lock_guard",
            "unique_lock", "scoped_lock", "once_flag", "call_once",
            "try_lock", "lock", "adopt_lock", "defer_lock",
            "try_to_lock"}},
          {"new",
           {"nothrow", "bad_alloc", "launder", "align_val_t",
            "hardware_destructive_interference_size",
            "hardware_constructive_interference_size",
            "set_new_handler"}},
          {"numeric",
           {"accumulate", "iota", "inner_product", "partial_sum",
            "adjacent_difference", "reduce", "transform_reduce", "gcd",
            "lcm", "midpoint", "exclusive_scan", "inclusive_scan"}},
          {"optional", {"optional", "nullopt", "make_optional", "in_place"}},
          {"queue", {"queue", "priority_queue"}},
          {"random",
           {"mt19937", "mt19937_64", "random_device",
            "uniform_int_distribution", "uniform_real_distribution",
            "normal_distribution", "bernoulli_distribution",
            "exponential_distribution", "poisson_distribution",
            "discrete_distribution", "default_random_engine",
            "minstd_rand", "seed_seq", "geometric_distribution"}},
          {"ratio", {"ratio", "milli", "micro", "nano", "kilo", "mega"}},
          {"regex",
           {"regex", "smatch", "cmatch", "regex_match", "regex_search",
            "regex_replace", "regex_iterator", "sregex_iterator"}},
          {"set", {"set", "multiset"}},
          {"shared_mutex",
           {"shared_mutex", "shared_timed_mutex", "shared_lock"}},
          {"span", {"span", "dynamic_extent", "as_bytes", "as_writable_bytes"}},
          {"sstream",
           {"stringstream", "istringstream", "ostringstream", "stringbuf"}},
          {"stdexcept",
           {"runtime_error", "logic_error", "invalid_argument",
            "out_of_range", "length_error", "domain_error", "range_error",
            "overflow_error", "underflow_error"}},
          {"string",
           {"string", "to_string", "stoi", "stol", "stoul", "stoull",
            "stoll", "stod", "stof", "getline", "char_traits", "npos",
            "basic_string", "u8string", "wstring"}},
          {"string_view", {"string_view", "basic_string_view", "wstring_view"}},
          {"system_error",
           {"error_code", "error_category", "system_error", "errc",
            "make_error_code", "generic_category", "system_category"}},
          {"thread",
           {"thread", "this_thread", "sleep_for", "sleep_until", "yield",
            "get_id", "hardware_concurrency", "jthread"}},
          {"tuple",
           {"tuple", "make_tuple", "get", "tie", "tuple_size",
            "tuple_element", "apply", "forward_as_tuple", "tuple_cat",
            "ignore"}},
          {"type_traits",
           {"enable_if", "enable_if_t", "is_same", "is_same_v", "decay",
            "decay_t", "remove_reference", "remove_reference_t",
            "remove_cv", "remove_cv_t", "is_integral", "is_integral_v",
            "is_floating_point", "is_floating_point_v", "is_unsigned",
            "is_unsigned_v", "is_signed", "is_signed_v", "conditional",
            "conditional_t", "is_trivially_copyable",
            "is_trivially_copyable_v", "underlying_type",
            "underlying_type_t", "invoke_result", "invoke_result_t",
            "is_convertible", "is_convertible_v", "void_t",
            "is_constructible", "is_constructible_v", "true_type",
            "false_type", "integral_constant", "is_base_of",
            "is_base_of_v", "is_enum", "is_enum_v", "is_arithmetic",
            "is_arithmetic_v", "common_type", "common_type_t",
            "is_invocable", "is_invocable_v"}},
          {"unordered_map", {"unordered_map", "unordered_multimap"}},
          {"unordered_set", {"unordered_set", "unordered_multiset"}},
          {"utility",
           {"move", "forward", "pair", "make_pair", "swap", "exchange",
            "declval", "in_place", "index_sequence",
            "make_index_sequence", "integer_sequence", "as_const",
            "cmp_less", "cmp_greater", "cmp_equal", "in_range", "piecewise_construct"}},
          {"variant",
           {"variant", "visit", "get_if", "holds_alternative",
            "monostate", "variant_size", "variant_alternative",
            "bad_variant_access"}},
          {"vector", {"vector"}},
      };
  return kTable;
}

}  // namespace

void check_headers(const Project& project, const SourceFile& file,
                   std::vector<Diagnostic>& out) {
  const auto& toks = file.tokens;

  if (file.is_header()) {
    const bool has_pragma_once =
        toks.size() >= 3 && toks[0].is_punct("#") &&
        toks[1].is_ident("pragma") && toks[2].is_ident("once");
    if (!has_pragma_once) {
      out.push_back({file.path, 1, "hdr-pragma-once",
                     "header must start with '#pragma once'"});
    }
  }

  // Every identifier referenced in this file.
  std::set<std::string_view> used;
  for (const Token& t : toks) {
    if (t.kind == TokKind::kIdent) used.insert(t.text);
  }
  const auto uses_any = [&](const std::vector<std::string_view>& syms) {
    for (const auto sym : syms) {
      if (used.count(sym) != 0) return true;
    }
    return false;
  };

  const std::string file_stem(stem_of(file.path));
  for (const IncludeRef& inc : includes_of(file)) {
    if (inc.spec.size() < 2) continue;
    const std::string_view inner(inc.spec.data() + 1, inc.spec.size() - 2);
    if (inc.spec.front() == '<') {
      const auto& table = std_header_symbols();
      const auto it = table.find(inner);
      if (it == table.end()) continue;  // unknown header: never flagged
      if (!uses_any(it->second)) {
        out.push_back({file.path, inc.line, "hdr-unused-include",
                       "include <" + std::string(inner) +
                           "> unused — none of its symbols are referenced"});
      }
      continue;
    }
    const std::string resolved = project.resolve_include(file, inner);
    if (resolved.empty()) continue;  // outside the project (gtest, ...)
    const std::string inc_stem(stem_of(resolved));
    if (inc_stem == file_stem || file_stem == inc_stem + "_test") {
      continue;  // a .cc's own header is always kept
    }
    const auto* provided = project.provided_symbols(resolved);
    if (provided == nullptr || provided->empty()) continue;
    bool any_used = false;
    for (const auto sym : *provided) {
      if (used.count(sym) != 0) {
        any_used = true;
        break;
      }
    }
    if (!any_used) {
      out.push_back({file.path, inc.line, "hdr-unused-include",
                     "include \"" + std::string(inner) +
                         "\" unused — none of its (transitive) symbols "
                         "are referenced"});
    }
  }
}

}  // namespace piggyweb::analysis

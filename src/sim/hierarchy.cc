#include "sim/hierarchy.h"

#include "sim/ground_truth.h"

#include "util/expect.h"
#include "util/hash.h"

namespace piggyweb::sim {

HierarchySimulator::HierarchySimulator(
    const trace::SyntheticWorkload& workload, const HierarchyConfig& config)
    : workload_(workload), config_(config) {
  PW_EXPECT(config.child_proxies > 0);
}

HierarchyResult HierarchySimulator::run() {
  const auto& trace = workload_.trace;
  HierarchyResult result;

  // Children and their coherency agents.
  std::vector<Child> children(config_.child_proxies);
  for (auto& child : children) {
    child.cache = std::make_unique<proxy::ProxyCache>(config_.child_cache);
    child.coherency =
        std::make_unique<proxy::CoherencyAgent>(*child.cache);
  }
  proxy::ProxyCache parent(config_.parent_cache);
  proxy::CoherencyAgent parent_coherency(parent);

  // The parent is the single client the servers see; it keeps one filter
  // policy (RPV lists per server).
  proxy::FilterPolicyConfig fpc;
  fpc.base = config_.base_filter;
  fpc.rpv = config_.rpv;
  proxy::FilterPolicy filter_policy(
      fpc, std::make_unique<core::AlwaysEnable>());

  server::VolumeCenter center(config_.volumes, trace.paths());

  // Ground truth per (server, path), resolved lazily.
  std::vector<const trace::SiteModel*> site_by_server(
      trace.servers().size(), nullptr);
  for (std::uint32_t id = 0; id < trace.servers().size(); ++id) {
    site_by_server[id] = workload_.site_for(trace.servers().str(id));
  }
  GroundTruthMeta truth(workload_, site_by_server);
  center.set_meta_override(&truth);
  std::unordered_map<std::uint64_t, std::uint32_t> resource_index;

  for (const auto& req : trace.requests()) {
    ++result.client_requests;
    const auto* site = site_by_server[req.server];
    if (site == nullptr) continue;
    const proxy::CacheKey key{req.server, req.path};
    const auto rkey = key.packed();
    auto res_it = resource_index.find(rkey);
    if (res_it == resource_index.end()) {
      res_it =
          resource_index
              .emplace(rkey, site->index_of(trace.paths().str(req.path)))
              .first;
    }
    const auto res_idx = res_it->second;
    if (res_idx >= site->size()) continue;
    const auto true_lm = site->last_modified(res_idx, req.time);
    const auto size = site->resource(res_idx).size;

    auto& child = children[util::mix64(req.source) % children.size()];

    // --- child level -------------------------------------------------------
    const auto child_outcome = child.cache->lookup(key, req.time);
    if (child_outcome == proxy::LookupOutcome::kFreshHit) {
      ++result.child_fresh_hits;
      const auto cached = child.cache->cached_last_modified(key);
      if (cached && *cached < true_lm.value) ++result.stale_served;
      continue;
    }

    // --- parent level ------------------------------------------------------
    const auto parent_outcome = parent.lookup(key, req.time);
    if (parent_outcome == proxy::LookupOutcome::kFreshHit) {
      ++result.parent_fresh_hits;
      const auto cached = parent.cached_last_modified(key);
      if (cached && *cached < true_lm.value) ++result.stale_served;
      // The parent's copy flows down to the child.
      child.cache->insert(key, size, cached.value_or(true_lm.value),
                          req.time);
      continue;
    }

    // --- origin ------------------------------------------------------------
    ++result.server_contacts;
    core::ProxyFilter filter;
    if (config_.piggybacking) {
      filter = filter_policy.filter_for(req.server, req.time);
    } else {
      filter.enabled = false;
    }
    // Validation vs full fetch is decided against ground truth, as in the
    // end-to-end simulator.
    const auto parent_lm = parent.cached_last_modified(key);
    if (parent_outcome == proxy::LookupOutcome::kStaleHit && parent_lm &&
        *parent_lm >= true_lm.value) {
      parent.revalidate(key, req.time);
    } else {
      parent.insert(key, size, true_lm.value, req.time);
    }
    child.cache->insert(key, size, true_lm.value, req.time);

    // The server sees the *parent* as its client: one source.
    truth.set_now(req.time);
    truth.note_access(req.server, req.path);
    const auto message = center.observe(
        req.server, /*source=*/0xfffffff0u, req.path, req.time, size,
        true_lm.value, filter);
    if (message.empty()) continue;
    filter_policy.on_piggyback(req.server, message.volume, req.time);
    parent_coherency.process(req.server, message, req.time);
    if (config_.relay_to_children) {
      child.coherency->process(req.server, message, req.time);
    }
  }

  result.parent_coherency = parent_coherency.stats();
  for (const auto& child : children) {
    const auto& stats = child.coherency->stats();
    result.child_coherency.piggybacks_processed +=
        stats.piggybacks_processed;
    result.child_coherency.elements_processed += stats.elements_processed;
    result.child_coherency.refreshed += stats.refreshed;
    result.child_coherency.invalidated += stats.invalidated;
    result.child_coherency.not_cached += stats.not_cached;
  }
  return result;
}

}  // namespace piggyweb::sim

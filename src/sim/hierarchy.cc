#include "sim/hierarchy.h"

#include "util/expect.h"

namespace piggyweb::sim {

HierarchySimulator::HierarchySimulator(
    const trace::SyntheticWorkload& workload, const HierarchyConfig& config)
    : workload_(workload), config_(config) {
  PW_EXPECT(config.child_proxies > 0);
}

Topology HierarchySimulator::topology_for(const HierarchyConfig& config) {
  Topology topology;
  topology.relay_to_descendants = config.relay_to_children;

  ProxyNodeSpec parent;
  parent.name = "parent";
  parent.parent = -1;
  parent.cache = config.parent_cache;
  parent.base_filter = config.base_filter;
  parent.rpv = config.rpv;
  // The server sees the *parent* as its client: one source.
  parent.upstream_source = 0xfffffff0u;
  topology.nodes.push_back(std::move(parent));

  for (std::size_t i = 0; i < config.child_proxies; ++i) {
    ProxyNodeSpec child;
    child.name = "child" + std::to_string(i);
    child.parent = 0;
    child.cache = config.child_cache;
    topology.nodes.push_back(std::move(child));
  }
  return topology;
}

EngineConfig HierarchySimulator::engine_config_for(
    const HierarchyConfig& config) {
  EngineConfig engine;
  engine.piggybacking = config.piggybacking;
  engine.volumes = config.volumes;
  return engine;
}

HierarchyResult HierarchySimulator::run() {
  SimulationEngine engine(workload_, topology_for(config_),
                          engine_config_for(config_));
  const auto engine_result = engine.run();

  HierarchyResult result;
  result.client_requests = engine_result.client_requests;
  result.child_fresh_hits = engine_result.leaf_fresh_hits();
  result.parent_fresh_hits = engine_result.root_fresh_hits();
  result.server_contacts = engine_result.server_contacts;
  result.stale_served = engine_result.stale_served;
  result.parent_coherency = engine_result.merged_root_coherency();
  result.child_coherency = engine_result.merged_leaf_coherency();
  return result;
}

}  // namespace piggyweb::sim

#include "sim/ground_truth.h"

namespace piggyweb::sim {

core::ResourceMeta GroundTruthMeta::lookup(util::InternId server,
                                           util::InternId resource) const {
  core::ResourceMeta meta;
  const auto it =
      counts_.find((static_cast<std::uint64_t>(server) << 32) | resource);
  meta.access_count = it == counts_.end() ? 0 : it->second;
  if (server >= site_by_server_->size()) return meta;
  const auto* site = (*site_by_server_)[server];
  if (site == nullptr) return meta;
  const auto idx = site->index_of(workload_->trace.paths().str(resource));
  if (idx >= site->size()) return meta;
  const auto& res = site->resource(idx);
  meta.size = res.size;
  meta.type = res.type;
  meta.last_modified = site->last_modified(idx, now_).value;
  return meta;
}

}  // namespace piggyweb::sim

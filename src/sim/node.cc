#include "sim/node.h"

namespace piggyweb::sim {
namespace {

proxy::FilterPolicyConfig make_filter_policy_config(
    const ProxyNodeSpec& spec) {
  proxy::FilterPolicyConfig fp;
  fp.base = spec.base_filter;
  fp.rpv = spec.rpv;
  fp.use_rpv = spec.use_rpv;
  return fp;
}

std::unique_ptr<core::FrequencyPolicy> make_frequency_policy(
    const ProxyNodeSpec& spec) {
  if (spec.min_piggyback_interval > 0) {
    return std::make_unique<core::MinIntervalEnable>(
        spec.min_piggyback_interval);
  }
  return std::make_unique<core::AlwaysEnable>();
}

}  // namespace

ProxyNode::ProxyNode(const ProxyNodeSpec& node_spec, int node_depth)
    : spec(node_spec),
      depth(node_depth),
      cache(spec.cache),
      coherency(cache),
      prefetcher(spec.prefetch, cache),
      adaptive_ttl(spec.adaptive_ttl),
      pcv(spec.pcv, cache),
      filter_policy(make_filter_policy_config(spec),
                    make_frequency_policy(spec)) {
  if (spec.link) {
    connections.emplace(spec.link->persistent_idle_timeout);
    cost.emplace(*spec.link);
  }
}

}  // namespace piggyweb::sim

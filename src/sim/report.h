// Minimal fixed-width table rendering for the bench binaries, which print
// the paper's tables/figure series as aligned text.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace piggyweb::sim {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& row(std::vector<std::string> cells);
  void print(std::ostream& os) const;

  // Cell formatting helpers.
  static std::string num(double v, int decimals = 2);
  static std::string pct(double fraction, int decimals = 1);
  static std::string count(std::uint64_t v);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace piggyweb::sim

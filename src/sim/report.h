// Minimal fixed-width table rendering for the bench binaries, which print
// the paper's tables/figure series as aligned text.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace piggyweb::sim {

struct EvalResult;

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& row(std::vector<std::string> cells);
  void print(std::ostream& os) const;

  // Cell formatting helpers.
  static std::string num(double v, int decimals = 2);
  static std::string pct(double fraction, int decimals = 1);
  static std::string count(std::uint64_t v);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// The §3.1 metric table for one evaluation, rendered to a string — shared
// by piggyweb_evaluate and the parallel/serial equivalence tests, so
// "identical report output" is asserted against the exact production
// rendering.
std::string render_eval_report(const EvalResult& result);

}  // namespace piggyweb::sim

// Minimal fixed-width table rendering for the bench binaries, which print
// the paper's tables/figure series as aligned text.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace piggyweb::sim {

struct EvalResult;

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& row(std::vector<std::string> cells);
  void print(std::ostream& os) const;

  // Cell formatting helpers.
  static std::string num(double v, int decimals = 2);
  static std::string pct(double fraction, int decimals = 1);
  static std::string count(std::uint64_t v);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// One row of the §3.1 metric report: a stable machine-readable key (the
// JSON field name), the human label the text table prints, and the value.
// Both renderers below iterate the same eval_report_fields() list, so the
// two outputs can never drift apart field-by-field.
struct EvalReportField {
  enum class Kind { kPercent, kNumber, kCount };
  const char* key;
  const char* label;
  Kind kind;
  double value;  // counts are exact: all counters stay far below 2^53
};

// The report rows in render order — the single source of truth.
std::vector<EvalReportField> eval_report_fields(const EvalResult& result);

// The §3.1 metric table for one evaluation, rendered to a string — shared
// by piggyweb_evaluate and the parallel/serial equivalence tests, so
// "identical report output" is asserted against the exact production
// rendering.
std::string render_eval_report(const EvalResult& result);

// The same fields as a JSON object (keys in render order): percents as
// fractions in [0,1], counts as integers. For piggyweb_evaluate
// --report=json and anything downstream that diffs runs.
std::string render_eval_report_json(const EvalResult& result);

}  // namespace piggyweb::sim

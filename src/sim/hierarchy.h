// Two-level cache hierarchy (§1: "our techniques are applicable to the
// general case of hierarchical caching"; §5 lists multi-level caches as
// future work).
//
// Clients are partitioned across several child proxies that share one
// parent proxy; the parent talks to the origin servers (volume center on
// that path). Piggybacks arrive at the parent and are optionally relayed
// to the requesting child, so both cache levels get coherency refreshes
// and invalidations from a single server message.
//
// Since the engine refactor this class is a thin preset: parent = the
// root node of a sim::Topology, children = its leaves, run by
// SimulationEngine (sim/engine.h). Counters are pinned bit-identical to
// the pre-engine implementation by tests/sim_golden_regression_test.
#pragma once

#include "proxy/cache.h"
#include "proxy/coherency.h"
#include "sim/engine.h"
#include "trace/synthetic.h"

namespace piggyweb::sim {

struct HierarchyConfig {
  std::size_t child_proxies = 4;
  proxy::CacheConfig child_cache;    // small, near the clients
  proxy::CacheConfig parent_cache;   // large, shared
  core::ProxyFilter base_filter;
  core::RpvConfig rpv;
  volume::DirectoryVolumeConfig volumes;
  bool piggybacking = true;
  bool relay_to_children = true;  // parent forwards piggybacks downstream
};

struct HierarchyResult {
  std::uint64_t client_requests = 0;
  std::uint64_t child_fresh_hits = 0;    // served at a child, no upstream
  std::uint64_t parent_fresh_hits = 0;   // served at the parent
  std::uint64_t server_contacts = 0;     // reached the origin
  std::uint64_t stale_served = 0;        // fresh hit of an outdated copy
  proxy::CoherencyStats parent_coherency;
  proxy::CoherencyStats child_coherency;  // merged over children

  double child_hit_rate() const {
    return client_requests == 0
               ? 0.0
               : static_cast<double>(child_fresh_hits) /
                     static_cast<double>(client_requests);
  }
  double overall_hit_rate() const {
    return client_requests == 0
               ? 0.0
               : static_cast<double>(child_fresh_hits + parent_fresh_hits) /
                     static_cast<double>(client_requests);
  }
  double server_contact_rate() const {
    return client_requests == 0
               ? 0.0
               : static_cast<double>(server_contacts) /
                     static_cast<double>(client_requests);
  }
};

class HierarchySimulator {
 public:
  HierarchySimulator(const trace::SyntheticWorkload& workload,
                     const HierarchyConfig& config);

  HierarchyResult run();

  // The engine preset this harness runs: parent at node 0 facing the
  // origins (aggregating its clients behind one source id, no
  // cost-accounted links), children at nodes 1..n. Exposed so tests and
  // benches can compose variations on the preset.
  static Topology topology_for(const HierarchyConfig& config);
  static EngineConfig engine_config_for(const HierarchyConfig& config);

 private:
  const trace::SyntheticWorkload& workload_;
  HierarchyConfig config_;
};

}  // namespace piggyweb::sim

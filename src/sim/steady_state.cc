#include "sim/steady_state.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <vector>

#include "util/expect.h"
#include "util/rng.h"

namespace piggyweb::sim {

namespace {

// Expected number of distinct objects seen in a window of t requests.
double expected_distinct(std::span<const double> pmf, double t) {
  double sum = 0;
  for (const double p : pmf) {
    if (p > 0) sum += 1 - std::exp(-p * t);
  }
  return sum;
}

std::size_t positive_count(std::span<const double> pmf) {
  std::size_t count = 0;
  for (const double p : pmf) {
    PW_EXPECT(p >= 0);
    if (p > 0) ++count;
  }
  return count;
}

}  // namespace

double lru_characteristic_time(std::span<const double> pmf, double capacity) {
  PW_EXPECT(capacity > 0);
  PW_EXPECT(capacity < static_cast<double>(positive_count(pmf)));
  // expected_distinct is 0 at t=0 and increases to the positive count as
  // t -> inf, so a root exists; bracket it by doubling, then bisect.
  double hi = 1;
  while (expected_distinct(pmf, hi) < capacity) {
    hi *= 2;
    PW_ENSURE(hi < 1e30);  // unreachable: the bound above guarantees a root
  }
  double lo = 0;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (expected_distinct(pmf, mid) < capacity) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

double lru_zipf_steady_state(std::span<const double> pmf, double capacity) {
  if (capacity <= 0) return 0;
  const auto objects = positive_count(pmf);
  if (objects == 0) return 0;
  if (capacity >= static_cast<double>(objects)) return 1;
  const double t = lru_characteristic_time(pmf, capacity);
  double hit = 0;
  for (const double p : pmf) {
    if (p > 0) hit += p * (1 - std::exp(-p * t));
  }
  return hit;
}

double zipf_lru_hit_ratio(std::size_t catalog, double skew, double capacity) {
  const util::ZipfSampler zipf(catalog, skew);
  std::vector<double> pmf(catalog);
  for (std::size_t rank = 0; rank < catalog; ++rank) {
    pmf[rank] = zipf.pmf(rank);
  }
  return lru_zipf_steady_state(pmf, capacity);
}

double lfu_zipf_steady_state(std::span<const double> pmf, double capacity) {
  if (capacity <= 0) return 0;
  std::vector<double> sorted(pmf.begin(), pmf.end());
  std::sort(sorted.begin(), sorted.end(), std::greater<double>());
  double hit = 0;
  double slots = capacity;
  for (const double p : sorted) {
    if (slots <= 0 || p <= 0) break;
    hit += p * std::min(slots, 1.0);
    slots -= 1;
  }
  return std::min(hit, 1.0);
}

}  // namespace piggyweb::sim

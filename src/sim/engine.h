// Topology-general discrete-event simulation core.
//
// One engine drives the trace's clients through an arbitrary forest of
// proxy caches (sim::Topology) against simulated origin servers, with the
// transparent volume center on the proxy→origin links (§1's deployment
// story). Each request enters at the leaf its source hashes to, walks up
// the ancestor chain until a fresh cache copy is found (the copy then
// flows back down the path), and otherwise reaches the origin; the
// response's piggyback is processed by the origin-facing node's policies
// and optionally relayed down the request path so every cache level gets
// coherency work from a single server message (§5). Cost-accounted links
// model persistent connections, packets and latency.
//
// The end-to-end and hierarchy harnesses are thin topology presets over
// this engine (see sim/end_to_end.h, sim/hierarchy.h); their historical
// counters are pinned bit-identically by tests/sim_golden_regression_test.
#pragma once

#include <memory>
#include <vector>

#include "server/volume_center.h"
#include "sim/ground_truth.h"
#include "sim/node.h"
#include "sim/topology.h"
#include "trace/synthetic.h"
#include "util/flat_map.h"
#include "volume/probability.h"

namespace piggyweb::persist {
struct StateAccess;
}

namespace piggyweb::sim {

// Engine-wide knobs: piggyback generation and the wire-overhead constants
// shared by every link. Per-node behaviour lives in ProxyNodeSpec.
struct EngineConfig {
  bool piggybacking = true;               // master switch (baseline = off)
  volume::DirectoryVolumeConfig volumes;  // volume center scheme
  // When set, the volume center serves piggybacks from this offline-built
  // probability volume set instead of online directory volumes.
  const volume::ProbabilityVolumeSet* probability_volumes = nullptr;
  std::size_t probability_max_candidates = 50;
  std::uint64_t request_overhead_bytes = 200;  // headers etc.
  std::uint64_t response_overhead_bytes = 200;
};

struct EngineResult {
  std::vector<NodeStats> nodes;
  server::VolumeCenterStats center;
  net::ConnectionStats connections;  // merged over all accounted links

  std::uint64_t client_requests = 0;
  std::uint64_t unresolved = 0;      // unknown host / non-site resource
  std::uint64_t server_contacts = 0;
  std::uint64_t validations = 0;
  std::uint64_t validations_not_modified = 0;
  std::uint64_t stale_served = 0;
  std::uint64_t piggyback_bytes = 0;
  std::uint64_t body_bytes = 0;
  std::uint64_t total_packets = 0;
  double user_latency_sum = 0;
  double prefetch_latency_sum = 0;

  // Aggregations over the node graph.
  std::uint64_t total_fresh_hits() const;
  std::uint64_t leaf_fresh_hits() const;
  std::uint64_t root_fresh_hits() const;
  proxy::CoherencyStats merged_leaf_coherency() const;
  proxy::CoherencyStats merged_root_coherency() const;

  double overall_hit_rate() const {
    return client_requests == 0
               ? 0.0
               : static_cast<double>(total_fresh_hits()) /
                     static_cast<double>(client_requests);
  }
  double leaf_hit_rate() const {
    return client_requests == 0
               ? 0.0
               : static_cast<double>(leaf_fresh_hits()) /
                     static_cast<double>(client_requests);
  }
  double server_contact_rate() const {
    return client_requests == 0
               ? 0.0
               : static_cast<double>(server_contacts) /
                     static_cast<double>(client_requests);
  }
  double mean_user_latency() const {
    return client_requests == 0
               ? 0.0
               : user_latency_sum / static_cast<double>(client_requests);
  }
};

class SimulationEngine {
 public:
  SimulationEngine(const trace::SyntheticWorkload& workload,
                   const Topology& topology, const EngineConfig& config);

  EngineResult run();

 private:
  friend struct piggyweb::persist::StateAccess;

  // The leaf→…→root node-index chain a request from `source` traverses.
  const std::vector<int>& path_for_source(util::InternId source) const;

  void process_piggyback(const std::vector<int>& path, util::InternId server,
                         const core::PiggybackMessage& message,
                         util::TimePoint now);
  void apply_adaptive_ttl_elements(ProxyNode& node, util::InternId server,
                                   const core::PiggybackMessage& message);

  const trace::SyntheticWorkload& workload_;
  Topology topology_;
  EngineConfig config_;

  std::vector<std::unique_ptr<ProxyNode>> nodes_;
  std::vector<std::vector<int>> leaf_paths_;  // per leaf, leaf→root chain

  server::VolumeCenter center_;
  std::optional<volume::ProbabilityVolumes> probability_provider_;
  GroundTruthMeta truth_meta_;

  // Site index per trace server id (resolved once up front).
  std::vector<const trace::SiteModel*> site_by_server_;
  // Resource index per (server, path) — memoized lookups.
  util::FlatMap<std::uint64_t, std::uint32_t> resource_index_;

  util::TimePoint trace_start_{};
  EngineResult result_;
};

}  // namespace piggyweb::sim

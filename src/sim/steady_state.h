// Analytical steady-state oracles for cache behaviour under the
// independent reference model (IRM).
//
// Che's approximation [Che, Tung & Wang 2002] estimates the steady-state
// hit ratio of an LRU cache of C unit-size objects under IRM with access
// probabilities p_i: an object stays cached for a *characteristic time*
// T_C — the time for C distinct other objects to arrive — so
//
//     hit ratio  H = sum_i p_i * (1 - e^(-p_i * T_C)),
//
// where T_C solves  sum_i (1 - e^(-p_i * T_C)) = C  (the expected number
// of distinct objects referenced in a window of T_C requests equals the
// capacity). The approximation is remarkably accurate for Zipf-like
// popularity — within a percent or two of simulation — which makes it a
// closed-form oracle for validating cache simulators: tests_oracle drives
// proxy::ProxyCache over seeded Zipf streams and requires the measured
// hit ratio to land within tolerance of this prediction.
#pragma once

#include <cstddef>
#include <span>

namespace piggyweb::sim {

// Characteristic time T_C for an LRU cache of `capacity` unit objects
// under IRM with the given access pmf (entries non-negative; zeros are
// fine). `capacity` must be positive and less than the number of objects
// with non-zero probability — at or above that the cache holds everything
// and the answer is degenerate (use lru_zipf_steady_state, which handles
// the clamp).
double lru_characteristic_time(std::span<const double> pmf, double capacity);

// Che's approximation of the steady-state LRU hit ratio. Returns 1.0 when
// the capacity covers every object with non-zero probability; 0.0 for an
// empty pmf or non-positive capacity.
double lru_zipf_steady_state(std::span<const double> pmf, double capacity);

// Convenience wrapper: steady-state LRU hit ratio for a Zipf(skew)
// popularity over `catalog` objects with a cache of `capacity` objects.
double zipf_lru_hit_ratio(std::size_t catalog, double skew, double capacity);

// Steady-state hit ratio of a perfect-LFU cache (the C most popular
// objects pinned): sum of the top-C probability masses, interpolating the
// fractional slot. An upper bound on any demand-driven policy's IRM hit
// ratio; useful as a sanity ceiling for the LRU oracle and simulators.
double lfu_zipf_steady_state(std::span<const double> pmf, double capacity);

}  // namespace piggyweb::sim

#include "sim/end_to_end.h"

#include <algorithm>

#include "core/wire_size.h"
#include "util/expect.h"

namespace piggyweb::sim {
namespace {

proxy::FilterPolicyConfig make_filter_policy_config(
    const EndToEndConfig& config) {
  proxy::FilterPolicyConfig fp;
  fp.base = config.base_filter;
  fp.rpv = config.rpv;
  fp.use_rpv = config.use_rpv;
  return fp;
}

std::unique_ptr<core::FrequencyPolicy> make_frequency_policy(
    const EndToEndConfig& config) {
  if (config.min_piggyback_interval > 0) {
    return std::make_unique<core::MinIntervalEnable>(
        config.min_piggyback_interval);
  }
  return std::make_unique<core::AlwaysEnable>();
}

}  // namespace

EndToEndSimulator::EndToEndSimulator(const trace::SyntheticWorkload& workload,
                                     const EndToEndConfig& config)
    : workload_(workload),
      config_(config),
      cache_(config.cache),
      filter_policy_(make_filter_policy_config(config),
                     make_frequency_policy(config)),
      coherency_(cache_),
      prefetcher_(config.prefetch, cache_),
      adaptive_ttl_(config.adaptive_ttl),
      pcv_(config.pcv, cache_),
      center_(config.volumes, workload.trace.paths()),
      truth_meta_(workload, site_by_server_),
      connections_(config.network.persistent_idle_timeout),
      cost_(config.network) {
  // Resolve each trace server id to its site model once.
  const auto& servers = workload.trace.servers();
  site_by_server_.assign(servers.size(), nullptr);
  for (std::uint32_t id = 0; id < servers.size(); ++id) {
    site_by_server_[id] = workload.site_for(servers.str(id));
  }
  center_.set_meta_override(&truth_meta_);
  if (config.probability_volumes != nullptr) {
    probability_provider_.emplace(config.probability_volumes,
                                  config.probability_max_candidates);
    center_.set_provider_override(&*probability_provider_);
  }
}

void EndToEndSimulator::handle_piggyback(
    util::InternId server, const core::PiggybackMessage& message,
    util::TimePoint now) {
  if (message.empty()) return;
  result_.piggyback_bytes +=
      core::piggyback_bytes(message, workload_.trace.paths());
  filter_policy_.on_piggyback(server, message.volume, now);

  if (config_.enable_adaptive_ttl) {
    for (const auto& element : message.elements) {
      const proxy::CacheKey key{server, element.resource};
      adaptive_ttl_.observe(key, element.last_modified);
      adaptive_ttl_.apply_to(cache_, key);
    }
  }
  if (config_.enable_coherency) {
    coherency_.process(server, message, now);
  }
  if (config_.enable_prefetch) {
    const auto planned = prefetcher_.plan(server, message, now);
    for (const auto& element : planned) {
      // Background fetch: costs bandwidth/packets but no user latency.
      const bool reused = connections_.use(0xfffffffeu, server, now);
      const auto cost = cost_.exchange(
          config_.request_overhead_bytes,
          element.size + config_.response_overhead_bytes, reused);
      result_.prefetch_latency_sum += cost.latency_seconds;
      result_.total_packets += cost.packets;
      result_.body_bytes += element.size;
      prefetcher_.complete(server, element, now);
    }
  }
}

EndToEndResult EndToEndSimulator::run() {
  const auto& trace = workload_.trace;
  for (const auto& req : trace.requests()) {
    ++result_.client_requests;
    const auto now = req.time;
    const proxy::CacheKey key{req.server, req.path};
    const auto* site = site_by_server_[req.server];
    if (site == nullptr) continue;  // unknown host: pass-through not modeled

    // Resolve ground truth for this resource.
    const auto rkey = key.packed();
    auto res_it = resource_index_.find(rkey);
    if (res_it == resource_index_.end()) {
      res_it = resource_index_
                   .emplace(rkey, site->index_of(trace.paths().str(req.path)))
                   .first;
    }
    const auto res_idx = res_it->second;
    if (res_idx >= site->size()) continue;  // not a site resource
    const auto& resource = site->resource(res_idx);
    const auto true_lm = site->last_modified(res_idx, now);

    prefetcher_.on_client_request(key, now);
    const auto outcome = cache_.lookup(key, now);

    if (outcome == proxy::LookupOutcome::kFreshHit) {
      // Served from cache with no network traffic. Was it actually fresh?
      const auto cached_lm = cache_.cached_last_modified(key);
      if (cached_lm && *cached_lm < true_lm.value) ++result_.stale_served;
      continue;
    }

    // Contact the server (miss: full GET; stale hit: If-Modified-Since).
    ++result_.server_contacts;
    const bool reused = connections_.use(req.source, req.server, now);
    core::ProxyFilter filter;
    if (config_.piggybacking) {
      filter = filter_policy_.filter_for(req.server, now);
    } else {
      filter.enabled = false;
    }

    std::uint64_t response_body = 0;
    if (outcome == proxy::LookupOutcome::kStaleHit) {
      ++result_.validations;
      const auto cached_lm = cache_.cached_last_modified(key);
      if (cached_lm && *cached_lm >= true_lm.value) {
        ++result_.validations_not_modified;  // 304
        cache_.revalidate(key, now);
      } else {
        response_body = resource.size;  // changed: fresh 200 body
        cache_.insert(key, resource.size, true_lm.value, now);
      }
    } else {
      response_body = resource.size;
      cache_.insert(key, resource.size, true_lm.value, now);
    }
    if (config_.enable_adaptive_ttl) {
      adaptive_ttl_.observe(key, true_lm.value);
      adaptive_ttl_.apply_to(cache_, key);
    }

    // PCV: batch soon-to-expire entries for this server onto the request;
    // verdicts come back on the same response (one exchange, no extra
    // round trips). The paper's [10] mechanism, driven by ground truth.
    std::uint64_t pcv_bytes = 0;
    if (config_.enable_pcv) {
      const auto items = pcv_.plan(req.server, now);
      if (!items.empty()) {
        core::ValidationReply reply;
        for (const auto& item : items) {
          const auto item_idx =
              site->index_of(trace.paths().str(item.resource));
          if (item_idx >= site->size()) continue;
          const auto current = site->last_modified(item_idx, now).value;
          if (item.last_modified >= current) {
            reply.fresh.push_back(item.resource);
          } else {
            reply.stale.push_back({item.resource, current});
          }
          // ~(url + 8B timestamp) each way, as in the §2.3 accounting.
          pcv_bytes +=
              2 * (trace.paths().str(item.resource).size() + 8);
        }
        pcv_.process(req.server, reply, now);
      }
    }

    // The volume center on the path injects the piggyback (filling
    // elements from authoritative metadata).
    truth_meta_.set_now(now);
    truth_meta_.note_access(req.server, req.path);
    const auto message =
        center_.observe(req.server, req.source, req.path, now,
                        resource.size, true_lm.value, filter);

    const auto piggy_bytes =
        core::piggyback_bytes(message, trace.paths());
    result_.piggyback_bytes += pcv_bytes;
    const auto cost = cost_.exchange(
        config_.request_overhead_bytes + pcv_bytes / 2,
        response_body + config_.response_overhead_bytes + piggy_bytes +
            pcv_bytes / 2,
        reused);
    result_.user_latency_sum += cost.latency_seconds;
    result_.total_packets += cost.packets;
    result_.body_bytes += response_body;

    handle_piggyback(req.server, message, now);
  }

  result_.cache = cache_.stats();
  result_.coherency = coherency_.stats();
  result_.prefetch = prefetcher_.stats();
  result_.pcv = pcv_.stats();
  result_.connections = connections_.stats();
  result_.center = center_.stats();
  return result_;
}

}  // namespace piggyweb::sim

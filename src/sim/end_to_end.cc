#include "sim/end_to_end.h"

namespace piggyweb::sim {

EndToEndSimulator::EndToEndSimulator(const trace::SyntheticWorkload& workload,
                                     const EndToEndConfig& config)
    : workload_(workload), config_(config) {}

Topology EndToEndSimulator::topology_for(const EndToEndConfig& config) {
  ProxyNodeSpec proxy;
  proxy.name = "proxy";
  proxy.parent = -1;
  proxy.cache = config.cache;
  proxy.enable_coherency = config.enable_coherency;
  proxy.enable_prefetch = config.enable_prefetch;
  proxy.prefetch = config.prefetch;
  proxy.enable_adaptive_ttl = config.enable_adaptive_ttl;
  proxy.adaptive_ttl = config.adaptive_ttl;
  proxy.enable_pcv = config.enable_pcv;
  proxy.pcv = config.pcv;
  proxy.enable_informed_fetch = config.enable_informed_fetch;
  proxy.fetch_discipline = config.fetch_discipline;
  proxy.base_filter = config.base_filter;
  proxy.rpv = config.rpv;
  proxy.use_rpv = config.use_rpv;
  proxy.min_piggyback_interval = config.min_piggyback_interval;
  proxy.link = config.network;
  // Transparent: the origin sees each client's own source id.
  proxy.upstream_source = std::nullopt;

  Topology topology;
  topology.nodes.push_back(std::move(proxy));
  return topology;
}

EngineConfig EndToEndSimulator::engine_config_for(
    const EndToEndConfig& config) {
  EngineConfig engine;
  engine.piggybacking = config.piggybacking;
  engine.volumes = config.volumes;
  engine.probability_volumes = config.probability_volumes;
  engine.probability_max_candidates = config.probability_max_candidates;
  engine.request_overhead_bytes = config.request_overhead_bytes;
  engine.response_overhead_bytes = config.response_overhead_bytes;
  return engine;
}

EndToEndResult EndToEndSimulator::run() {
  SimulationEngine engine(workload_, topology_for(config_),
                          engine_config_for(config_));
  const auto engine_result = engine.run();
  const auto& proxy = engine_result.nodes.front();

  EndToEndResult result;
  result.cache = proxy.cache;
  result.coherency = proxy.coherency;
  result.prefetch = proxy.prefetch;
  result.pcv = proxy.pcv;
  result.connections = engine_result.connections;
  result.center = engine_result.center;
  result.client_requests = engine_result.client_requests;
  result.server_contacts = engine_result.server_contacts;
  result.validations = engine_result.validations;
  result.validations_not_modified = engine_result.validations_not_modified;
  result.stale_served = engine_result.stale_served;
  result.piggyback_bytes = engine_result.piggyback_bytes;
  result.body_bytes = engine_result.body_bytes;
  result.total_packets = engine_result.total_packets;
  result.user_latency_sum = engine_result.user_latency_sum;
  result.prefetch_latency_sum = engine_result.prefetch_latency_sum;
  result.informed_fetch = proxy.fetch_schedule;
  result.informed_fetch_fifo = proxy.fetch_schedule_fifo;
  return result;
}

}  // namespace piggyweb::sim

// Directory-prefix locality analysis (Figure 1): for a proxy/client trace,
// at each directory level, what fraction of requests touch a prefix seen
// earlier in the trace, and how are the interarrival times within a prefix
// distributed? High short-range locality is what makes directory volumes
// predictive.
#pragma once

#include <vector>

#include "trace/record.h"

namespace piggyweb::sim {

struct LocalityLevelResult {
  int level = 0;
  std::uint64_t requests = 0;
  std::uint64_t seen_before = 0;   // prefix occurred earlier in the trace
  double seen_before_fraction = 0;
  double median_interarrival = 0;  // seconds, over seen-before requests
  double mean_interarrival = 0;
  // Empirical CDF evaluated at these interarrival points (seconds).
  std::vector<double> cdf_points;
  std::vector<double> cdf_values;
};

struct LocalityOptions {
  // Drop image requests first ("even with [embedded references] removed,
  // the trace still exhibits significant temporal locality", §3.2.2). Our
  // logs identify embedded fetches by content type.
  bool exclude_images = false;
  std::vector<double> cdf_points = {1,   5,    10,   50,   100,
                                    500, 1000, 5000, 7200, 86400};
};

// Level-0 groups by server; level-k adds the k-level directory prefix.
LocalityLevelResult directory_locality(const trace::Trace& trace, int level,
                                       const LocalityOptions& options = {});

}  // namespace piggyweb::sim

// Runtime state of one proxy node in the simulation engine: the cache,
// the per-node application agents (coherency, prefetch, adaptive TTL,
// PCV, informed-fetch log), the filter policy for upstream requests, the
// optional cost-accounted upstream link, and the per-node counters that
// the engine aggregates into harness-level results.
#pragma once

#include <optional>
#include <vector>

#include "proxy/coherency.h"
#include "proxy/filter_policy.h"
#include "sim/topology.h"

namespace piggyweb::sim {

// Counters accumulated per node over a run. `fresh_hits_served` counts
// requests answered at this node with no upstream traffic; `validations`
// count If-Modified-Since exchanges this node performed against the
// origin (only origin-facing nodes validate).
struct NodeStats {
  std::string name;
  int depth = 0;
  bool is_leaf = false;
  bool is_root = false;

  proxy::CacheStats cache;
  proxy::CoherencyStats coherency;
  proxy::PrefetchStats prefetch;
  proxy::PcvStats pcv;
  net::ConnectionStats connections;  // this node's upstream link

  std::uint64_t fresh_hits_served = 0;
  std::uint64_t stale_served = 0;
  std::uint64_t validations = 0;
  std::uint64_t validations_not_modified = 0;
  std::uint64_t upstream_fetches = 0;

  // Informed fetching: the node's upstream fetch log replayed under the
  // configured discipline and the FIFO baseline (only set when
  // enable_informed_fetch and at least one fetch happened).
  std::optional<proxy::FetchScheduleResult> fetch_schedule;
  std::optional<proxy::FetchScheduleResult> fetch_schedule_fifo;
};

// Engine-internal runtime node. Holds references between members (the
// agents point at the cache), so it is neither copyable nor movable —
// the engine stores unique_ptrs.
class ProxyNode {
 public:
  ProxyNode(const ProxyNodeSpec& spec, int depth);

  ProxyNode(const ProxyNode&) = delete;
  ProxyNode& operator=(const ProxyNode&) = delete;

  // The source identity this node presents upstream for a request that
  // entered the network as `client`.
  util::InternId upstream_source_for(util::InternId client) const {
    return spec.upstream_source.value_or(client);
  }

  ProxyNodeSpec spec;
  int depth = 0;

  proxy::ProxyCache cache;
  proxy::CoherencyAgent coherency;
  proxy::Prefetcher prefetcher;
  proxy::AdaptiveTtl adaptive_ttl;
  proxy::PcvAgent pcv;
  proxy::FilterPolicy filter_policy;

  // Present only when the upstream link is cost-accounted.
  std::optional<net::ConnectionManager> connections;
  std::optional<net::CostModel> cost;

  std::vector<proxy::PendingFetch> fetch_log;

  // Engine-maintained counters (the agent stats live in the agents).
  std::uint64_t fresh_hits_served = 0;
  std::uint64_t stale_served = 0;
  std::uint64_t validations = 0;
  std::uint64_t validations_not_modified = 0;
  std::uint64_t upstream_fetches = 0;
};

}  // namespace piggyweb::sim

// Shared core of the serial and parallel prediction evaluators.
//
// The evaluation of one request factors into two halves with disjoint
// state:
//   1. the *provider* half — drive VolumeProvider::on_request and apply
//      the static proxy filter; state partitions by volume (directory
//      volumes) or is absent (probability volumes);
//   2. the *metrics* half — prediction/true-prediction/update accounting,
//      frequency control, and RPV suppression; state partitions by source
//      (the paper's pseudo-proxies are independent prediction streams,
//      §3.1).
// MetricAccumulator is that second half. PredictionEvaluator runs both
// halves inline per request; ParallelEvaluator runs half 1 sharded by
// volume and half 2 sharded by source, feeding each source's requests to
// its accumulator in trace order — which is why both paths produce
// bit-identical EvalResults.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <utility>
#include <vector>

#include "core/piggyback.h"
#include "core/rpv.h"
#include "sim/prediction_eval.h"
#include "trace/record.h"
#include "util/flat_map.h"

namespace piggyweb::sim::detail {

// Sentinel "long ago" for first-touch comparisons.
inline constexpr util::Seconds kNever = -(1LL << 60);

// Requests per provider batch in the evaluators' hot loops. Batches keep
// the VolumeRequest column and prediction slots hot in cache and amortize
// the virtual dispatch; the per-request evaluation *sequence* is
// unchanged, so batch size never affects results.
inline constexpr std::size_t kEvalBatchRequests = 4096;

// The provider-facing view of a trace request. `type` comes from a
// trace::PathTypeTable so the hot loop never re-scans path strings.
inline core::VolumeRequest make_volume_request(const trace::Request& req,
                                               trace::ContentType type) {
  core::VolumeRequest vr;
  vr.server = req.server;
  vr.source = req.source;
  vr.path = req.path;
  vr.time = req.time;
  vr.size = req.size;
  vr.type = type;
  return vr;
}

struct ResourceState {
  util::Seconds last_access = kNever;
  util::Seconds last_mention = kNever;   // any piggyback mention
  util::Seconds interval_open = kNever;  // start of current prediction
  bool fulfilled = false;
};

// Packs two dense 32-bit ids into one map key.
inline std::uint64_t pair_key(std::uint32_t a, std::uint32_t b) {
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

// Flattened accumulator state for checkpointing. Every key's high 32 bits
// are the source id, so the image re-shards cleanly at any source-shard
// count. Entry order is unspecified; the persist layer sorts by key for
// canonical snapshot bytes.
struct EvalStateImage {
  EvalResult counters;
  std::vector<std::pair<std::uint64_t, ResourceState>> resource_state;
  std::vector<std::pair<std::uint64_t, util::Seconds>> last_piggy;
  std::vector<std::pair<std::uint64_t, std::vector<core::RpvEntry>>> rpv;
};

// Metric + per-source protocol state for a set of sources. Feed every
// request of an owned source, in trace order, together with the piggyback
// message the server would send under the *static* filter (frequency
// control and RPV suppression are per-source and applied here). Only the
// element resource ids matter for the metrics, so that is all observe()
// takes.
class MetricAccumulator {
 public:
  explicit MetricAccumulator(const EvalConfig& config) : config_(&config) {}

  void observe(const trace::Request& request, core::VolumeId volume,
               std::span<const util::InternId> resources);

  const EvalResult& result() const { return result_; }

  // Appends this accumulator's state to `image`; counters are summed.
  // Accumulators from disjoint source shards hold disjoint keys, so
  // exporting them all into one image is an exact union.
  void export_state(EvalStateImage& image) const;

  // Installs the image entries whose source (high 32 bits of the key)
  // passes `owns` (null = install everything). Exactly one accumulator per
  // restore takes the summed counters, or the merged total double-counts.
  void import_state(const EvalStateImage& image,
                    const std::function<bool(util::InternId source)>& owns,
                    bool take_counters);

 private:
  const EvalConfig* config_;
  EvalResult result_;
  // (source, resource) -> state. Sources and resources are dense ids.
  util::FlatMap<std::uint64_t, ResourceState> state_;
  // (source, server) -> last piggyback time (frequency control).
  util::FlatMap<std::uint64_t, util::Seconds> last_piggy_;
  // (source, server) -> RPV list.
  util::FlatMap<std::uint64_t, core::RpvList> rpv_;
};

// Merge partial results from disjoint request sets: every field is a
// count over per-request events, so integer addition is an exact,
// order-independent merge.
EvalResult merge_results(std::span<const EvalResult> partials);

// Publish the final result's counters into the global metrics registry
// (no-op when none is installed). Both evaluators call this with their
// merged result, so the deterministic `eval.*` counters are identical
// regardless of which path ran or how many threads it used.
void publish_eval_result(const EvalResult& result);

}  // namespace piggyweb::sim::detail

// Declarative cache-network topologies for the unified simulation engine.
//
// The paper's harnesses hard-coded two shapes: one proxy in front of the
// origin servers (end-to-end, §4) and a two-level child/parent hierarchy
// (§5's multi-level-cache extension). Cache-network work shows that filter
// and piggyback behaviour changes qualitatively with depth and fan-out, so
// the topology is data here: an arbitrary forest of proxy nodes, each with
// its own cache, application policies, filter preferences, and an optional
// cost-modelled upstream link. Roots talk to the origin servers through
// the transparent volume center that sits on the proxy→origin path (§1's
// deployment story); clients hash onto the leaves.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/filter.h"
#include "core/rpv.h"
#include "net/cost_model.h"
#include "proxy/adaptive_ttl.h"
#include "proxy/cache.h"
#include "proxy/informed_fetch.h"
#include "proxy/pcv.h"
#include "proxy/prefetch.h"
#include "util/time.h"

namespace piggyweb::sim {

// One proxy node of the cache network. `parent` is an index into
// Topology::nodes, or -1 when the node faces the origin servers directly.
struct ProxyNodeSpec {
  std::string name;
  int parent = -1;

  proxy::CacheConfig cache;

  // Per-node application policies (§4), applied to piggybacks this node
  // receives or has relayed to it.
  bool enable_coherency = true;
  bool enable_prefetch = false;
  proxy::PrefetchConfig prefetch;
  bool enable_adaptive_ttl = false;
  proxy::AdaptiveTtlConfig adaptive_ttl;
  bool enable_pcv = false;
  proxy::PcvConfig pcv;

  // Informed fetching (§4): when enabled the node logs every upstream
  // fetch it performs and the engine replays the log through
  // proxy::schedule_fetches against the upstream link bandwidth, under
  // both the configured discipline and the FIFO baseline.
  bool enable_informed_fetch = false;
  proxy::FetchDiscipline fetch_discipline =
      proxy::FetchDiscipline::kShortestFirst;

  // Filter construction for the requests this node sends upstream (only
  // consulted on origin-facing nodes; the filter rides the request the
  // origin sees).
  core::ProxyFilter base_filter;
  core::RpvConfig rpv;
  bool use_rpv = true;
  util::Seconds min_piggyback_interval = 0;  // 0 = always enabled

  // When set, exchanges on this node's upstream link (to its parent, or
  // to the origins for a root) are cost-accounted: persistent
  // connections, packets, bytes, latency. Unset links are free, matching
  // the original hierarchy harness.
  std::optional<net::NetworkConfig> link;

  // Source identity this node presents upstream. Unset = transparent
  // (the original client id rides through, as in the end-to-end
  // harness); set = the node aggregates its clients behind one id (as
  // the hierarchy parent does).
  std::optional<util::InternId> upstream_source;
};

struct Topology {
  std::vector<ProxyNodeSpec> nodes;

  // Relay piggybacks from the origin-facing node down the request path,
  // so every cache level gets coherency refreshes/invalidations from a
  // single server message (§5).
  bool relay_to_descendants = true;
};

// Structural queries -------------------------------------------------------

// PW_EXPECTs that the topology is a non-empty forest: parents in range,
// no cycles.
void validate_topology(const Topology& topology);

// Distance from the node to its root (root = 0).
int depth_of(const Topology& topology, int node);

// Nodes with no children, in index order — the client attachment points.
std::vector<int> leaf_indices(const Topology& topology);

// Nodes with parent == -1, in index order.
std::vector<int> root_indices(const Topology& topology);

// Presets ------------------------------------------------------------------

// A balanced tree of proxy caches: `depth` levels (1 = a single proxy),
// each inner node with `fanout` children. Node 0 is the root; leaves are
// the deepest level. Cache capacity interpolates geometrically from
// `leaf_cache` at the leaves to `root_cache` at the root.
struct UniformTreeSpec {
  int depth = 2;
  int fanout = 2;
  proxy::CacheConfig leaf_cache;
  proxy::CacheConfig root_cache;
  core::ProxyFilter base_filter;
  core::RpvConfig rpv;
  bool enable_coherency = true;
  // Cost accounting on the root→origin link; inner links stay free.
  std::optional<net::NetworkConfig> origin_link;
};

Topology uniform_tree_topology(const UniformTreeSpec& spec);

}  // namespace piggyweb::sim

#include "sim/report.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "sim/prediction_eval.h"

namespace piggyweb::sim {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

Table& Table::row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << cells[c];
      for (std::size_t pad = cells[c].size(); pad < widths[c]; ++pad) {
        os << ' ';
      }
    }
    os << '\n';
  };
  emit(headers_);
  std::size_t total = headers_.size() > 1 ? 2 * (headers_.size() - 1) : 0;
  for (const auto w : widths) total += w;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

std::string Table::num(double v, int decimals) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string Table::pct(double fraction, int decimals) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, fraction * 100.0);
  return buf;
}

std::string Table::count(std::uint64_t v) { return std::to_string(v); }

std::string render_eval_report(const EvalResult& result) {
  Table table({"metric", "value"});
  table.row({"fraction predicted (recall)",
             Table::pct(result.fraction_predicted())});
  table.row({"true prediction fraction (precision)",
             Table::pct(result.true_prediction_fraction())});
  table.row({"update fraction", Table::pct(result.update_fraction())});
  table.row({"avg piggyback size",
             Table::num(result.avg_piggyback_size(), 2)});
  table.row({"piggyback elements per request",
             Table::num(result.elements_per_request(), 2)});
  table.row({"piggyback messages", Table::count(result.piggyback_messages)});
  table.row({"requests", Table::count(result.requests)});
  std::ostringstream out;
  table.print(out);
  return out.str();
}

}  // namespace piggyweb::sim

#include "sim/report.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "obs/json.h"
#include "sim/prediction_eval.h"

namespace piggyweb::sim {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

Table& Table::row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << cells[c];
      for (std::size_t pad = cells[c].size(); pad < widths[c]; ++pad) {
        os << ' ';
      }
    }
    os << '\n';
  };
  emit(headers_);
  std::size_t total = headers_.size() > 1 ? 2 * (headers_.size() - 1) : 0;
  for (const auto w : widths) total += w;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

std::string Table::num(double v, int decimals) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string Table::pct(double fraction, int decimals) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, fraction * 100.0);
  return buf;
}

std::string Table::count(std::uint64_t v) { return std::to_string(v); }

std::vector<EvalReportField> eval_report_fields(const EvalResult& result) {
  using Kind = EvalReportField::Kind;
  return {
      {"fraction_predicted", "fraction predicted (recall)", Kind::kPercent,
       result.fraction_predicted()},
      {"true_prediction_fraction", "true prediction fraction (precision)",
       Kind::kPercent, result.true_prediction_fraction()},
      {"update_fraction", "update fraction", Kind::kPercent,
       result.update_fraction()},
      {"avg_piggyback_size", "avg piggyback size", Kind::kNumber,
       result.avg_piggyback_size()},
      {"piggyback_elements_per_request", "piggyback elements per request",
       Kind::kNumber, result.elements_per_request()},
      {"piggyback_messages", "piggyback messages", Kind::kCount,
       static_cast<double>(result.piggyback_messages)},
      {"requests", "requests", Kind::kCount,
       static_cast<double>(result.requests)},
  };
}

std::string render_eval_report(const EvalResult& result) {
  Table table({"metric", "value"});
  for (const auto& field : eval_report_fields(result)) {
    switch (field.kind) {
      case EvalReportField::Kind::kPercent:
        table.row({field.label, Table::pct(field.value)});
        break;
      case EvalReportField::Kind::kNumber:
        table.row({field.label, Table::num(field.value, 2)});
        break;
      case EvalReportField::Kind::kCount:
        table.row({field.label,
                   Table::count(static_cast<std::uint64_t>(field.value))});
        break;
    }
  }
  std::ostringstream out;
  table.print(out);
  return out.str();
}

std::string render_eval_report_json(const EvalResult& result) {
  auto report = obs::Json::object();
  for (const auto& field : eval_report_fields(result)) {
    if (field.kind == EvalReportField::Kind::kCount) {
      report.set(field.key, static_cast<std::uint64_t>(field.value));
    } else {
      report.set(field.key, field.value);
    }
  }
  return report.dump(2);
}

}  // namespace piggyweb::sim

#include "sim/prediction_eval.h"

#include <algorithm>
#include <vector>

#include "obs/registry.h"
#include "obs/tracer.h"
#include "sim/eval_core.h"
#include "trace/stream.h"
#include "util/expect.h"

namespace piggyweb::sim {

namespace detail {

void MetricAccumulator::observe(const trace::Request& req,
                                core::VolumeId volume,
                                std::span<const util::InternId> resources) {
  const auto T = config_->prediction_window;
  const auto t = req.time.value;
  const auto C = config_->cache_horizon;

  ++result_.requests;
  auto& rs = state_[pair_key(req.source, req.path)];

  // --- metrics, evaluated against state from *earlier* requests --------
  const bool predicted =
      rs.last_mention != kNever && t - rs.last_mention <= T;
  if (predicted) ++result_.predicted_requests;
  const bool prev_within_horizon =
      rs.last_access != kNever && t - rs.last_access <= C;
  const bool prev_within_window =
      rs.last_access != kNever && t - rs.last_access <= T;
  if (prev_within_horizon) ++result_.prev_occurrence_within_horizon;
  if (prev_within_window) ++result_.prev_occurrence_within_window;
  if (predicted && prev_within_horizon && !prev_within_window) {
    ++result_.updated_by_piggyback;
  }

  // --- true-prediction fulfilment ---------------------------------------
  if (!rs.fulfilled && rs.interval_open != kNever &&
      t - rs.interval_open <= T) {
    ++result_.predictions_true;
    rs.fulfilled = true;
  }

  rs.last_access = t;

  // --- proxy side: frequency control + RPV suppression -------------------
  // The incoming (volume, resources) already passed the static filter;
  // both remaining controls only suppress the message as a whole, so this
  // is exactly equivalent to feeding them into apply_filter().
  bool enabled = config_->filter.enabled;
  const auto pair = pair_key(req.source, req.server);
  if (config_->min_piggyback_interval > 0) {
    const auto it = last_piggy_.find(pair);
    if (it != last_piggy_.end() &&
        t - it->second < config_->min_piggyback_interval) {
      enabled = false;
    }
  }
  bool suppressed = volume == core::kNoVolume || resources.empty();
  core::RpvList* rpv_list = nullptr;
  if (config_->use_rpv && enabled) {
    rpv_list = &rpv_.try_emplace(pair, config_->rpv).first->second;
    const auto live = rpv_list->live(req.time);
    if (!suppressed &&
        std::find(live.begin(), live.end(), volume) != live.end()) {
      suppressed = true;
    }
  }
  if (!enabled || suppressed) return;

  ++result_.piggyback_messages;
  result_.piggyback_elements += resources.size();
  last_piggy_[pair] = t;
  if (rpv_list != nullptr) rpv_list->note(volume, req.time);

  for (const auto resource : resources) {
    auto& es = state_[pair_key(req.source, resource)];
    es.last_mention = t;
    if (es.interval_open == kNever || t - es.interval_open > T) {
      // A new prediction interval opens; multiple mentions within one
      // interval count once (§3.1).
      es.interval_open = t;
      es.fulfilled = false;
      ++result_.predictions_made;
    }
  }
}

void MetricAccumulator::export_state(EvalStateImage& image) const {
  const EvalResult partials[] = {image.counters, result_};
  image.counters = merge_results(partials);
  image.resource_state.reserve(image.resource_state.size() + state_.size());
  for (const auto& [key, value] : state_) {
    image.resource_state.emplace_back(key, value);
  }
  image.last_piggy.reserve(image.last_piggy.size() + last_piggy_.size());
  for (const auto& [key, value] : last_piggy_) {
    image.last_piggy.emplace_back(key, value);
  }
  image.rpv.reserve(image.rpv.size() + rpv_.size());
  for (const auto& [key, list] : rpv_) {
    image.rpv.emplace_back(key, list.entries());
  }
}

void MetricAccumulator::import_state(
    const EvalStateImage& image,
    const std::function<bool(util::InternId source)>& owns,
    bool take_counters) {
  if (take_counters) result_ = image.counters;
  const auto owned = [&owns](std::uint64_t key) {
    return !owns || owns(static_cast<util::InternId>(key >> 32));
  };
  for (const auto& [key, value] : image.resource_state) {
    if (owned(key)) state_[key] = value;
  }
  for (const auto& [key, value] : image.last_piggy) {
    if (owned(key)) last_piggy_[key] = value;
  }
  for (const auto& [key, entries] : image.rpv) {
    if (!owned(key)) continue;
    rpv_.try_emplace(key, config_->rpv)
        .first->second.restore_entries(entries);
  }
}

EvalResult merge_results(std::span<const EvalResult> partials) {
  EvalResult total;
  for (const auto& r : partials) {
    total.requests += r.requests;
    total.predicted_requests += r.predicted_requests;
    total.piggyback_messages += r.piggyback_messages;
    total.piggyback_elements += r.piggyback_elements;
    total.predictions_made += r.predictions_made;
    total.predictions_true += r.predictions_true;
    total.prev_occurrence_within_horizon += r.prev_occurrence_within_horizon;
    total.prev_occurrence_within_window += r.prev_occurrence_within_window;
    total.updated_by_piggyback += r.updated_by_piggyback;
  }
  return total;
}

void publish_eval_result(const EvalResult& result) {
  auto* metrics = obs::global_metrics();
  if (metrics == nullptr) return;
  metrics->counter("eval.requests").add(result.requests);
  metrics->counter("eval.predicted_requests").add(result.predicted_requests);
  metrics->counter("eval.piggyback_messages").add(result.piggyback_messages);
  metrics->counter("eval.piggyback_elements").add(result.piggyback_elements);
  metrics->counter("eval.predictions_made").add(result.predictions_made);
  metrics->counter("eval.predictions_true").add(result.predictions_true);
  metrics->counter("eval.prev_occurrence_within_horizon")
      .add(result.prev_occurrence_within_horizon);
  metrics->counter("eval.prev_occurrence_within_window")
      .add(result.prev_occurrence_within_window);
  metrics->counter("eval.updated_by_piggyback")
      .add(result.updated_by_piggyback);
}

}  // namespace detail

EvalResult PredictionEvaluator::run(const trace::Trace& trace,
                                    core::VolumeProvider& provider,
                                    const core::MetaOracle& meta) {
  detail::MetricAccumulator acc(config_);
  return run_range(trace, provider, meta, 0, trace.requests().size(), acc,
                   /*publish=*/true);
}

EvalResult PredictionEvaluator::run_range(const trace::Trace& trace,
                                          core::VolumeProvider& provider,
                                          const core::MetaOracle& meta,
                                          std::size_t begin, std::size_t end,
                                          detail::MetricAccumulator& acc,
                                          bool publish) {
  trace::MaterializedTraceView view(trace);
  return run_range(view, provider, meta, begin, end, acc, publish);
}

EvalResult PredictionEvaluator::run(trace::TraceView& view,
                                    core::VolumeProvider& provider,
                                    const core::MetaOracle& meta) {
  detail::MetricAccumulator acc(config_);
  return run_range(view, provider, meta, 0, view.request_count(), acc,
                   /*publish=*/true);
}

EvalResult PredictionEvaluator::run_range(trace::TraceView& view,
                                          core::VolumeProvider& provider,
                                          const core::MetaOracle& meta,
                                          std::size_t begin, std::size_t end,
                                          detail::MetricAccumulator& acc,
                                          bool publish) {
  OBS_SPAN("prediction_eval.run");
  PW_EXPECT(begin <= end && end <= view.request_count());
  PW_EXPECT(config_.cache_horizon > config_.prediction_window);

  // Batched hot loop: one view window per batch (a subspan for
  // materialized traces, a bounded decode straight off the mapped columns
  // for streaming ones), provider predictions for the span, then filter +
  // metrics over the same span. Requests are visited strictly in trace
  // order inside each half, so results are bit-identical to the
  // per-request formulation. All buffers live across batches, so the
  // steady state performs no allocation and memory stays bounded by the
  // batch size regardless of trace length.
  const trace::PathTypeTable types(view.paths());
  std::vector<core::VolumeRequest> batch;
  std::vector<core::VolumePrediction> predictions;
  core::PiggybackMessage message;
  std::vector<util::InternId> resources;
  batch.reserve(std::min(detail::kEvalBatchRequests, end - begin));
  util::Seconds last_time = detail::kNever;

  for (std::size_t base = begin; base < end;
       base += detail::kEvalBatchRequests) {
    const auto stop = std::min(base + detail::kEvalBatchRequests, end);
    const auto window = view.window(base, stop - base);
    // Incremental sortedness contract: each window in order, and ordered
    // against the previous window's tail.
    PW_EXPECT(window.empty() || window.front().time.value >= last_time);
    PW_EXPECT(std::is_sorted(window.begin(), window.end(),
                             [](const trace::Request& a,
                                const trace::Request& b) {
                               return a.time < b.time;
                             }));
    if (!window.empty()) last_time = window.back().time.value;
    batch.clear();
    for (const trace::Request& req : window) {
      batch.push_back(
          detail::make_volume_request(req, types.type_of(req.path)));
    }
    provider.on_request_batch(batch, predictions);
    for (std::size_t i = 0; i < window.size(); ++i) {
      core::apply_filter_into(predictions[i], batch[i], config_.filter, meta,
                              message);
      resources.clear();
      resources.reserve(message.elements.size());
      for (const auto& element : message.elements) {
        resources.push_back(element.resource);
      }
      acc.observe(window[i], message.volume, resources);
    }
    if (config_.on_progress) {
      config_.on_progress({stop - begin, end - begin, 0});
    }
  }
  if (publish) detail::publish_eval_result(acc.result());
  return acc.result();
}

}  // namespace piggyweb::sim

#include "sim/prediction_eval.h"

#include <algorithm>

#include "util/expect.h"

namespace piggyweb::sim {
namespace {

// Sentinel "long ago" for first-touch comparisons.
constexpr util::Seconds kNever = -(1LL << 60);

struct ResourceState {
  util::Seconds last_access = kNever;
  util::Seconds last_mention = kNever;   // any piggyback mention
  util::Seconds interval_open = kNever;  // start of current prediction
  bool fulfilled = false;
};

}  // namespace

EvalResult PredictionEvaluator::run(const trace::Trace& trace,
                                    core::VolumeProvider& provider,
                                    const core::MetaOracle& meta) {
  const auto& requests = trace.requests();
  PW_EXPECT(std::is_sorted(requests.begin(), requests.end(),
                           [](const trace::Request& a,
                              const trace::Request& b) {
                             return a.time < b.time;
                           }));
  const auto T = config_.prediction_window;
  const auto C = config_.cache_horizon;
  PW_EXPECT(C > T);

  EvalResult result;
  // (source, resource) -> state. Sources and resources are both dense ids.
  std::unordered_map<std::uint64_t, ResourceState> state;
  state.reserve(requests.size() / 2);
  const auto skey = [](util::InternId source, util::InternId resource) {
    return (static_cast<std::uint64_t>(source) << 32) | resource;
  };
  // (source, server) -> last piggyback time (frequency control).
  std::unordered_map<std::uint64_t, util::Seconds> last_piggy;
  // (source, server) -> RPV list.
  std::unordered_map<std::uint64_t, core::RpvList> rpv;

  for (const auto& req : requests) {
    ++result.requests;
    const auto t = req.time.value;
    auto& rs = state[skey(req.source, req.path)];

    // --- metrics, evaluated against state from *earlier* requests --------
    const bool predicted =
        rs.last_mention != kNever && t - rs.last_mention <= T;
    if (predicted) ++result.predicted_requests;
    const bool prev_within_horizon =
        rs.last_access != kNever && t - rs.last_access <= C;
    const bool prev_within_window =
        rs.last_access != kNever && t - rs.last_access <= T;
    if (prev_within_horizon) ++result.prev_occurrence_within_horizon;
    if (prev_within_window) ++result.prev_occurrence_within_window;
    if (predicted && prev_within_horizon && !prev_within_window) {
      ++result.updated_by_piggyback;
    }

    // --- true-prediction fulfilment ---------------------------------------
    if (!rs.fulfilled && rs.interval_open != kNever &&
        t - rs.interval_open <= T) {
      ++result.predictions_true;
      rs.fulfilled = true;
    }

    rs.last_access = t;

    // --- server side: maintain volumes, maybe piggyback -------------------
    core::VolumeRequest vr;
    vr.server = req.server;
    vr.source = req.source;
    vr.path = req.path;
    vr.time = req.time;
    vr.size = req.size;
    vr.type = trace::classify_path(trace.paths().str(req.path));
    const auto prediction = provider.on_request(vr);

    auto filter = config_.filter;
    const auto pair = skey(req.source, req.server);
    if (config_.min_piggyback_interval > 0) {
      const auto it = last_piggy.find(pair);
      if (it != last_piggy.end() &&
          t - it->second < config_.min_piggyback_interval) {
        filter.enabled = false;
      }
    }
    core::RpvList* rpv_list = nullptr;
    if (config_.use_rpv && filter.enabled) {
      rpv_list = &rpv.try_emplace(pair, config_.rpv).first->second;
      filter.rpv = rpv_list->live(req.time);
    }

    const auto message = core::apply_filter(prediction, vr, filter, meta);
    if (message.empty()) continue;

    ++result.piggyback_messages;
    result.piggyback_elements += message.elements.size();
    last_piggy[pair] = t;
    if (rpv_list != nullptr) rpv_list->note(message.volume, req.time);

    for (const auto& element : message.elements) {
      auto& es = state[skey(req.source, element.resource)];
      es.last_mention = t;
      if (es.interval_open == kNever || t - es.interval_open > T) {
        // A new prediction interval opens; multiple mentions within one
        // interval count once (§3.1).
        es.interval_open = t;
        es.fulfilled = false;
        ++result.predictions_made;
      }
    }
  }
  return result;
}

}  // namespace piggyweb::sim

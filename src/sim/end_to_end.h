// End-to-end simulator: the trace's clients sit behind one proxy (cache +
// piggyback applications) that talks to simulated origin servers over a
// cost-modelled network, with volume maintenance performed by a
// transparent volume center on the path (§1's deployment story). This is
// the harness behind the §4 application trade-off numbers and the examples.
//
// Since the engine refactor this class is a thin preset: it maps its
// config onto a single-node sim::Topology and runs SimulationEngine
// (sim/engine.h), then reshapes the engine result into the historical
// EndToEndResult. Counters are pinned bit-identical to the pre-engine
// implementation by tests/sim_golden_regression_test.
#pragma once

#include <optional>

#include "net/cost_model.h"
#include "proxy/adaptive_ttl.h"
#include "proxy/cache.h"
#include "proxy/coherency.h"
#include "proxy/filter_policy.h"
#include "proxy/informed_fetch.h"
#include "proxy/pcv.h"
#include "proxy/prefetch.h"
#include "server/volume_center.h"
#include "sim/engine.h"
#include "trace/synthetic.h"
#include "volume/probability.h"

namespace piggyweb::sim {

struct EndToEndConfig {
  proxy::CacheConfig cache;
  core::ProxyFilter base_filter;          // static filter preferences
  core::RpvConfig rpv;
  bool use_rpv = true;
  util::Seconds min_piggyback_interval = 0;  // frequency control
  bool piggybacking = true;               // master switch (baseline = off)
  bool enable_coherency = true;
  bool enable_prefetch = false;
  proxy::PrefetchConfig prefetch;
  bool enable_adaptive_ttl = false;
  proxy::AdaptiveTtlConfig adaptive_ttl;
  // Piggyback cache validation (the [10]-style baseline/complement): batch
  // soon-to-expire entries onto requests, get bulk verdicts back.
  bool enable_pcv = false;
  proxy::PcvConfig pcv;
  // Informed fetching (§4): log the proxy's upstream fetches and replay
  // them through proxy::schedule_fetches under `fetch_discipline` and the
  // FIFO baseline; results land in EndToEndResult::informed_fetch.
  bool enable_informed_fetch = false;
  proxy::FetchDiscipline fetch_discipline =
      proxy::FetchDiscipline::kShortestFirst;
  volume::DirectoryVolumeConfig volumes;  // volume center scheme
  // When set, the volume center serves piggybacks from this offline-built
  // probability volume set instead of online directory volumes (the
  // paper's most accurate configuration; recommended for prefetching).
  const volume::ProbabilityVolumeSet* probability_volumes = nullptr;
  std::size_t probability_max_candidates = 50;
  net::NetworkConfig network;
  std::uint64_t request_overhead_bytes = 200;   // headers etc.
  std::uint64_t response_overhead_bytes = 200;
};

struct EndToEndResult {
  proxy::CacheStats cache;
  proxy::CoherencyStats coherency;
  proxy::PrefetchStats prefetch;
  proxy::PcvStats pcv;
  net::ConnectionStats connections;
  server::VolumeCenterStats center;

  std::uint64_t client_requests = 0;
  std::uint64_t server_contacts = 0;      // requests reaching a server
  std::uint64_t validations = 0;          // If-Modified-Since exchanges
  std::uint64_t validations_not_modified = 0;  // ... answered 304
  std::uint64_t stale_served = 0;  // fresh hits that were in fact outdated
  std::uint64_t piggyback_bytes = 0;
  std::uint64_t body_bytes = 0;
  std::uint64_t total_packets = 0;
  double user_latency_sum = 0;    // user-perceived, seconds
  double prefetch_latency_sum = 0;  // background traffic

  // Set when enable_informed_fetch and at least one upstream fetch
  // happened: the fetch log replayed under the configured discipline and
  // under FIFO, for the §4 waiting-time comparison.
  std::optional<proxy::FetchScheduleResult> informed_fetch;
  std::optional<proxy::FetchScheduleResult> informed_fetch_fifo;

  double mean_user_latency() const {
    return client_requests == 0
               ? 0.0
               : user_latency_sum / static_cast<double>(client_requests);
  }
  double stale_rate() const {
    return cache.fresh_hits == 0
               ? 0.0
               : static_cast<double>(stale_served) /
                     static_cast<double>(cache.fresh_hits);
  }
};

class EndToEndSimulator {
 public:
  EndToEndSimulator(const trace::SyntheticWorkload& workload,
                    const EndToEndConfig& config);

  EndToEndResult run();

  // The engine preset this harness runs: one proxy node, cost-accounted
  // origin link, clients riding through transparently. Exposed so tests
  // and benches can compose variations on the preset.
  static Topology topology_for(const EndToEndConfig& config);
  static EngineConfig engine_config_for(const EndToEndConfig& config);

 private:
  const trace::SyntheticWorkload& workload_;
  EndToEndConfig config_;
};

}  // namespace piggyweb::sim

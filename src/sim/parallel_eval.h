// Parallel sharded evaluation engine.
//
// Replays a trace through a volume provider + proxy filter on N worker
// threads while producing results *bit-identical* to PredictionEvaluator —
// for any trace, configuration, and thread count. The trace is processed
// in time-ordered chunks, each chunk in two stages:
//
//   stage 1 (provider): requests are sharded by *volume key* (server +
//     k-level directory prefix for directory volumes; any stable hash for
//     stateless probability volumes). Each shard owns a private provider
//     instance, so the per-volume FIFO/move-to-front state evolves exactly
//     as in the serial run — a volume's requests are always handled by the
//     same shard, in trace order. The shard applies the static proxy
//     filter and stages the resulting message per request.
//
//   stage 2 (metrics): requests are sharded by *source*. Each shard owns
//     the metric/frequency-control/RPV state for its sources (the paper's
//     pseudo-proxies are independent prediction streams) and replays the
//     staged messages through the shared MetricAccumulator — the same
//     code the serial evaluator runs.
//
// Per-shard partial results merge by integer addition, so the totals do
// not depend on thread count or scheduling. Directory-volume ids are
// numbered offset/stride per shard (globally unique), which RPV equality
// checks cannot distinguish from serial numbering.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <span>

#include "sim/prediction_eval.h"
#include "volume/directory.h"
#include "volume/probability.h"

namespace piggyweb::sim {

struct ParallelEvalConfig {
  std::size_t threads = 0;          // 0 = hardware concurrency
  std::size_t provider_shards = 0;  // 0 = same as threads
  std::size_t source_shards = 0;    // 0 = same as threads
  // Requests per chunk; the two stages synchronize at chunk boundaries.
  std::size_t chunk_requests = 1 << 15;
};

// How to build and address per-shard provider instances.
struct ShardedProviderSpec {
  // Builds the provider owning shard `shard` of `shards`.
  std::function<std::unique_ptr<core::VolumeProvider>(std::size_t shard,
                                                      std::size_t shards)>
      make;
  // Maps a request to the shard whose provider must see it. Requests that
  // touch the same provider state (the same volume) MUST map to the same
  // shard; stateless providers may use any stable function of the request.
  std::function<std::size_t(const trace::Request& request,
                            std::size_t shards)>
      shard_of;
};

// Directory volumes: shard by (server, directory-prefix) — the volume key —
// so each volume's FIFO state lives wholly in one shard. Shard k of S gets
// volume ids k, k+S, k+2S, ... (see DirectoryVolumeConfig::id_offset).
// The spec borrows the path table (a view into a Trace or an mmap'd
// container); the table's backing must outlive the spec. Building the spec
// precomputes one prefix hash per distinct path, so shard_of never hashes
// a string per request.
ShardedProviderSpec shard_directory_volumes(
    const volume::DirectoryVolumeConfig& config, util::StringTableView paths);
ShardedProviderSpec shard_directory_volumes(
    const volume::DirectoryVolumeConfig& config, const trace::Trace& trace);

// Probability volumes: stateless lookups into a shared immutable set; any
// stable hash balances the work. `set` must outlive the returned spec.
ShardedProviderSpec shard_probability_volumes(
    const volume::ProbabilityVolumeSet* set, std::size_t max_candidates);

struct ParallelEvalStats {
  std::size_t threads = 0;
  std::size_t provider_shards = 0;
  std::size_t source_shards = 0;
  std::size_t volume_count = 0;  // summed over shard providers
};

// Checkpoint/restore hooks for run_range. The evaluator guarantees the
// ordering: every warm_provider call completes before any request is
// processed, seed_accumulator likewise, and capture runs after the last
// request of the range, before results merge — so captured state is
// exactly the state an uninterrupted run would carry past `end`.
struct EvalResumeHooks {
  // Seed one freshly built provider shard's volume state.
  std::function<void(core::VolumeProvider& provider, std::size_t shard,
                     std::size_t shards)>
      warm_provider;
  // Seed one source shard's metric/frequency/RPV state.
  std::function<void(detail::MetricAccumulator& accumulator, std::size_t shard,
                     std::size_t shards)>
      seed_accumulator;
  // Observe final per-shard state (providers indexed by provider shard,
  // accumulators by source shard).
  std::function<void(
      std::span<core::VolumeProvider* const> providers,
      std::span<detail::MetricAccumulator* const> accumulators)>
      capture;
};

class ParallelEvaluator {
 public:
  ParallelEvaluator(const EvalConfig& config, const ParallelEvalConfig& par)
      : config_(config), par_(par) {}

  // `trace` must be time-sorted. Returns exactly what
  // PredictionEvaluator::run would return for an equivalent provider.
  EvalResult run(const trace::Trace& trace,
                 const ShardedProviderSpec& provider,
                 const core::MetaOracle& meta,
                 ParallelEvalStats* stats = nullptr);

  // Checkpoint-grade variant: replays requests [begin, end) with optional
  // resume hooks (nullptr = cold start). Publishes the eval.* metrics only
  // when `publish` is set — a partial run's counters are not final.
  EvalResult run_range(const trace::Trace& trace,
                       const ShardedProviderSpec& provider,
                       const core::MetaOracle& meta, std::size_t begin,
                       std::size_t end, bool publish,
                       const EvalResumeHooks* hooks,
                       ParallelEvalStats* stats = nullptr);

  // Batch-cursor variants over a TraceView (streaming or wrapped
  // in-memory): one chunk-sized window is decoded per chunk and the
  // provider-shard column is computed per chunk, so memory stays bounded
  // by the chunk size regardless of trace length. Bit-identical to the
  // Trace overloads, which delegate here.
  EvalResult run(trace::TraceView& view, const ShardedProviderSpec& provider,
                 const core::MetaOracle& meta,
                 ParallelEvalStats* stats = nullptr);
  EvalResult run_range(trace::TraceView& view,
                       const ShardedProviderSpec& provider,
                       const core::MetaOracle& meta, std::size_t begin,
                       std::size_t end, bool publish,
                       const EvalResumeHooks* hooks,
                       ParallelEvalStats* stats = nullptr);

 private:
  EvalConfig config_;
  ParallelEvalConfig par_;
};

}  // namespace piggyweb::sim

// Prediction evaluator: replays a server log through a volume provider +
// proxy filter and measures the paper's §3.1 metrics:
//
//   * fraction predicted — requests whose resource appeared in a piggyback
//     to the same source within the last T seconds (recall);
//   * true prediction fraction — piggybacked resources that were then
//     requested within T; multiple mentions inside one T-interval count as
//     a single prediction (precision);
//   * update fraction — requests predicted within T whose resource was
//     previously requested within C (> T) — the cache-coherency payoff;
//   * average piggyback size, per message and per request.
//
// Sources in a server log are the paper's pseudo-proxies. The evaluator
// drives the provider for *every* request (volumes are maintained by all
// traffic) but applies frequency control / RPV suppression to decide which
// responses actually carry piggybacks.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

#include "core/filter.h"
#include "core/piggyback.h"
#include "core/rpv.h"
#include "trace/record.h"

namespace piggyweb::trace {
class TraceView;
}

namespace piggyweb::sim {

namespace detail {
class MetricAccumulator;
}

struct EvalProgress {
  std::size_t done = 0;         // requests completed within the range
  std::size_t total = 0;        // requests in the evaluated range
  std::size_t queue_depth = 0;  // pending pool tasks (parallel path only)
};

struct EvalConfig {
  util::Seconds prediction_window = 300;       // T
  util::Seconds cache_horizon = 2 * util::kHour;  // C

  core::ProxyFilter filter;  // static filter (maxpiggy, minfreq, pt, ...)

  // RPV suppression: when on, each source keeps an RPV list per server and
  // sends it with every request.
  bool use_rpv = false;
  core::RpvConfig rpv;

  // Frequency control: minimum time between piggybacks from the same
  // server to the same source (0 = off).
  util::Seconds min_piggyback_interval = 0;

  // Progress heartbeat, fired on the evaluating (calling) thread after
  // each internal batch (serial path) or chunk barrier (parallel path)
  // with the requests completed so far within the evaluated range.
  // queue_depth is the worker-pool backlog at that instant — always 0 on
  // the serial path. Purely observational: results are bit-identical
  // with or without a callback installed. Null = off.
  std::function<void(const EvalProgress&)> on_progress;
};

struct EvalResult {
  std::uint64_t requests = 0;
  std::uint64_t predicted_requests = 0;
  std::uint64_t piggyback_messages = 0;
  std::uint64_t piggyback_elements = 0;
  std::uint64_t predictions_made = 0;
  std::uint64_t predictions_true = 0;
  std::uint64_t prev_occurrence_within_horizon = 0;  // < C ("cache hits")
  std::uint64_t prev_occurrence_within_window = 0;   // < T (already fresh)
  std::uint64_t updated_by_piggyback = 0;  // predicted<T, T<prev occ<C

  double fraction_predicted() const {
    return requests == 0 ? 0.0
                         : static_cast<double>(predicted_requests) /
                               static_cast<double>(requests);
  }
  double true_prediction_fraction() const {
    return predictions_made == 0
               ? 0.0
               : static_cast<double>(predictions_true) /
                     static_cast<double>(predictions_made);
  }
  // Elements per message actually sent (the paper's "average piggyback
  // size" for the accuracy/size trade-off figures).
  double avg_piggyback_size() const {
    return piggyback_messages == 0
               ? 0.0
               : static_cast<double>(piggyback_elements) /
                     static_cast<double>(piggyback_messages);
  }
  // Elements per request (piggyback *traffic*; what RPV thinning reduces).
  double elements_per_request() const {
    return requests == 0 ? 0.0
                         : static_cast<double>(piggyback_elements) /
                               static_cast<double>(requests);
  }
  double update_fraction() const {
    return requests == 0
               ? 0.0
               : static_cast<double>(prev_occurrence_within_window +
                                     updated_by_piggyback) /
                     static_cast<double>(requests);
  }
};

class PredictionEvaluator {
 public:
  explicit PredictionEvaluator(const EvalConfig& config) : config_(config) {}

  // `trace` must be time-sorted. The provider is driven once per request;
  // `meta` answers size/type/access-count queries for the filter.
  EvalResult run(const trace::Trace& trace, core::VolumeProvider& provider,
                 const core::MetaOracle& meta);

  // Checkpoint-grade variant: replays requests [begin, end) through `acc`,
  // whose per-source state (and the provider's volume state) may have been
  // seeded from a snapshot, and returns acc's cumulative result. Publishes
  // the eval.* metrics only when `publish` is set — a partial run's
  // counters are not final.
  EvalResult run_range(const trace::Trace& trace,
                       core::VolumeProvider& provider,
                       const core::MetaOracle& meta, std::size_t begin,
                       std::size_t end, detail::MetricAccumulator& acc,
                       bool publish);

  // Batch-cursor variants: replay straight off a TraceView (a streaming
  // PIGGYTRC cursor or a wrapped in-memory trace) without materializing a
  // Trace. Results are bit-identical to the Trace overloads — the Trace
  // overloads delegate here through a MaterializedTraceView. The view's
  // windows must be time-sorted (checked incrementally, window by window).
  EvalResult run(trace::TraceView& view, core::VolumeProvider& provider,
                 const core::MetaOracle& meta);
  EvalResult run_range(trace::TraceView& view, core::VolumeProvider& provider,
                       const core::MetaOracle& meta, std::size_t begin,
                       std::size_t end, detail::MetricAccumulator& acc,
                       bool publish);

 private:
  EvalConfig config_;
};

}  // namespace piggyweb::sim

#include "sim/topology.h"

#include <cmath>

#include "util/expect.h"

namespace piggyweb::sim {

void validate_topology(const Topology& topology) {
  const auto n = static_cast<int>(topology.nodes.size());
  PW_EXPECT(n > 0);
  for (int i = 0; i < n; ++i) {
    const int parent = topology.nodes[static_cast<std::size_t>(i)].parent;
    PW_EXPECT(parent >= -1 && parent < n);
    PW_EXPECT(parent != i);
  }
  // Walking parent pointers from any node must reach a root within n
  // hops; a longer walk means a cycle.
  for (int i = 0; i < n; ++i) {
    int node = i;
    int hops = 0;
    while (topology.nodes[static_cast<std::size_t>(node)].parent != -1) {
      node = topology.nodes[static_cast<std::size_t>(node)].parent;
      PW_EXPECT(++hops <= n);
    }
  }
}

int depth_of(const Topology& topology, int node) {
  int depth = 0;
  while (topology.nodes[static_cast<std::size_t>(node)].parent != -1) {
    node = topology.nodes[static_cast<std::size_t>(node)].parent;
    ++depth;
  }
  return depth;
}

std::vector<int> leaf_indices(const Topology& topology) {
  const auto n = topology.nodes.size();
  std::vector<bool> has_child(n, false);
  for (const auto& node : topology.nodes) {
    if (node.parent != -1) has_child[static_cast<std::size_t>(node.parent)] = true;
  }
  std::vector<int> leaves;
  for (std::size_t i = 0; i < n; ++i) {
    if (!has_child[i]) leaves.push_back(static_cast<int>(i));
  }
  return leaves;
}

std::vector<int> root_indices(const Topology& topology) {
  std::vector<int> roots;
  for (std::size_t i = 0; i < topology.nodes.size(); ++i) {
    if (topology.nodes[i].parent == -1) roots.push_back(static_cast<int>(i));
  }
  return roots;
}

Topology uniform_tree_topology(const UniformTreeSpec& spec) {
  PW_EXPECT(spec.depth >= 1);
  PW_EXPECT(spec.fanout >= 1);
  Topology topology;

  const double root_cap =
      static_cast<double>(spec.root_cache.capacity_bytes);
  const double leaf_cap =
      static_cast<double>(spec.leaf_cache.capacity_bytes);

  // Level by level; nodes of level l-1 are the parents of level l.
  std::vector<int> previous_level;
  for (int level = 0; level < spec.depth; ++level) {
    const bool is_leaf_level = level == spec.depth - 1;
    proxy::CacheConfig cache = is_leaf_level ? spec.leaf_cache
                                             : spec.root_cache;
    if (spec.depth > 1) {
      const double t = static_cast<double>(level) /
                       static_cast<double>(spec.depth - 1);
      cache.capacity_bytes = static_cast<std::uint64_t>(
          root_cap * std::pow(leaf_cap / root_cap, t));
    }
    std::vector<int> current_level;
    const std::size_t parents = level == 0 ? 1 : previous_level.size();
    for (std::size_t p = 0; p < parents; ++p) {
      const int fan = level == 0 ? 1 : spec.fanout;
      for (int c = 0; c < fan; ++c) {
        ProxyNodeSpec node;
        node.name = level == 0
                        ? "root"
                        : "l" + std::to_string(level) + "." +
                              std::to_string(current_level.size());
        node.parent = level == 0 ? -1 : previous_level[p];
        node.cache = cache;
        node.enable_coherency = spec.enable_coherency;
        node.base_filter = spec.base_filter;
        node.rpv = spec.rpv;
        if (level == 0) {
          node.link = spec.origin_link;
          // The origins see the root proxy as one aggregated client.
          node.upstream_source = 0xfffffff0u;
        }
        current_level.push_back(static_cast<int>(topology.nodes.size()));
        topology.nodes.push_back(std::move(node));
      }
    }
    previous_level = std::move(current_level);
  }
  return topology;
}

}  // namespace piggyweb::sim

// Authoritative piggyback metadata for simulators: sizes/types/
// Last-Modified from the synthetic site models (what a cooperating origin
// server knows), access counts from observed traffic. Simulators feed this
// to the volume center so piggybacked Last-Modified values reflect real
// changes — a center restricted to traffic-learned metadata would keep
// refreshing entries that changed since their last observed fetch.
#pragma once

#include <cstdint>
#include <vector>

#include "core/filter.h"
#include "trace/synthetic.h"
#include "util/flat_map.h"

namespace piggyweb::sim {

class GroundTruthMeta final : public core::MetaOracle {
 public:
  // `sites` maps trace server ids to site models (nullptr = unknown host)
  // and may be filled after construction; only the address is captured.
  GroundTruthMeta(const trace::SyntheticWorkload& workload,
                  const std::vector<const trace::SiteModel*>& sites)
      : workload_(&workload), site_by_server_(&sites) {}

  void set_now(util::TimePoint now) { now_ = now; }
  void note_access(util::InternId server, util::InternId resource) {
    ++counts_[(static_cast<std::uint64_t>(server) << 32) | resource];
  }

  core::ResourceMeta lookup(util::InternId server,
                            util::InternId resource) const override;

 private:
  const trace::SyntheticWorkload* workload_;
  const std::vector<const trace::SiteModel*>* site_by_server_;
  util::TimePoint now_{};
  util::FlatMap<std::uint64_t, std::uint64_t> counts_;
};

}  // namespace piggyweb::sim

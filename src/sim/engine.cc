#include "sim/engine.h"

#include <string>

#include "core/wire_size.h"
#include "obs/registry.h"
#include "obs/tracer.h"
#include "util/hash.h"

namespace piggyweb::sim {

namespace {

void merge_coherency(proxy::CoherencyStats& into,
                     const proxy::CoherencyStats& from) {
  into.piggybacks_processed += from.piggybacks_processed;
  into.elements_processed += from.elements_processed;
  into.refreshed += from.refreshed;
  into.invalidated += from.invalidated;
  into.not_cached += from.not_cached;
}

}  // namespace

std::uint64_t EngineResult::total_fresh_hits() const {
  std::uint64_t total = 0;
  for (const auto& node : nodes) total += node.fresh_hits_served;
  return total;
}

std::uint64_t EngineResult::leaf_fresh_hits() const {
  std::uint64_t total = 0;
  for (const auto& node : nodes) {
    if (node.is_leaf && !node.is_root) total += node.fresh_hits_served;
  }
  return total;
}

std::uint64_t EngineResult::root_fresh_hits() const {
  std::uint64_t total = 0;
  for (const auto& node : nodes) {
    if (node.is_root) total += node.fresh_hits_served;
  }
  return total;
}

proxy::CoherencyStats EngineResult::merged_leaf_coherency() const {
  proxy::CoherencyStats merged;
  for (const auto& node : nodes) {
    if (node.is_leaf && !node.is_root) merge_coherency(merged, node.coherency);
  }
  return merged;
}

proxy::CoherencyStats EngineResult::merged_root_coherency() const {
  proxy::CoherencyStats merged;
  for (const auto& node : nodes) {
    if (node.is_root) merge_coherency(merged, node.coherency);
  }
  return merged;
}

SimulationEngine::SimulationEngine(const trace::SyntheticWorkload& workload,
                                   const Topology& topology,
                                   const EngineConfig& config)
    : workload_(workload),
      topology_(topology),
      config_(config),
      center_(config.volumes, workload.trace.paths()),
      truth_meta_(workload, site_by_server_) {
  validate_topology(topology_);

  nodes_.reserve(topology_.nodes.size());
  for (std::size_t i = 0; i < topology_.nodes.size(); ++i) {
    nodes_.push_back(std::make_unique<ProxyNode>(
        topology_.nodes[i], depth_of(topology_, static_cast<int>(i))));
  }
  for (const int leaf : leaf_indices(topology_)) {
    std::vector<int> path;
    int node = leaf;
    while (node != -1) {
      path.push_back(node);
      node = topology_.nodes[static_cast<std::size_t>(node)].parent;
    }
    leaf_paths_.push_back(std::move(path));
  }

  // Resolve each trace server id to its site model once.
  const auto& servers = workload.trace.servers();
  site_by_server_.assign(servers.size(), nullptr);
  for (std::uint32_t id = 0; id < servers.size(); ++id) {
    site_by_server_[id] = workload.site_for(servers.str(id));
  }
  center_.set_meta_override(&truth_meta_);
  if (config_.probability_volumes != nullptr) {
    probability_provider_.emplace(config_.probability_volumes,
                                  config_.probability_max_candidates);
    center_.set_provider_override(&*probability_provider_);
  }
  if (!workload.trace.requests().empty()) {
    trace_start_ = workload.trace.requests().front().time;
  }
}

const std::vector<int>& SimulationEngine::path_for_source(
    util::InternId source) const {
  return leaf_paths_[util::mix64(source) % leaf_paths_.size()];
}

void SimulationEngine::apply_adaptive_ttl_elements(
    ProxyNode& node, util::InternId server,
    const core::PiggybackMessage& message) {
  for (const auto& element : message.elements) {
    const proxy::CacheKey key{server, element.resource};
    node.adaptive_ttl.observe(key, element.last_modified);
    node.adaptive_ttl.apply_to(node.cache, key);
  }
}

void SimulationEngine::process_piggyback(const std::vector<int>& path,
                                         util::InternId server,
                                         const core::PiggybackMessage& message,
                                         util::TimePoint now) {
  if (message.empty()) return;
  auto& root = *nodes_[static_cast<std::size_t>(path.back())];
  result_.piggyback_bytes +=
      core::piggyback_bytes(message, workload_.trace.paths());
  root.filter_policy.on_piggyback(server, message.volume, now);

  if (root.spec.enable_adaptive_ttl) {
    apply_adaptive_ttl_elements(root, server, message);
  }
  if (root.spec.enable_coherency) {
    root.coherency.process(server, message, now);
  }
  if (root.spec.enable_prefetch) {
    const auto planned = root.prefetcher.plan(server, message, now);
    for (const auto& element : planned) {
      // Background fetch: costs bandwidth/packets but no user latency.
      bool reused = false;
      if (root.connections) {
        reused = root.connections->use(0xfffffffeu, server, now);
      }
      if (root.cost) {
        const auto cost = root.cost->exchange(
            config_.request_overhead_bytes,
            element.size + config_.response_overhead_bytes, reused);
        result_.prefetch_latency_sum += cost.latency_seconds;
        result_.total_packets += cost.packets;
        result_.body_bytes += element.size;
      }
      root.prefetcher.complete(server, element, now);
    }
  }

  // Relay down the request path so lower cache levels see the same
  // server message (§5); each node applies its own enabled policies.
  if (!topology_.relay_to_descendants) return;
  for (std::size_t i = path.size() - 1; i-- > 0;) {
    auto& node = *nodes_[static_cast<std::size_t>(path[i])];
    if (node.spec.enable_adaptive_ttl) {
      apply_adaptive_ttl_elements(node, server, message);
    }
    if (node.spec.enable_coherency) {
      node.coherency.process(server, message, now);
    }
  }
}

namespace {

// Final-result export: reads only the finished EngineResult, so every
// metric is deterministic — the engine is single-threaded and the walk is
// a pure function of (workload, topology, config).
void publish_engine_result(const EngineResult& result) {
  auto* metrics = obs::global_metrics();
  if (metrics == nullptr) return;
  metrics->counter("engine.client_requests").add(result.client_requests);
  metrics->counter("engine.unresolved").add(result.unresolved);
  metrics->counter("engine.server_contacts").add(result.server_contacts);
  metrics->counter("engine.stale_served").add(result.stale_served);
  metrics->counter("engine.validations").add(result.validations);
  metrics->counter("engine.validations_not_modified")
      .add(result.validations_not_modified);
  metrics->counter("engine.piggyback_bytes").add(result.piggyback_bytes);
  metrics->counter("engine.total_packets").add(result.total_packets);
  metrics->counter("engine.body_bytes").add(result.body_bytes);
  metrics->counter("engine.fresh_hits").add(result.total_fresh_hits());
  metrics->counter("engine.connections_opened").add(result.connections.opened);
  metrics->counter("engine.connections_reused").add(result.connections.reused);
  for (const auto& node : result.nodes) {
    const std::string prefix = "engine.node." + node.name + ".";
    metrics->counter(prefix + "fresh_hits_served").add(node.fresh_hits_served);
    metrics->counter(prefix + "stale_served").add(node.stale_served);
    metrics->counter(prefix + "upstream_fetches").add(node.upstream_fetches);
  }
}

}  // namespace

EngineResult SimulationEngine::run() {
  OBS_SPAN("engine.run");
  const auto& trace = workload_.trace;
  obs::Span walk_span(obs::global_tracer(), "engine.request_walk");
  for (const auto& req : trace.requests()) {
    ++result_.client_requests;
    const auto now = req.time;
    const proxy::CacheKey key{req.server, req.path};
    const auto* site = site_by_server_[req.server];
    if (site == nullptr) {  // unknown host: pass-through not modeled
      ++result_.unresolved;
      continue;
    }

    // Resolve ground truth for this resource.
    const auto rkey = key.packed();
    auto [res_it, res_inserted] = resource_index_.try_emplace(rkey, 0);
    if (res_inserted) {
      res_it->second = site->index_of(trace.paths().str(req.path));
    }
    const auto res_idx = res_it->second;
    if (res_idx >= site->size()) {  // not a site resource
      ++result_.unresolved;
      continue;
    }
    const auto& resource = site->resource(res_idx);
    const auto true_lm = site->last_modified(res_idx, now);

    const auto& path = path_for_source(req.source);

    // Walk up the chain until a fresh copy answers.
    std::size_t serve_pos = path.size();  // path.size() = origin
    auto root_outcome = proxy::LookupOutcome::kMiss;
    for (std::size_t i = 0; i < path.size(); ++i) {
      auto& node = *nodes_[static_cast<std::size_t>(path[i])];
      node.prefetcher.on_client_request(key, now);
      const auto outcome = node.cache.lookup(key, now);
      if (outcome == proxy::LookupOutcome::kFreshHit) {
        serve_pos = i;
        break;
      }
      if (i + 1 == path.size()) root_outcome = outcome;
    }

    if (serve_pos < path.size()) {
      // Served from a cache. Was the copy actually fresh?
      auto& server_node = *nodes_[static_cast<std::size_t>(path[serve_pos])];
      ++server_node.fresh_hits_served;
      const auto cached = server_node.cache.cached_last_modified(key);
      if (cached && *cached < true_lm.value) {
        ++result_.stale_served;
        ++server_node.stale_served;
      }
      // The serving node's copy flows down to every node on the path
      // below it; traversed links with cost models account the transfer.
      for (std::size_t i = serve_pos; i-- > 0;) {
        auto& below = *nodes_[static_cast<std::size_t>(path[i])];
        below.cache.insert(key, resource.size,
                           cached.value_or(true_lm.value), now);
        ++below.upstream_fetches;
        if (below.connections) {
          const bool reused = below.connections->use(
              below.upstream_source_for(req.source), req.server, now);
          const auto cost = below.cost->exchange(
              config_.request_overhead_bytes,
              resource.size + config_.response_overhead_bytes, reused);
          result_.user_latency_sum += cost.latency_seconds;
          result_.total_packets += cost.packets;
        }
        if (below.spec.enable_informed_fetch) {
          below.fetch_log.push_back(
              {below.fetch_log.size(),
               resource.size + config_.response_overhead_bytes,
               static_cast<double>(now - trace_start_)});
        }
      }
      continue;
    }

    // Nobody had a fresh copy: the root contacts the origin (miss = full
    // GET; stale hit = If-Modified-Since).
    ++result_.server_contacts;
    auto& root = *nodes_[static_cast<std::size_t>(path.back())];
    ++root.upstream_fetches;
    bool reused = false;
    if (root.connections) {
      reused = root.connections->use(root.upstream_source_for(req.source),
                                     req.server, now);
    }
    core::ProxyFilter filter;
    if (config_.piggybacking) {
      filter = root.filter_policy.filter_for(req.server, now);
    } else {
      filter.enabled = false;
    }

    std::uint64_t response_body = 0;
    if (root_outcome == proxy::LookupOutcome::kStaleHit) {
      ++root.validations;
      ++result_.validations;
      const auto cached_lm = root.cache.cached_last_modified(key);
      if (cached_lm && *cached_lm >= true_lm.value) {
        ++root.validations_not_modified;  // 304
        ++result_.validations_not_modified;
        root.cache.revalidate(key, now);
      } else {
        response_body = resource.size;  // changed: fresh 200 body
        root.cache.insert(key, resource.size, true_lm.value, now);
      }
    } else {
      response_body = resource.size;
      root.cache.insert(key, resource.size, true_lm.value, now);
    }
    // The fresh copy flows down to the rest of the request path.
    for (std::size_t i = path.size() - 1; i-- > 0;) {
      nodes_[static_cast<std::size_t>(path[i])]->cache.insert(
          key, resource.size, true_lm.value, now);
    }
    for (std::size_t i = path.size(); i-- > 0;) {
      auto& node = *nodes_[static_cast<std::size_t>(path[i])];
      if (node.spec.enable_adaptive_ttl) {
        node.adaptive_ttl.observe(key, true_lm.value);
        node.adaptive_ttl.apply_to(node.cache, key);
      }
    }

    // PCV: batch soon-to-expire entries for this server onto the request;
    // verdicts come back on the same response (one exchange, no extra
    // round trips). The paper's [10] mechanism, driven by ground truth.
    std::uint64_t pcv_bytes = 0;
    if (root.spec.enable_pcv) {
      const auto items = root.pcv.plan(req.server, now);
      if (!items.empty()) {
        core::ValidationReply reply;
        for (const auto& item : items) {
          const auto item_idx =
              site->index_of(trace.paths().str(item.resource));
          if (item_idx >= site->size()) continue;
          const auto current = site->last_modified(item_idx, now).value;
          if (item.last_modified >= current) {
            reply.fresh.push_back(item.resource);
          } else {
            reply.stale.push_back({item.resource, current});
          }
          // ~(url + 8B timestamp) each way, as in the §2.3 accounting.
          pcv_bytes += 2 * (trace.paths().str(item.resource).size() + 8);
        }
        root.pcv.process(req.server, reply, now);
      }
    }

    // The volume center on the path injects the piggyback (filling
    // elements from authoritative metadata).
    truth_meta_.set_now(now);
    truth_meta_.note_access(req.server, req.path);
    const auto message = center_.observe(
        req.server, root.upstream_source_for(req.source), req.path, now,
        resource.size, true_lm.value, filter);

    const auto piggy_bytes = core::piggyback_bytes(message, trace.paths());
    result_.piggyback_bytes += pcv_bytes;
    if (root.cost) {
      const auto cost = root.cost->exchange(
          config_.request_overhead_bytes + pcv_bytes / 2,
          response_body + config_.response_overhead_bytes + piggy_bytes +
              pcv_bytes / 2,
          reused);
      result_.user_latency_sum += cost.latency_seconds;
      result_.total_packets += cost.packets;
      result_.body_bytes += response_body;
    }
    if (root.spec.enable_informed_fetch) {
      root.fetch_log.push_back(
          {root.fetch_log.size(),
           response_body + config_.response_overhead_bytes + piggy_bytes +
               pcv_bytes / 2,
           static_cast<double>(now - trace_start_)});
    }
    // Inner links below the root carry the response body downstream.
    for (std::size_t i = path.size() - 1; i-- > 0;) {
      auto& below = *nodes_[static_cast<std::size_t>(path[i])];
      ++below.upstream_fetches;
      if (below.connections) {
        const bool inner_reused = below.connections->use(
            below.upstream_source_for(req.source), req.server, now);
        const auto cost = below.cost->exchange(
            config_.request_overhead_bytes,
            response_body + config_.response_overhead_bytes, inner_reused);
        result_.user_latency_sum += cost.latency_seconds;
        result_.total_packets += cost.packets;
      }
      if (below.spec.enable_informed_fetch) {
        below.fetch_log.push_back(
            {below.fetch_log.size(),
             response_body + config_.response_overhead_bytes,
             static_cast<double>(now - trace_start_)});
      }
    }

    process_piggyback(path, req.server, message, now);
  }
  walk_span.end();

  OBS_SPAN("engine.collect_stats");
  // Collect per-node stats.
  std::vector<bool> is_leaf(nodes_.size(), false);
  for (const int leaf : leaf_indices(topology_)) {
    is_leaf[static_cast<std::size_t>(leaf)] = true;
  }
  result_.nodes.clear();
  result_.nodes.reserve(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const auto& node = *nodes_[i];
    NodeStats stats;
    stats.name = node.spec.name;
    stats.depth = node.depth;
    stats.is_leaf = is_leaf[i];
    stats.is_root = node.spec.parent == -1;
    stats.cache = node.cache.stats();
    stats.coherency = node.coherency.stats();
    stats.prefetch = node.prefetcher.stats();
    stats.pcv = node.pcv.stats();
    if (node.connections) {
      stats.connections = node.connections->stats();
      result_.connections.opened += stats.connections.opened;
      result_.connections.reused += stats.connections.reused;
    }
    stats.fresh_hits_served = node.fresh_hits_served;
    stats.stale_served = node.stale_served;
    stats.validations = node.validations;
    stats.validations_not_modified = node.validations_not_modified;
    stats.upstream_fetches = node.upstream_fetches;
    if (node.spec.enable_informed_fetch && !node.fetch_log.empty()) {
      // Replay the node's upstream fetch log through the single-bottleneck
      // scheduler, informed discipline vs the FIFO baseline (§4).
      const double bandwidth =
          node.spec.link ? node.spec.link->bandwidth_bytes_per_sec
                         : net::NetworkConfig{}.bandwidth_bytes_per_sec;
      stats.fetch_schedule = proxy::schedule_fetches(
          node.fetch_log, bandwidth, node.spec.fetch_discipline);
      stats.fetch_schedule_fifo = proxy::schedule_fetches(
          node.fetch_log, bandwidth, proxy::FetchDiscipline::kFifo);
    }
    result_.nodes.push_back(std::move(stats));
  }
  result_.center = center_.stats();
  publish_engine_result(result_);
  return result_;
}

}  // namespace piggyweb::sim

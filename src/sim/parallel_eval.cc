#include "sim/parallel_eval.h"

#include <algorithm>
#include <vector>

#include "obs/pool_metrics.h"
#include "obs/registry.h"
#include "obs/tracer.h"
#include "sim/eval_core.h"
#include "trace/stream.h"
#include "util/expect.h"
#include "util/hash.h"
#include "util/parallel.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace piggyweb::sim {

ShardedProviderSpec shard_directory_volumes(
    const volume::DirectoryVolumeConfig& config, util::StringTableView paths) {
  ShardedProviderSpec spec;
  spec.make = [config, paths](std::size_t shard, std::size_t shards) {
    auto shard_config = config;
    shard_config.id_offset = static_cast<core::VolumeId>(shard);
    shard_config.id_stride = static_cast<core::VolumeId>(shards);
    auto provider = std::make_unique<volume::DirectoryVolumes>(shard_config);
    provider->bind_paths(paths);
    return provider;
  };
  // Must agree with DirectoryVolumes::volume_key: same (server, prefix)
  // -> same shard, so each volume's state lives wholly in one shard. A
  // path's prefix hash never changes, so one precomputed hash per distinct
  // path replaces a directory_prefix scan + string hash per request.
  auto prefix_hash = std::make_shared<std::vector<std::uint64_t>>();
  prefix_hash->reserve(paths.size());
  for (std::size_t id = 0; id < paths.size(); ++id) {
    prefix_hash->push_back(util::fnv1a(util::directory_prefix(
        paths.str(static_cast<util::InternId>(id)), config.level)));
  }
  spec.shard_of = [prefix_hash = std::move(prefix_hash)](
                      const trace::Request& request, std::size_t shards) {
    return static_cast<std::size_t>(
        util::hash_combine(request.server, (*prefix_hash)[request.path]) %
        shards);
  };
  return spec;
}

ShardedProviderSpec shard_directory_volumes(
    const volume::DirectoryVolumeConfig& config, const trace::Trace& trace) {
  return shard_directory_volumes(config,
                                 util::StringTableView(trace.paths()));
}

ShardedProviderSpec shard_probability_volumes(
    const volume::ProbabilityVolumeSet* set, std::size_t max_candidates) {
  PW_EXPECT(set != nullptr);
  ShardedProviderSpec spec;
  spec.make = [set, max_candidates](std::size_t /*shard*/,
                                    std::size_t /*shards*/) {
    // Lookups into the shared immutable set are read-only, so every shard
    // may wrap the same table.
    return std::make_unique<volume::ProbabilityVolumes>(set, max_candidates);
  };
  spec.shard_of = [](const trace::Request& request, std::size_t shards) {
    return static_cast<std::size_t>(
        util::hash_id_pair(request.server, request.path) % shards);
  };
  return spec;
}

EvalResult ParallelEvaluator::run(const trace::Trace& trace,
                                  const ShardedProviderSpec& spec,
                                  const core::MetaOracle& meta,
                                  ParallelEvalStats* stats) {
  return run_range(trace, spec, meta, 0, trace.requests().size(),
                   /*publish=*/true, /*hooks=*/nullptr, stats);
}

EvalResult ParallelEvaluator::run_range(const trace::Trace& trace,
                                        const ShardedProviderSpec& spec,
                                        const core::MetaOracle& meta,
                                        std::size_t range_begin,
                                        std::size_t range_end, bool publish,
                                        const EvalResumeHooks* hooks,
                                        ParallelEvalStats* stats) {
  trace::MaterializedTraceView view(trace);
  return run_range(view, spec, meta, range_begin, range_end, publish, hooks,
                   stats);
}

EvalResult ParallelEvaluator::run(trace::TraceView& view,
                                  const ShardedProviderSpec& spec,
                                  const core::MetaOracle& meta,
                                  ParallelEvalStats* stats) {
  return run_range(view, spec, meta, 0, view.request_count(),
                   /*publish=*/true, /*hooks=*/nullptr, stats);
}

EvalResult ParallelEvaluator::run_range(trace::TraceView& view,
                                        const ShardedProviderSpec& spec,
                                        const core::MetaOracle& meta,
                                        std::size_t range_begin,
                                        std::size_t range_end, bool publish,
                                        const EvalResumeHooks* hooks,
                                        ParallelEvalStats* stats) {
  OBS_SPAN("parallel_eval.run");
  PW_EXPECT(range_begin <= range_end && range_end <= view.request_count());
  PW_EXPECT(config_.cache_horizon > config_.prediction_window);
  PW_EXPECT(spec.make != nullptr);
  PW_EXPECT(spec.shard_of != nullptr);

  const std::size_t threads =
      par_.threads != 0 ? par_.threads : util::ThreadPool::hardware_threads();
  const std::size_t pshards =
      par_.provider_shards != 0 ? par_.provider_shards : threads;
  const std::size_t sshards =
      par_.source_shards != 0 ? par_.source_shards : threads;
  const std::size_t chunk = par_.chunk_requests != 0
                                ? par_.chunk_requests
                                : std::size_t{1} << 15;

  // Pool timing metrics are scheduling-dependent, hence non-deterministic;
  // null registry -> null observer -> the pool's fast path.
  const auto pool_metrics =
      obs::make_pool_metrics(obs::global_metrics(), "parallel_eval.pool");
  util::ThreadPool pool(threads, pool_metrics.get());

  // One provider instance per provider shard; shard-local volume state.
  std::vector<std::unique_ptr<core::VolumeProvider>> providers;
  providers.reserve(pshards);
  for (std::size_t s = 0; s < pshards; ++s) {
    providers.push_back(spec.make(s, pshards));
    PW_ENSURE(providers.back() != nullptr);
  }
  if (hooks != nullptr && hooks->warm_provider) {
    for (std::size_t s = 0; s < pshards; ++s) {
      hooks->warm_provider(*providers[s], s, pshards);
    }
  }

  // Each request's provider shard is a pure function of the request; the
  // column is computed chunk by chunk over the current window (in
  // parallel), so its memory is bounded by the chunk size, not the range.
  std::vector<std::uint32_t> provider_shard(
      std::min(chunk, range_end - range_begin));

  const auto source_shard = [sshards](util::InternId source) {
    return static_cast<std::size_t>(util::mix64(source) % sshards);
  };

  // Per-source-shard metric state, persistent across chunks.
  std::vector<detail::MetricAccumulator> accumulators;
  accumulators.reserve(sshards);
  for (std::size_t s = 0; s < sshards; ++s) {
    accumulators.emplace_back(config_);
  }
  if (hooks != nullptr && hooks->seed_accumulator) {
    for (std::size_t s = 0; s < sshards; ++s) {
      hooks->seed_accumulator(accumulators[s], s, sshards);
    }
  }

  // Per-request staging slots for the current chunk, reused across chunks.
  struct Staged {
    core::VolumeId volume = core::kNoVolume;
    std::vector<util::InternId> resources;
  };
  std::vector<Staged> staged(std::min(chunk, range_end - range_begin));

  // Per-provider-shard batching scratch, persistent across chunks so the
  // steady state allocates nothing.
  const trace::PathTypeTable types(view.paths());
  struct ShardScratch {
    std::vector<std::size_t> rows;  // window-relative indices owned this chunk
    std::vector<core::VolumeRequest> batch;
    std::vector<core::VolumePrediction> predictions;
    core::PiggybackMessage message;
  };
  std::vector<ShardScratch> scratch(pshards);
  util::Seconds last_time = detail::kNever;

  for (std::size_t begin = range_begin; begin < range_end; begin += chunk) {
    const auto end = std::min(begin + chunk, range_end);
    // One window per chunk: a subspan for materialized traces, a bounded
    // decode off the mapped columns for streaming ones. Workers only read
    // the span, so sharing it across the two stage barriers is safe.
    const auto window = view.window(begin, end - begin);

    // Incremental sortedness contract, window by window.
    PW_EXPECT(window.empty() || window.front().time.value >= last_time);
    PW_EXPECT(std::is_sorted(window.begin(), window.end(),
                             [](const trace::Request& a,
                                const trace::Request& b) {
                               return a.time < b.time;
                             }));
    if (!window.empty()) last_time = window.back().time.value;

    // Provider-shard column for this window, computed in parallel.
    util::parallel_ranges(
        pool, window.size(), [&](std::size_t lo, std::size_t hi) {
          for (std::size_t i = lo; i < hi; ++i) {
            const auto s = spec.shard_of(window[i], pshards);
            PW_EXPECT(s < pshards);
            provider_shard[i] = static_cast<std::uint32_t>(s);
          }
        });

    // Stage 1: drive providers and apply the static filter, one batched
    // provider call per shard per chunk. Within a shard, requests are
    // visited in trace order, so per-volume state evolves exactly as in
    // the serial run.
    util::parallel_shards(pool, pshards, [&](std::size_t s) {
      OBS_SPAN("parallel_eval.provider_shard");
      auto& sc = scratch[s];
      sc.rows.clear();
      sc.batch.clear();
      for (std::size_t i = 0; i < window.size(); ++i) {
        if (provider_shard[i] != s) continue;
        sc.rows.push_back(i);
        sc.batch.push_back(detail::make_volume_request(
            window[i], types.type_of(window[i].path)));
      }
      providers[s]->on_request_batch(sc.batch, sc.predictions);
      for (std::size_t k = 0; k < sc.rows.size(); ++k) {
        core::apply_filter_into(sc.predictions[k], sc.batch[k],
                                config_.filter, meta, sc.message);
        auto& slot = staged[sc.rows[k]];
        slot.volume = sc.message.volume;
        slot.resources.clear();
        slot.resources.reserve(sc.message.elements.size());
        for (const auto& element : sc.message.elements) {
          slot.resources.push_back(element.resource);
        }
      }
    });

    // Stage 2: replay the staged messages through the per-source metric
    // machine — the same MetricAccumulator the serial evaluator uses.
    util::parallel_shards(pool, sshards, [&](std::size_t w) {
      OBS_SPAN("parallel_eval.metric_shard");
      auto& acc = accumulators[w];
      for (std::size_t i = 0; i < window.size(); ++i) {
        const auto& req = window[i];
        if (source_shard(req.source) != w) continue;
        const auto& slot = staged[i];
        acc.observe(req, slot.volume, slot.resources);
      }
    });

    if (config_.on_progress) {
      config_.on_progress(
          {end - range_begin, range_end - range_begin, pool.queue_depth()});
    }
  }

  if (hooks != nullptr && hooks->capture) {
    std::vector<core::VolumeProvider*> provider_ptrs;
    provider_ptrs.reserve(pshards);
    for (const auto& provider : providers) {
      provider_ptrs.push_back(provider.get());
    }
    std::vector<detail::MetricAccumulator*> accumulator_ptrs;
    accumulator_ptrs.reserve(sshards);
    for (auto& acc : accumulators) accumulator_ptrs.push_back(&acc);
    hooks->capture(provider_ptrs, accumulator_ptrs);
  }

  std::vector<EvalResult> partials;
  partials.reserve(sshards);
  for (const auto& acc : accumulators) partials.push_back(acc.result());

  if (stats != nullptr) {
    stats->threads = pool.thread_count();
    stats->provider_shards = pshards;
    stats->source_shards = sshards;
    stats->volume_count = 0;
    for (const auto& provider : providers) {
      stats->volume_count += provider->volume_count();
    }
  }
  auto result = detail::merge_results(partials);
  if (publish) detail::publish_eval_result(result);
  if (auto* metrics = obs::global_metrics(); metrics != nullptr) {
    // Parallel-shape gauges: a serial run never sets these, and a bigger
    // pool changes them, so they are non-deterministic by definition.
    constexpr bool kDet = false;
    metrics->gauge("parallel_eval.threads", kDet)
        .set_max(static_cast<double>(pool.thread_count()));
    metrics->gauge("parallel_eval.provider_shards", kDet)
        .set_max(static_cast<double>(pshards));
    metrics->gauge("parallel_eval.source_shards", kDet)
        .set_max(static_cast<double>(sshards));
    metrics->gauge("parallel_eval.chunk_requests", kDet)
        .set_max(static_cast<double>(chunk));
  }
  return result;
}

}  // namespace piggyweb::sim

#include "sim/locality.h"

#include <cstdint>

#include "util/expect.h"
#include "util/flat_map.h"
#include "util/intern.h"
#include "util/stats.h"
#include "util/strings.h"

namespace piggyweb::sim {

LocalityLevelResult directory_locality(const trace::Trace& trace, int level,
                                       const LocalityOptions& options) {
  PW_EXPECT(level >= 0);
  LocalityLevelResult result;
  result.level = level;

  // Intern each path id's prefix once; a (server, prefix) group is then
  // a packed pair of 32-bit ids, which keeps the per-request lookup on
  // the integer-keyed fast path.
  util::InternTable prefixes;
  std::vector<util::InternId> prefix_of(trace.paths().size(), 0);
  std::vector<bool> prefix_ready(trace.paths().size(), false);

  // (server, prefix) -> last time seen.
  util::FlatMap<std::uint64_t, util::Seconds> last_seen;
  util::Quantiles interarrivals;
  util::RunningStats interarrival_stats;

  for (const auto& req : trace.requests()) {
    if (options.exclude_images &&
        trace::classify_path(trace.paths().str(req.path)) ==
            trace::ContentType::kImage) {
      continue;
    }
    ++result.requests;
    if (!prefix_ready[req.path]) {
      prefix_of[req.path] = prefixes.intern(
          util::directory_prefix(trace.paths().str(req.path), level));
      prefix_ready[req.path] = true;
    }
    const std::uint64_t key =
        (static_cast<std::uint64_t>(req.server) << 32) | prefix_of[req.path];
    const auto it = last_seen.find(key);
    if (it != last_seen.end()) {
      ++result.seen_before;
      const auto gap = static_cast<double>(req.time.value - it->second);
      interarrivals.add(gap);
      interarrival_stats.add(gap);
      it->second = req.time.value;
    } else {
      last_seen.emplace(key, req.time.value);
    }
  }

  if (result.requests > 0) {
    result.seen_before_fraction =
        static_cast<double>(result.seen_before) /
        static_cast<double>(result.requests);
  }
  if (!interarrivals.empty()) {
    result.median_interarrival = interarrivals.median();
    result.mean_interarrival = interarrival_stats.mean();
    result.cdf_points = options.cdf_points;
    result.cdf_values.reserve(options.cdf_points.size());
    for (const auto p : options.cdf_points) {
      result.cdf_values.push_back(interarrivals.cdf(p));
    }
  }
  return result;
}

}  // namespace piggyweb::sim

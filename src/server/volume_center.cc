#include "server/volume_center.h"

#include "trace/record.h"

namespace piggyweb::server {

void LearnedMetaOracle::observe(util::InternId server,
                                util::InternId resource, std::uint64_t size,
                                std::int64_t last_modified) {
  auto& meta = meta_[key(server, resource)];
  ++meta.access_count;
  if (size > 0) meta.size = size;
  if (last_modified > meta.last_modified) meta.last_modified = last_modified;
  meta.type = trace::classify_path(paths_->str(resource));
}

core::ResourceMeta LearnedMetaOracle::lookup(
    util::InternId server, util::InternId resource) const {
  const auto it = meta_.find(key(server, resource));
  return it == meta_.end() ? core::ResourceMeta{} : it->second;
}

volume::DirectoryVolumes& VolumeCenter::provider_for(
    util::InternId server) {
  auto it = providers_.find(server);
  if (it == providers_.end()) {
    auto provider = std::make_unique<volume::DirectoryVolumes>(config_);
    provider->bind_paths(*paths_);
    it = providers_.emplace(server, std::move(provider)).first;
  }
  return *it->second;
}

core::PiggybackMessage VolumeCenter::observe(
    util::InternId server, util::InternId source, util::InternId path,
    util::TimePoint time, std::uint64_t size, std::int64_t last_modified,
    const core::ProxyFilter& filter) {
  ++stats_.exchanges_observed;
  meta_.observe(server, path, size, last_modified);

  core::VolumeRequest vr;
  vr.server = server;
  vr.source = source;
  vr.path = path;
  vr.time = time;
  vr.size = size;
  vr.type = trace::classify_path(paths_->str(path));
  auto& provider = provider_override_ != nullptr
                       ? *provider_override_
                       : static_cast<core::VolumeProvider&>(
                             provider_for(server));
  const auto prediction = provider.on_request(vr);
  const auto& meta =
      meta_override_ != nullptr ? *meta_override_
                                : static_cast<const core::MetaOracle&>(meta_);
  const auto message = core::apply_filter(prediction, vr, filter, meta);
  if (!message.empty()) {
    ++stats_.piggybacks_injected;
    stats_.elements_injected += message.elements.size();
  }
  return message;
}

VolumeCenterStats VolumeCenter::stats() const {
  auto s = stats_;
  s.servers_tracked = providers_.size();
  return s;
}

}  // namespace piggyweb::server

#include "server/meta.h"

namespace piggyweb::server {

core::ResourceMeta SiteMetaOracle::lookup(util::InternId /*server*/,
                                          util::InternId resource) const {
  core::ResourceMeta meta;
  const auto path = paths_.str(resource);
  const auto idx = site_.index_of(path);
  if (idx >= site_.size()) return meta;
  const auto& res = site_.resource(idx);
  meta.size = res.size;
  meta.type = res.type;
  meta.last_modified = site_.last_modified(idx, now_).value;
  const auto it = access_counts_.find(resource);
  meta.access_count = it == access_counts_.end() ? 0 : it->second;
  return meta;
}

TraceMetaOracle::TraceMetaOracle(const trace::Trace& trace) {
  observe_window(trace.requests(), trace.paths());
}

void TraceMetaOracle::observe_window(std::span<const trace::Request> window,
                                     util::StringTableView paths) {
  for (const auto& r : window) {
    auto& meta = meta_[key(r.server, r.path)];
    ++meta.access_count;
    if (r.status == 200 && r.size > meta.size) meta.size = r.size;
    if (r.last_modified > meta.last_modified) {
      meta.last_modified = r.last_modified;
    }
    // The type depends only on the path, so one scan at first touch
    // matches re-assigning it on every access.
    if (meta.access_count == 1) {
      meta.type = trace::classify_path(paths.str(r.path));
    }
  }
}

core::ResourceMeta TraceMetaOracle::lookup(util::InternId server,
                                           util::InternId resource) const {
  const auto it = meta_.find(key(server, resource));
  return it == meta_.end() ? core::ResourceMeta{} : it->second;
}

}  // namespace piggyweb::server

#include "server/origin.h"

#include <algorithm>

#include "http/date.h"
#include "http/piggy_headers.h"
#include "util/strings.h"

namespace piggyweb::server {
namespace {

// Synthesize a deterministic body of the right length (the simulator does
// not store real content).
std::string body_of(std::uint64_t size) {
  static constexpr std::string_view kPattern =
      "piggyweb synthetic resource body. ";
  std::string body;
  body.reserve(size);
  while (body.size() < size) {
    body.append(kPattern.substr(
        0, std::min<std::size_t>(kPattern.size(), size - body.size())));
  }
  return body;
}

}  // namespace

OriginServer::OriginServer(const trace::SiteModel& site,
                           core::VolumeProvider& volumes,
                           util::InternTable& paths)
    : site_(site),
      volumes_(volumes),
      paths_(paths),
      server_id_(paths.intern(site.host())),
      meta_(site, paths) {}

http::Response OriginServer::handle(const http::Request& request,
                                    util::TimePoint now,
                                    util::InternId source) {
  ++stats_.requests;
  meta_.set_now(now);

  http::Response response;
  const auto path = util::normalize_path(request.target);
  const auto idx = site_.index_of(path);
  if (idx >= site_.size()) {
    ++stats_.not_found;
    response.status = 404;
    response.reason = std::string(http::reason_for_status(404));
    response.headers.set("Content-Length", "0");
    return response;
  }

  const auto& resource = site_.resource(idx);
  const auto last_modified = site_.last_modified(idx, now);

  // If-Modified-Since: validate rather than re-send when the proxy's copy
  // is current ("if the proxy-specified Last-Modified time is greater or
  // equal to the Last-Modified time at the server", §2.1).
  bool validated = false;
  if (const auto ims = request.headers.get("If-Modified-Since")) {
    std::int64_t since = 0;
    if (http::parse_http_date(*ims, since) &&
        since - kWireEpoch >= last_modified.value) {
      validated = true;
    }
  }

  if (validated) {
    ++stats_.not_modified;
    response.status = 304;
    response.reason = std::string(http::reason_for_status(304));
  } else {
    ++stats_.ok_responses;
    response.status = 200;
    response.reason = std::string(http::reason_for_status(200));
    response.body = body_of(resource.size);
    response.headers.set("Content-Length",
                         std::to_string(response.body.size()));
  }
  response.headers.set(
      "Last-Modified",
      http::format_http_date(last_modified.value + kWireEpoch));

  // §5 feedback: proxies report cache hits attributable to piggybacked
  // volumes; aggregate them (still no per-proxy state).
  if (const auto hits = http::extract_hits(request)) {
    feedback_.ingest(*hits);
  }

  // PCV: validate the proxy's batched cache entries in this same
  // response ([10]); verdicts ride a plain header on 200 and 304 alike.
  if (const auto items = http::extract_validate(request, paths_)) {
    core::ValidationReply reply;
    for (const auto& item : items.value()) {
      const auto item_idx = site_.index_of(paths_.str(item.resource));
      if (item_idx >= site_.size()) continue;  // unknown: no verdict
      const auto current =
          site_.last_modified(item_idx, now).value + kWireEpoch;
      if (item.last_modified >= current) {
        reply.fresh.push_back(item.resource);
      } else {
        reply.stale.push_back({item.resource, current});
      }
    }
    http::attach_validate_reply(response, reply, paths_);
    stats_.validations_piggybacked += items->size();
  }

  // Piggyback construction: only for proxies that sent a filter, and only
  // when the filter leaves something to say.
  const auto path_id = paths_.intern(path);
  meta_.note_access(path_id);
  const auto filter = http::extract_filter(request);
  if (filter && filter->enabled) {
    core::VolumeRequest vr;
    vr.server = server_id_;
    vr.source = source;
    vr.path = path_id;
    vr.time = now;
    vr.size = resource.size;
    vr.type = resource.type;
    auto prediction = volumes_.on_request(vr);
    prediction.volume = prediction.volume == core::kNoVolume
                            ? core::kNoVolume
                            : wire_volume_id(prediction.volume);
    auto message = core::apply_filter(prediction, vr, *filter, meta_);
    for (auto& element : message.elements) {
      element.last_modified += kWireEpoch;
    }
    if (!message.empty()) {
      if (response.status == 304) {
        // A 304 has no body to chunk; the piggyback rides as a plain
        // response header instead of a trailer.
        response.headers.set(http::kPVolumeHeader,
                             http::serialize_pvolume(message, paths_));
      } else {
        http::attach_pvolume(response, message, paths_);
      }
      ++stats_.piggybacks_sent;
      stats_.piggyback_elements += message.elements.size();
    }
  }
  return response;
}

}  // namespace piggyweb::server

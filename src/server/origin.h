// Simulated origin server speaking the piggybacking protocol (§2.1).
//
// Handles GET / If-Modified-Since exactly as the paper's exchange
// prescribes, keeps no per-proxy state whatsoever, and — when the request
// carries a Piggy-filter — consults its volume provider, applies the
// filter, and appends the P-volume trailer to a chunked response.
#pragma once

#include <cstdint>

#include "core/feedback.h"
#include "core/filter.h"
#include "core/piggyback.h"
#include "http/message.h"
#include "server/meta.h"
#include "trace/synthetic.h"
#include "util/intern.h"

namespace piggyweb::server {

struct OriginStats {
  std::uint64_t requests = 0;
  std::uint64_t ok_responses = 0;
  std::uint64_t not_modified = 0;
  std::uint64_t not_found = 0;
  std::uint64_t piggybacks_sent = 0;
  std::uint64_t piggyback_elements = 0;
  std::uint64_t validations_piggybacked = 0;  // PCV items answered
};

class OriginServer {
 public:
  // The path table is shared with the volume provider and proxies so
  // resource ids agree across the whole simulation. `source_of` names the
  // peer for volume-state purposes (a real server would use the client IP).
  OriginServer(const trace::SiteModel& site, core::VolumeProvider& volumes,
               util::InternTable& paths);

  // Serve one request arriving at simulated time `now` from `source`.
  http::Response handle(const http::Request& request, util::TimePoint now,
                        util::InternId source);

  const OriginStats& stats() const { return stats_; }
  SiteMetaOracle& meta() { return meta_; }

  // Aggregated §5 proxy feedback (`Piggy-hits` headers): how many cache
  // hits each volume's piggybacks produced, across all proxies.
  const core::FeedbackCollector& feedback() const { return feedback_; }

  // Map an internal volume id onto the 2-byte wire space. Ids beyond the
  // wire bound wrap; a wire-id collision only risks an over-eager RPV
  // suppression, never incorrect data.
  static core::VolumeId wire_volume_id(core::VolumeId internal) {
    return internal % (core::kMaxWireVolumeId + 1);
  }

  // Simulation time 0 maps to this Unix time on the wire (Sun, 01 Feb
  // 1998 00:00:00 GMT — the paper's era), applied consistently to
  // Last-Modified headers, If-Modified-Since parsing, and piggyback
  // element timestamps.
  static constexpr std::int64_t kWireEpoch = 886'291'200;

 private:
  const trace::SiteModel& site_;
  core::VolumeProvider& volumes_;
  util::InternTable& paths_;
  util::InternId server_id_;
  SiteMetaOracle meta_;
  core::FeedbackCollector feedback_;
  OriginStats stats_;
};

}  // namespace piggyweb::server

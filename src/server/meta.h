// MetaOracle implementations — where piggyback-element metadata (size,
// Last-Modified, content type, access count) comes from.
//
//   * SiteMetaOracle: backed by the synthetic SiteModel ground truth plus
//     online access counters — what a real origin server knows.
//   * TraceMetaOracle: learned from a full log in a post-processing pass —
//     how the paper's evaluation knows access counts ("a filter of 100
//     means resources accessed less than 100 times in the entire trace
//     are not piggybacked").
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>

#include "core/filter.h"
#include "trace/record.h"
#include "trace/synthetic.h"
#include "util/flat_map.h"

namespace piggyweb::server {

// Ground-truth oracle for one simulated site. Access counts accumulate as
// note_access() is called; Last-Modified is evaluated lazily at the time
// of the piggyback (set via set_now()).
class SiteMetaOracle final : public core::MetaOracle {
 public:
  SiteMetaOracle(const trace::SiteModel& site, const util::InternTable& paths)
      : site_(site), paths_(paths) {}

  void set_now(util::TimePoint now) { now_ = now; }
  void note_access(util::InternId resource) { ++access_counts_[resource]; }

  core::ResourceMeta lookup(util::InternId /*server*/,
                            util::InternId resource) const override;

 private:
  const trace::SiteModel& site_;
  const util::InternTable& paths_;
  util::TimePoint now_{};
  std::unordered_map<util::InternId, std::uint64_t> access_counts_;
};

// Whole-trace oracle used by the evaluation benches: sizes are the largest
// observed 200-response body, access counts are totals over the trace,
// Last-Modified the last observed value. Works for multi-server traces
// (keys combine server and resource ids). Backed by a flat table — the
// filter performs up to max_elements lookups per request, so this is on
// the replay hot path.
//
// Streaming construction: default-construct, then feed the whole trace
// through observe_window() one batch at a time (any batch partition gives
// the same table — every field is an order-independent fold). The Trace
// constructor is the one-shot form of the same pass.
class TraceMetaOracle final : public core::MetaOracle {
 public:
  TraceMetaOracle() = default;
  explicit TraceMetaOracle(const trace::Trace& trace);

  // Folds one span of requests into the table. `paths` must be the id ->
  // string table the requests' path ids resolve against.
  void observe_window(std::span<const trace::Request> window,
                      util::StringTableView paths);

  core::ResourceMeta lookup(util::InternId server,
                            util::InternId resource) const override;

 private:
  static std::uint64_t key(util::InternId server, util::InternId resource) {
    return (static_cast<std::uint64_t>(server) << 32) | resource;
  }
  util::FlatMap<std::uint64_t, core::ResourceMeta> meta_;
};

}  // namespace piggyweb::server

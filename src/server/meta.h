// MetaOracle implementations — where piggyback-element metadata (size,
// Last-Modified, content type, access count) comes from.
//
//   * SiteMetaOracle: backed by the synthetic SiteModel ground truth plus
//     online access counters — what a real origin server knows.
//   * TraceMetaOracle: learned from a full log in a post-processing pass —
//     how the paper's evaluation knows access counts ("a filter of 100
//     means resources accessed less than 100 times in the entire trace
//     are not piggybacked").
#pragma once

#include <cstdint>
#include <unordered_map>

#include "core/filter.h"
#include "trace/record.h"
#include "trace/synthetic.h"

namespace piggyweb::server {

// Ground-truth oracle for one simulated site. Access counts accumulate as
// note_access() is called; Last-Modified is evaluated lazily at the time
// of the piggyback (set via set_now()).
class SiteMetaOracle final : public core::MetaOracle {
 public:
  SiteMetaOracle(const trace::SiteModel& site, const util::InternTable& paths)
      : site_(site), paths_(paths) {}

  void set_now(util::TimePoint now) { now_ = now; }
  void note_access(util::InternId resource) { ++access_counts_[resource]; }

  core::ResourceMeta lookup(util::InternId /*server*/,
                            util::InternId resource) const override;

 private:
  const trace::SiteModel& site_;
  const util::InternTable& paths_;
  util::TimePoint now_{};
  std::unordered_map<util::InternId, std::uint64_t> access_counts_;
};

// Whole-trace oracle used by the evaluation benches: sizes are the largest
// observed 200-response body, access counts are totals over the trace,
// Last-Modified the last observed value. Works for multi-server traces
// (keys combine server and resource ids).
class TraceMetaOracle final : public core::MetaOracle {
 public:
  explicit TraceMetaOracle(const trace::Trace& trace);

  core::ResourceMeta lookup(util::InternId server,
                            util::InternId resource) const override;

 private:
  static std::uint64_t key(util::InternId server, util::InternId resource) {
    return (static_cast<std::uint64_t>(server) << 32) | resource;
  }
  std::unordered_map<std::uint64_t, core::ResourceMeta> meta_;
};

}  // namespace piggyweb::server

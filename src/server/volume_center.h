// Transparent volume center (§1, §5): volume maintenance and piggyback
// generation performed at a router/gateway on the proxy-server path, on
// behalf of servers that were never modified. The center watches
// request/response exchanges stream past, maintains per-server volumes and
// learned resource metadata, and decides what piggyback to inject into
// each response. Because it sits on the path for several servers at once,
// one center can serve piggybacks for many sites.
#pragma once

#include <memory>
#include <unordered_map>

#include "core/filter.h"
#include "core/piggyback.h"
#include "volume/directory.h"

namespace piggyweb::server {

// Metadata learned purely from observed traffic (a router cannot stat the
// server's file system).
class LearnedMetaOracle final : public core::MetaOracle {
 public:
  explicit LearnedMetaOracle(const util::InternTable& paths)
      : paths_(&paths) {}

  void observe(util::InternId server, util::InternId resource,
               std::uint64_t size, std::int64_t last_modified);

  core::ResourceMeta lookup(util::InternId server,
                            util::InternId resource) const override;

 private:
  static std::uint64_t key(util::InternId server, util::InternId resource) {
    return (static_cast<std::uint64_t>(server) << 32) | resource;
  }
  const util::InternTable* paths_;
  std::unordered_map<std::uint64_t, core::ResourceMeta> meta_;
};

struct VolumeCenterStats {
  std::uint64_t exchanges_observed = 0;
  std::uint64_t piggybacks_injected = 0;
  std::uint64_t elements_injected = 0;
  std::size_t servers_tracked = 0;
};

class VolumeCenter {
 public:
  VolumeCenter(const volume::DirectoryVolumeConfig& config,
               const util::InternTable& paths)
      : config_(config), paths_(&paths), meta_(paths) {}

  // One observed exchange: proxy `source` fetched `path` from `server` at
  // `time`; the response had `size` body bytes and `last_modified`. The
  // proxy's filter rode on the request. Returns the piggyback the center
  // injects into the response (possibly empty).
  core::PiggybackMessage observe(util::InternId server,
                                 util::InternId source,
                                 util::InternId path, util::TimePoint time,
                                 std::uint64_t size,
                                 std::int64_t last_modified,
                                 const core::ProxyFilter& filter);

  VolumeCenterStats stats() const;
  const LearnedMetaOracle& meta() const { return meta_; }

  // By default the center fills piggyback elements from traffic-learned
  // metadata — all a router can see, which means Last-Modified values for
  // resources that changed since their last observed fetch are stale. A
  // deployment co-located with the origin (or fed by it) can supply an
  // authoritative oracle instead; the learned table keeps being maintained
  // either way.
  void set_meta_override(const core::MetaOracle* meta) {
    meta_override_ = meta;
  }

  // Replace the center's per-server directory volumes with an externally
  // built provider (e.g. offline-trained probability volumes) applied to
  // every server. The provider must outlive the center.
  void set_provider_override(core::VolumeProvider* provider) {
    provider_override_ = provider;
  }

 private:
  volume::DirectoryVolumes& provider_for(util::InternId server);

  volume::DirectoryVolumeConfig config_;
  const util::InternTable* paths_;
  LearnedMetaOracle meta_;
  const core::MetaOracle* meta_override_ = nullptr;
  core::VolumeProvider* provider_override_ = nullptr;
  std::unordered_map<util::InternId, std::unique_ptr<volume::DirectoryVolumes>>
      providers_;
  VolumeCenterStats stats_;
};

}  // namespace piggyweb::server

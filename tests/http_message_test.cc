#include "http/message.h"

#include <gtest/gtest.h>

namespace piggyweb::http {
namespace {

TEST(RequestSerialize, PaperExample) {
  // The §2.3 example request.
  Request request;
  request.method = trace::Method::kGet;
  request.target = "/mafia.html";
  request.headers.add("host", "sig.com");
  request.headers.add("TE", "chunked");
  request.headers.add("Piggy-filter", "maxpiggy=10; rpv=\"3,4\"");
  EXPECT_EQ(request.serialize(),
            "GET /mafia.html HTTP/1.1\r\n"
            "host: sig.com\r\n"
            "TE: chunked\r\n"
            "Piggy-filter: maxpiggy=10; rpv=\"3,4\"\r\n"
            "\r\n");
}

TEST(RequestParse, RoundTrip) {
  Request request;
  request.method = trace::Method::kHead;
  request.target = "/a/b.html";
  request.headers.add("Host", "x.com");
  ParseError error;
  const auto parsed = parse_request(request.serialize(), error);
  ASSERT_TRUE(parsed.has_value()) << error.message;
  EXPECT_EQ(parsed->request.method, trace::Method::kHead);
  EXPECT_EQ(parsed->request.target, "/a/b.html");
  EXPECT_EQ(*parsed->request.headers.get("Host"), "x.com");
  EXPECT_EQ(parsed->consumed, request.serialize().size());
}

TEST(RequestParse, WithContentLengthBody) {
  ParseError error;
  const auto parsed = parse_request(
      "POST /submit HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello", error);
  ASSERT_TRUE(parsed.has_value()) << error.message;
  EXPECT_EQ(parsed->request.body, "hello");
}

TEST(RequestParse, RejectsMalformed) {
  ParseError error;
  EXPECT_FALSE(parse_request("", error).has_value());
  EXPECT_FALSE(parse_request("GET\r\n\r\n", error).has_value());
  EXPECT_FALSE(parse_request("PUT /x HTTP/1.1\r\n\r\n", error).has_value());
  EXPECT_FALSE(
      parse_request("GET /x HTTP/1.1\r\nBadHeader\r\n\r\n", error)
          .has_value());
  EXPECT_FALSE(parse_request("GET /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nhi",
                             error)
                   .has_value());
}

TEST(ResponseSerialize, PlainBody) {
  Response response;
  response.status = 200;
  response.reason = "OK";
  response.headers.add("Content-Length", "2");
  response.body = "hi";
  EXPECT_EQ(response.serialize(),
            "HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nhi");
}

TEST(ResponseSerialize, ChunkedWithTrailer) {
  Response response;
  response.status = 200;
  response.reason = "OK";
  response.headers.add("Transfer-Encoding", "chunked");
  response.headers.add("Trailer", "P-volume");
  response.chunked = true;
  response.body = "data";
  response.trailers.add("P-volume", "vid=1");
  const auto wire = response.serialize();
  EXPECT_NE(wire.find("4\r\ndata\r\n0\r\n"), std::string::npos);
  EXPECT_NE(wire.find("P-volume: vid=1\r\n"), std::string::npos);
}

TEST(ResponseParse, PlainRoundTrip) {
  Response response;
  response.status = 404;
  response.reason = "Not Found";
  response.headers.add("Content-Length", "0");
  ParseError error;
  const auto parsed = parse_response(response.serialize(), error);
  ASSERT_TRUE(parsed.has_value()) << error.message;
  EXPECT_EQ(parsed->response.status, 404);
  EXPECT_EQ(parsed->response.reason, "Not Found");
  EXPECT_TRUE(parsed->response.body.empty());
}

TEST(ResponseParse, ChunkedRoundTrip) {
  Response response;
  response.headers.add("Transfer-Encoding", "chunked");
  response.chunked = true;
  response.body = "chunked body content";
  response.trailers.add("P-volume", "vid=9; e=\"/x 1 2\"");
  ParseError error;
  const auto parsed = parse_response(response.serialize(), error);
  ASSERT_TRUE(parsed.has_value()) << error.message;
  EXPECT_TRUE(parsed->response.chunked);
  EXPECT_EQ(parsed->response.body, "chunked body content");
  ASSERT_TRUE(parsed->response.trailers.get("P-volume").has_value());
  EXPECT_EQ(*parsed->response.trailers.get("P-volume"),
            "vid=9; e=\"/x 1 2\"");
}

TEST(ResponseParse, NoContentLengthMeansEmptyBody) {
  ParseError error;
  const auto parsed =
      parse_response("HTTP/1.1 304 Not Modified\r\n\r\n", error);
  ASSERT_TRUE(parsed.has_value()) << error.message;
  EXPECT_EQ(parsed->response.status, 304);
  EXPECT_TRUE(parsed->response.body.empty());
}

TEST(ResponseParse, RejectsMalformed) {
  ParseError error;
  EXPECT_FALSE(parse_response("", error).has_value());
  EXPECT_FALSE(parse_response("HTTP/1.1\r\n\r\n", error).has_value());
  EXPECT_FALSE(parse_response("HTTP/1.1 abc OK\r\n\r\n", error).has_value());
  EXPECT_FALSE(parse_response("HTTP/1.1 99 ?\r\n\r\n", error).has_value());
  EXPECT_FALSE(
      parse_response("HTTP/1.1 200 OK\r\nContent-Length: x\r\n\r\n", error)
          .has_value());
}

TEST(ResponseParse, PipelinedConsumed) {
  Response first;
  first.headers.add("Content-Length", "3");
  first.body = "abc";
  const auto wire = first.serialize() + "HTTP/1.1 304 Not Modified\r\n\r\n";
  ParseError error;
  const auto parsed = parse_response(wire, error);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->response.body, "abc");
  const auto second =
      parse_response(std::string_view(wire).substr(parsed->consumed), error);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->response.status, 304);
}

TEST(ReasonForStatus, KnownCodes) {
  EXPECT_EQ(reason_for_status(200), "OK");
  EXPECT_EQ(reason_for_status(304), "Not Modified");
  EXPECT_EQ(reason_for_status(404), "Not Found");
  EXPECT_EQ(reason_for_status(123), "Unknown");
}

}  // namespace
}  // namespace piggyweb::http

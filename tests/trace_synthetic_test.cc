#include "trace/synthetic.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "trace/profiles.h"
#include "util/strings.h"

namespace piggyweb::trace {
namespace {

SiteShape small_site() {
  SiteShape shape;
  shape.pages = 50;
  shape.top_dirs = 4;
  return shape;
}

BrowseShape small_browse() {
  BrowseShape browse;
  browse.target_requests = 3000;
  browse.client_pool = 40;
  browse.duration = 2 * util::kDay;
  return browse;
}

TEST(SiteModel, ResourceCountCoversPagesImagesOthers) {
  util::Rng rng(1);
  SiteModel site(small_site(), 2 * util::kDay, rng);
  EXPECT_GE(site.size(), 50u);  // at least the pages
  std::size_t html = 0, image = 0, other = 0;
  for (const auto& r : site.resources()) {
    switch (r.type) {
      case ContentType::kHtml:
        ++html;
        break;
      case ContentType::kImage:
        ++image;
        break;
      case ContentType::kOther:
        ++other;
        break;
    }
  }
  EXPECT_EQ(html, 50u);
  EXPECT_GT(image, 0u);
  EXPECT_GT(other, 0u);
}

TEST(SiteModel, PathsAreUniqueAndNormalized) {
  util::Rng rng(2);
  SiteModel site(small_site(), util::kDay, rng);
  std::set<std::string> paths;
  for (const auto& r : site.resources()) {
    EXPECT_TRUE(paths.insert(r.path).second) << "duplicate " << r.path;
    EXPECT_EQ(r.path.front(), '/');
    EXPECT_EQ(r.path, util::normalize_path(r.path));
  }
}

TEST(SiteModel, IndexOfRoundTrips) {
  util::Rng rng(3);
  SiteModel site(small_site(), util::kDay, rng);
  for (std::uint32_t i = 0; i < site.size(); ++i) {
    EXPECT_EQ(site.index_of(site.resource(i).path), i);
  }
  EXPECT_EQ(site.index_of("/definitely/not/there.html"), site.size());
}

TEST(SiteModel, EmbeddedAndLinksReferenceValidResources) {
  util::Rng rng(4);
  SiteModel site(small_site(), util::kDay, rng);
  for (const auto& r : site.resources()) {
    for (const auto e : r.embedded) {
      ASSERT_LT(e, site.size());
      EXPECT_EQ(site.resource(e).type, ContentType::kImage);
    }
    for (const auto l : r.links) {
      ASSERT_LT(l, site.size());
      EXPECT_EQ(site.resource(l).type, ContentType::kHtml);
    }
  }
}

TEST(SiteModel, ChangesAreSortedWithinDuration) {
  util::Rng rng(5);
  const auto duration = 10 * util::kDay;
  SiteShape shape = small_site();
  shape.hot_change_frac = 0.5;
  shape.hot_change_interval = 6 * util::kHour;
  SiteModel site(shape, duration, rng);
  bool any_changes = false;
  for (const auto& r : site.resources()) {
    EXPECT_TRUE(std::is_sorted(r.changes.begin(), r.changes.end()));
    for (const auto c : r.changes) {
      EXPECT_GE(c.value, 0);
      EXPECT_LT(c.value, duration);
    }
    any_changes |= !r.changes.empty();
    EXPECT_LE(r.created.value, 0);
  }
  EXPECT_TRUE(any_changes);
}

TEST(SiteModel, LastModifiedSteps) {
  util::Rng rng(6);
  SiteShape shape = small_site();
  shape.hot_change_frac = 1.0;
  shape.hot_change_interval = util::kHour;
  SiteModel site(shape, 5 * util::kDay, rng);
  // Find a resource with at least one change.
  const SyntheticResource* res = nullptr;
  std::uint32_t idx = 0;
  for (std::uint32_t i = 0; i < site.size(); ++i) {
    if (!site.resource(i).changes.empty()) {
      res = &site.resource(i);
      idx = i;
      break;
    }
  }
  ASSERT_NE(res, nullptr);
  const auto first_change = res->changes.front();
  EXPECT_EQ(site.last_modified(idx, {first_change.value - 1}).value,
            res->created.value);
  EXPECT_EQ(site.last_modified(idx, first_change).value, first_change.value);
  EXPECT_TRUE(site.modified_between(idx, res->created, first_change));
  EXPECT_FALSE(
      site.modified_between(idx, first_change, first_change));
}

TEST(GenerateServerLog, HitsTargetAndIsSorted) {
  const auto workload =
      generate_server_log(small_site(), small_browse(), 42);
  EXPECT_GE(workload.trace.size(), 3000u);
  const auto& reqs = workload.trace.requests();
  EXPECT_TRUE(std::is_sorted(reqs.begin(), reqs.end(),
                             [](const Request& a, const Request& b) {
                               return a.time < b.time;
                             }));
  EXPECT_EQ(workload.sites.size(), 1u);
  EXPECT_EQ(workload.trace.servers().size(), 1u);
}

TEST(GenerateServerLog, Deterministic) {
  const auto a = generate_server_log(small_site(), small_browse(), 7);
  const auto b = generate_server_log(small_site(), small_browse(), 7);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace.requests()[i].time.value,
              b.trace.requests()[i].time.value);
    EXPECT_EQ(a.trace.requests()[i].path, b.trace.requests()[i].path);
  }
}

TEST(GenerateServerLog, SeedChangesTrace) {
  const auto a = generate_server_log(small_site(), small_browse(), 7);
  const auto b = generate_server_log(small_site(), small_browse(), 8);
  bool differs = a.trace.size() != b.trace.size();
  for (std::size_t i = 0; !differs && i < a.trace.size(); ++i) {
    differs = a.trace.requests()[i].path != b.trace.requests()[i].path ||
              a.trace.requests()[i].time.value !=
                  b.trace.requests()[i].time.value;
  }
  EXPECT_TRUE(differs);
}

TEST(GenerateServerLog, AllPathsBelongToSite) {
  const auto workload =
      generate_server_log(small_site(), small_browse(), 11);
  const auto& site = workload.sites[0];
  for (const auto& r : workload.trace.requests()) {
    const auto path = workload.trace.paths().str(r.path);
    EXPECT_LT(site.index_of(path), site.size()) << path;
  }
}

TEST(GenerateServerLog, ProducesNotModifiedResponses) {
  auto browse = small_browse();
  browse.target_requests = 8000;
  const auto workload = generate_server_log(small_site(), browse, 13);
  std::size_t count304 = 0;
  for (const auto& r : workload.trace.requests()) {
    if (r.status == 304) {
      ++count304;
      EXPECT_EQ(r.size, 0u);
    } else {
      EXPECT_EQ(r.status, 200);
    }
  }
  // The paper reports 15-25% Not Modified; synthetic should land in a
  // loose band around that.
  const auto frac = static_cast<double>(count304) /
                    static_cast<double>(workload.trace.size());
  EXPECT_GT(frac, 0.03);
  EXPECT_LT(frac, 0.6);
}

TEST(GenerateServerLog, PostFractionHonored) {
  auto browse = small_browse();
  browse.post_fraction = 0.95;
  const auto workload = generate_server_log(small_site(), browse, 17);
  std::size_t posts = 0;
  for (const auto& r : workload.trace.requests()) {
    posts += r.method == Method::kPost;
  }
  const auto frac = static_cast<double>(posts) /
                    static_cast<double>(workload.trace.size());
  EXPECT_GT(frac, 0.7);
}

TEST(GenerateServerLog, TemporalLocalityFromSessions) {
  const auto workload =
      generate_server_log(small_site(), small_browse(), 19);
  // Count requests arriving within 5s of the same source's previous
  // request — embedded images should make this common.
  std::unordered_map<std::uint32_t, std::int64_t> last;
  std::size_t close = 0;
  for (const auto& r : workload.trace.requests()) {
    const auto it = last.find(r.source);
    if (it != last.end() && r.time.value - it->second <= 5) ++close;
    last[r.source] = r.time.value;
  }
  EXPECT_GT(static_cast<double>(close) /
                static_cast<double>(workload.trace.size()),
            0.15);
}

TEST(GenerateClientTrace, MultiServer) {
  MultiSiteShape multi;
  multi.sites = 20;
  multi.base_site.pages = 30;
  auto browse = small_browse();
  browse.target_requests = 5000;
  const auto workload = generate_client_trace(multi, browse, 23);
  EXPECT_GE(workload.trace.size(), 5000u);
  EXPECT_EQ(workload.sites.size(), 20u);
  EXPECT_GT(workload.trace.servers().size(), 5u);
}

TEST(GenerateClientTrace, SiteForResolvesHosts) {
  MultiSiteShape multi;
  multi.sites = 5;
  multi.base_site.pages = 20;
  auto browse = small_browse();
  browse.target_requests = 1000;
  const auto workload = generate_client_trace(multi, browse, 29);
  for (const auto& site : workload.sites) {
    EXPECT_EQ(workload.site_for(site.host()), &site);
  }
  EXPECT_EQ(workload.site_for("unknown.example.net"), nullptr);
}

TEST(Profiles, ServerProfilesGenerateAtTinyScale) {
  for (auto profile : {aiusa_profile(0.02), marimba_profile(0.02),
                       apache_profile(0.002), sun_profile(0.0008)}) {
    const auto workload = generate(profile);
    EXPECT_GT(workload.trace.size(), 1000u) << profile.name;
    EXPECT_EQ(workload.sites.size(), 1u) << profile.name;
  }
}

TEST(Profiles, MarimbaIsPostDominated) {
  const auto workload = generate(marimba_profile(0.02));
  std::size_t posts = 0;
  for (const auto& r : workload.trace.requests()) {
    posts += r.method == Method::kPost;
  }
  EXPECT_GT(static_cast<double>(posts) /
                static_cast<double>(workload.trace.size()),
            0.8);
}

TEST(Profiles, SunIsLargest) {
  // At very small scales both sites sit on the minimum-size floor, so
  // compare at a scale where proportional site scaling is active.
  const auto sun = generate(sun_profile(0.01));
  const auto aiusa = generate(aiusa_profile(0.01));
  EXPECT_GT(sun.sites[0].size(), aiusa.sites[0].size());
  EXPECT_GT(sun.trace.size(), aiusa.trace.size());
}

TEST(Profiles, ClientProfileIsMultiSite) {
  auto profile = att_client_profile(0.004);
  const auto workload = generate(profile);
  EXPECT_GT(workload.sites.size(), 10u);
  EXPECT_GT(workload.trace.size(), 3000u);
}

}  // namespace
}  // namespace piggyweb::trace

#include "volume/probability.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "volume/pair_counter.h"

namespace piggyweb::volume {
namespace {

// A trace where /page is reliably followed by /img (p = 1.0) and
// sometimes by /weak (p = 0.25).
trace::Trace page_trace() {
  trace::Trace t;
  for (int i = 0; i < 8; ++i) {
    const auto base = static_cast<util::Seconds>(i * 10000);
    const auto client = "c" + std::to_string(i % 3);
    t.add({base}, client, "server", "/page.html");
    t.add({base + 5}, client, "server", "/img.gif");
    if (i % 4 == 0) t.add({base + 8}, client, "server", "/weak.html");
  }
  t.sort_by_time();
  return t;
}

PairCounts counts_for(const trace::Trace& t) {
  PairCounterConfig config;
  config.window = 300;
  return PairCounterBuilder(config).build(t);
}

TEST(ProbabilityVolumes, ThresholdSelectsMembers) {
  const auto t = page_trace();
  const auto counts = counts_for(t);
  ProbabilityVolumeConfig config;
  config.probability_threshold = 0.5;
  const auto set = build_probability_volumes(t, counts, config);

  const auto page = *t.paths().find("/page.html");
  const auto img = *t.paths().find("/img.gif");
  const auto weak = *t.paths().find("/weak.html");
  const auto* vol = set.volume_of(page);
  ASSERT_NE(vol, nullptr);
  bool has_img = false, has_weak = false;
  for (const auto& e : *vol) {
    has_img |= e.resource == img;
    has_weak |= e.resource == weak;
  }
  EXPECT_TRUE(has_img);
  EXPECT_FALSE(has_weak);  // p = 0.25 < 0.5
}

TEST(ProbabilityVolumes, LowerThresholdAdmitsMore) {
  const auto t = page_trace();
  const auto counts = counts_for(t);
  ProbabilityVolumeConfig low, high;
  low.probability_threshold = 0.2;
  high.probability_threshold = 0.9;
  const auto low_set = build_probability_volumes(t, counts, low);
  const auto high_set = build_probability_volumes(t, counts, high);
  EXPECT_GE(low_set.stats().total_entries, high_set.stats().total_entries);
}

TEST(ProbabilityVolumes, EntriesSortedByDescendingProbability) {
  const auto t = page_trace();
  const auto counts = counts_for(t);
  ProbabilityVolumeConfig config;
  config.probability_threshold = 0.1;
  const auto set = build_probability_volumes(t, counts, config);
  for (const auto& [r, entries] : set.volumes()) {
    for (std::size_t i = 1; i < entries.size(); ++i) {
      EXPECT_GE(entries[i - 1].probability, entries[i].probability);
    }
  }
}

TEST(ProbabilityVolumes, VolumeIdsDenseAndStable) {
  const auto t = page_trace();
  const auto counts = counts_for(t);
  ProbabilityVolumeConfig config;
  config.probability_threshold = 0.1;
  const auto set = build_probability_volumes(t, counts, config);
  const auto page = *t.paths().find("/page.html");
  const auto id = set.volume_id(page);
  EXPECT_NE(id, core::kNoVolume);
  EXPECT_LT(id, set.volume_count());
  EXPECT_EQ(set.volume_id(9999), core::kNoVolume);
}

TEST(ProbabilityVolumes, CombinedRestrictsToSharedPrefix) {
  trace::Trace t;
  for (int i = 0; i < 6; ++i) {
    const auto base = static_cast<util::Seconds>(i * 10000);
    t.add({base}, "c1", "server", "/a/page.html");
    t.add({base + 5}, "c1", "server", "/a/img.gif");
    t.add({base + 6}, "c1", "server", "/b/cross.html");
  }
  t.sort_by_time();
  const auto counts = counts_for(t);

  ProbabilityVolumeConfig plain;
  plain.probability_threshold = 0.5;
  const auto plain_set = build_probability_volumes(t, counts, plain);

  ProbabilityVolumeConfig combined = plain;
  combined.combine_prefix_level = 1;
  const auto combined_set = build_probability_volumes(t, counts, combined);

  const auto page = *t.paths().find("/a/page.html");
  const auto cross = *t.paths().find("/b/cross.html");
  const auto* plain_vol = plain_set.volume_of(page);
  ASSERT_NE(plain_vol, nullptr);
  const bool plain_has_cross =
      std::any_of(plain_vol->begin(), plain_vol->end(),
                  [cross](const VolumeEntry& e) {
                    return e.resource == cross;
                  });
  EXPECT_TRUE(plain_has_cross);

  const auto* combined_vol = combined_set.volume_of(page);
  ASSERT_NE(combined_vol, nullptr);
  for (const auto& e : *combined_vol) {
    EXPECT_NE(e.resource, cross);
  }
}

TEST(ProbabilityVolumes, EffectivenessThinningDropsRedundantImplications) {
  // /lead always precedes /page, and /page precedes /img; but /lead also
  // "predicts" /img — redundantly, because /page predicts it in the same
  // window. With effectiveness thinning, whichever implication fires
  // first (lead->img) keeps the credit and the later redundant one
  // (page->img) is dropped.
  trace::Trace t;
  for (int i = 0; i < 10; ++i) {
    const auto base = static_cast<util::Seconds>(i * 10000);
    t.add({base}, "c1", "server", "/lead.html");
    t.add({base + 5}, "c1", "server", "/page.html");
    t.add({base + 10}, "c1", "server", "/img.gif");
  }
  t.sort_by_time();
  const auto counts = counts_for(t);

  ProbabilityVolumeConfig config;
  config.probability_threshold = 0.5;
  config.effectiveness_threshold = 0.5;
  const auto set = build_probability_volumes(t, counts, config);

  const auto lead = *t.paths().find("/lead.html");
  const auto page = *t.paths().find("/page.html");
  const auto img = *t.paths().find("/img.gif");

  const auto* lead_vol = set.volume_of(lead);
  ASSERT_NE(lead_vol, nullptr);
  EXPECT_TRUE(std::any_of(lead_vol->begin(), lead_vol->end(),
                          [img](const VolumeEntry& e) {
                            return e.resource == img;
                          }));
  // page->img is redundant (img already predicted by lead moments
  // earlier), so thinning removes it.
  const auto* page_vol = set.volume_of(page);
  if (page_vol != nullptr) {
    EXPECT_FALSE(std::any_of(page_vol->begin(), page_vol->end(),
                             [img](const VolumeEntry& e) {
                               return e.resource == img;
                             }));
  }
}

TEST(ProbabilityVolumes, ThinningShrinksOrKeepsVolumes) {
  const auto t = page_trace();
  const auto counts = counts_for(t);
  ProbabilityVolumeConfig base;
  base.probability_threshold = 0.2;
  ProbabilityVolumeConfig thinned = base;
  thinned.effectiveness_threshold = 0.2;
  const auto base_set = build_probability_volumes(t, counts, base);
  const auto thin_set = build_probability_volumes(t, counts, thinned);
  EXPECT_LE(thin_set.stats().total_entries, base_set.stats().total_entries);
}

TEST(ProbabilityVolumes, StatsSymmetricAndSelf) {
  // a <-> b always co-occur both ways; c only follows a.
  trace::Trace t;
  for (int i = 0; i < 6; ++i) {
    const auto base = static_cast<util::Seconds>(i * 10000);
    t.add({base}, "c1", "server", "/a");
    t.add({base + 5}, "c1", "server", "/b");
    t.add({base + 8}, "c1", "server", "/a");
  }
  t.sort_by_time();
  const auto counts = counts_for(t);
  ProbabilityVolumeConfig config;
  config.probability_threshold = 0.4;
  const auto set = build_probability_volumes(t, counts, config);
  const auto stats = set.stats();
  EXPECT_GT(stats.volumes, 0u);
  EXPECT_GT(stats.symmetric_fraction, 0.0);  // a and b imply each other
  EXPECT_GT(stats.self_fraction, 0.0);       // a repeats within the window
}

TEST(ProbabilityVolumes, ProviderReturnsSortedCandidatesWithProbs) {
  const auto t = page_trace();
  const auto counts = counts_for(t);
  ProbabilityVolumeConfig config;
  config.probability_threshold = 0.1;
  const auto set = build_probability_volumes(t, counts, config);
  ProbabilityVolumes provider(&set, 10);

  core::VolumeRequest request;
  request.path = *t.paths().find("/page.html");
  request.time = {0};
  const auto prediction = provider.on_request(request);
  EXPECT_NE(prediction.volume, core::kNoVolume);
  ASSERT_FALSE(prediction.resources.empty());
  ASSERT_EQ(prediction.resources.size(), prediction.probs.size());
  for (std::size_t i = 1; i < prediction.probs.size(); ++i) {
    EXPECT_GE(prediction.probs[i - 1], prediction.probs[i]);
  }
  EXPECT_STREQ(provider.scheme_name(), "probability");
}

TEST(ProbabilityVolumes, ProviderUnknownResourceEmpty) {
  const auto t = page_trace();
  const auto counts = counts_for(t);
  ProbabilityVolumeConfig config;
  const auto set = build_probability_volumes(t, counts, config);
  ProbabilityVolumes provider(&set, 10);
  core::VolumeRequest request;
  request.path = 424242;
  const auto prediction = provider.on_request(request);
  EXPECT_TRUE(prediction.empty());
  EXPECT_EQ(prediction.volume, core::kNoVolume);
}

TEST(ProbabilityVolumes, PerVolumeEntryCap) {
  trace::Trace t;
  for (int rep = 0; rep < 3; ++rep) {
    const auto base = static_cast<util::Seconds>(rep * 10000);
    t.add({base}, "c1", "server", "/hub");
    for (int i = 0; i < 10; ++i) {
      t.add({base + 1 + i}, "c1", "server", "/r" + std::to_string(i));
    }
  }
  t.sort_by_time();
  const auto counts = counts_for(t);
  ProbabilityVolumeConfig config;
  config.probability_threshold = 0.5;
  config.max_entries_per_volume = 4;
  const auto set = build_probability_volumes(t, counts, config);
  for (const auto& [r, entries] : set.volumes()) {
    EXPECT_LE(entries.size(), 4u);
  }
  const auto* hub = set.volume_of(*t.paths().find("/hub"));
  ASSERT_NE(hub, nullptr);
  EXPECT_EQ(hub->size(), 4u);
}

TEST(ProbabilityVolumes, MaxCandidatesCaps) {
  trace::Trace t;
  // /hub is followed by 20 distinct resources, all with p = 1.
  for (int rep = 0; rep < 3; ++rep) {
    const auto base = static_cast<util::Seconds>(rep * 10000);
    t.add({base}, "c1", "server", "/hub");
    for (int i = 0; i < 20; ++i) {
      t.add({base + 1 + i}, "c1", "server", "/r" + std::to_string(i));
    }
  }
  t.sort_by_time();
  const auto counts = counts_for(t);
  ProbabilityVolumeConfig config;
  config.probability_threshold = 0.5;
  const auto set = build_probability_volumes(t, counts, config);
  ProbabilityVolumes provider(&set, /*max_candidates=*/5);
  core::VolumeRequest request;
  request.path = *t.paths().find("/hub");
  EXPECT_EQ(provider.on_request(request).resources.size(), 5u);
}

}  // namespace
}  // namespace piggyweb::volume

#include "cli_common.h"

#include <gtest/gtest.h>

namespace piggyweb::tools {
namespace {

// Build argv from a list of literals.
class Argv {
 public:
  explicit Argv(std::initializer_list<const char*> args) {
    storage_.emplace_back("test-program");
    for (const auto* arg : args) storage_.emplace_back(arg);
    for (auto& s : storage_) pointers_.push_back(s.data());
  }
  int argc() const { return static_cast<int>(pointers_.size()); }
  char** argv() { return pointers_.data(); }

 private:
  std::vector<std::string> storage_;
  std::vector<char*> pointers_;
};

FlagSet standard_flags() {
  FlagSet flags("test");
  flags.add_string("name", "default", "a string");
  flags.add_double("ratio", 0.5, "a double");
  flags.add_int("count", 7, "an int");
  flags.add_bool("verbose", false, "a bool");
  return flags;
}

TEST(FlagSet, DefaultsWhenUnset) {
  auto flags = standard_flags();
  Argv argv({});
  ASSERT_TRUE(flags.parse(argv.argc(), argv.argv()));
  EXPECT_EQ(flags.get_string("name"), "default");
  EXPECT_DOUBLE_EQ(flags.get_double("ratio"), 0.5);
  EXPECT_EQ(flags.get_int("count"), 7);
  EXPECT_FALSE(flags.get_bool("verbose"));
}

TEST(FlagSet, ParsesAllTypes) {
  auto flags = standard_flags();
  Argv argv({"--name=piggy", "--ratio=0.25", "--count=42", "--verbose=true"});
  ASSERT_TRUE(flags.parse(argv.argc(), argv.argv()));
  EXPECT_EQ(flags.get_string("name"), "piggy");
  EXPECT_DOUBLE_EQ(flags.get_double("ratio"), 0.25);
  EXPECT_EQ(flags.get_int("count"), 42);
  EXPECT_TRUE(flags.get_bool("verbose"));
}

TEST(FlagSet, BareBooleanFlag) {
  auto flags = standard_flags();
  Argv argv({"--verbose"});
  ASSERT_TRUE(flags.parse(argv.argc(), argv.argv()));
  EXPECT_TRUE(flags.get_bool("verbose"));
}

TEST(FlagSet, RejectsUnknownFlag) {
  auto flags = standard_flags();
  Argv argv({"--nope=1"});
  EXPECT_FALSE(flags.parse(argv.argc(), argv.argv()));
}

TEST(FlagSet, RejectsTypeMismatches) {
  {
    auto flags = standard_flags();
    Argv argv({"--count=abc"});
    EXPECT_FALSE(flags.parse(argv.argc(), argv.argv()));
  }
  {
    auto flags = standard_flags();
    Argv argv({"--ratio=xyz"});
    EXPECT_FALSE(flags.parse(argv.argc(), argv.argv()));
  }
  {
    auto flags = standard_flags();
    Argv argv({"--verbose=maybe"});
    EXPECT_FALSE(flags.parse(argv.argc(), argv.argv()));
  }
}

TEST(FlagSet, RejectsPositionalArguments) {
  auto flags = standard_flags();
  Argv argv({"stray"});
  EXPECT_FALSE(flags.parse(argv.argc(), argv.argv()));
}

TEST(FlagSet, HelpReturnsFalse) {
  auto flags = standard_flags();
  Argv argv({"--help"});
  EXPECT_FALSE(flags.parse(argv.argc(), argv.argv()));
}

TEST(FlagSet, NegativeNumbers) {
  auto flags = standard_flags();
  Argv argv({"--count=-3", "--ratio=-0.5"});
  ASSERT_TRUE(flags.parse(argv.argc(), argv.argv()));
  EXPECT_EQ(flags.get_int("count"), -3);
  EXPECT_DOUBLE_EQ(flags.get_double("ratio"), -0.5);
}

TEST(FlagSet, EmptyStringValue) {
  auto flags = standard_flags();
  Argv argv({"--name="});
  ASSERT_TRUE(flags.parse(argv.argc(), argv.argv()));
  EXPECT_EQ(flags.get_string("name"), "");
}

TEST(FlagSet, LastValueWins) {
  auto flags = standard_flags();
  Argv argv({"--count=1", "--count=2"});
  ASSERT_TRUE(flags.parse(argv.argc(), argv.argv()));
  EXPECT_EQ(flags.get_int("count"), 2);
}

}  // namespace
}  // namespace piggyweb::tools

#include "cli_common.h"

#include <string>

#include <gtest/gtest.h>

#include "bench_compare.h"
#include "obs/json.h"

namespace piggyweb::tools {
namespace {

// Build argv from a list of literals.
class Argv {
 public:
  explicit Argv(std::initializer_list<const char*> args) {
    storage_.emplace_back("test-program");
    for (const auto* arg : args) storage_.emplace_back(arg);
    for (auto& s : storage_) pointers_.push_back(s.data());
  }
  int argc() const { return static_cast<int>(pointers_.size()); }
  char** argv() { return pointers_.data(); }

 private:
  std::vector<std::string> storage_;
  std::vector<char*> pointers_;
};

FlagSet standard_flags() {
  FlagSet flags("test");
  flags.add_string("name", "default", "a string");
  flags.add_double("ratio", 0.5, "a double");
  flags.add_int("count", 7, "an int");
  flags.add_bool("verbose", false, "a bool");
  return flags;
}

TEST(FlagSet, DefaultsWhenUnset) {
  auto flags = standard_flags();
  Argv argv({});
  ASSERT_TRUE(flags.parse(argv.argc(), argv.argv()));
  EXPECT_EQ(flags.get_string("name"), "default");
  EXPECT_DOUBLE_EQ(flags.get_double("ratio"), 0.5);
  EXPECT_EQ(flags.get_int("count"), 7);
  EXPECT_FALSE(flags.get_bool("verbose"));
}

TEST(FlagSet, ParsesAllTypes) {
  auto flags = standard_flags();
  Argv argv({"--name=piggy", "--ratio=0.25", "--count=42", "--verbose=true"});
  ASSERT_TRUE(flags.parse(argv.argc(), argv.argv()));
  EXPECT_EQ(flags.get_string("name"), "piggy");
  EXPECT_DOUBLE_EQ(flags.get_double("ratio"), 0.25);
  EXPECT_EQ(flags.get_int("count"), 42);
  EXPECT_TRUE(flags.get_bool("verbose"));
}

TEST(FlagSet, BareBooleanFlag) {
  auto flags = standard_flags();
  Argv argv({"--verbose"});
  ASSERT_TRUE(flags.parse(argv.argc(), argv.argv()));
  EXPECT_TRUE(flags.get_bool("verbose"));
}

TEST(FlagSet, RejectsUnknownFlag) {
  auto flags = standard_flags();
  Argv argv({"--nope=1"});
  EXPECT_FALSE(flags.parse(argv.argc(), argv.argv()));
}

TEST(FlagSet, RejectsTypeMismatches) {
  {
    auto flags = standard_flags();
    Argv argv({"--count=abc"});
    EXPECT_FALSE(flags.parse(argv.argc(), argv.argv()));
  }
  {
    auto flags = standard_flags();
    Argv argv({"--ratio=xyz"});
    EXPECT_FALSE(flags.parse(argv.argc(), argv.argv()));
  }
  {
    auto flags = standard_flags();
    Argv argv({"--verbose=maybe"});
    EXPECT_FALSE(flags.parse(argv.argc(), argv.argv()));
  }
}

TEST(FlagSet, RejectsPositionalArguments) {
  auto flags = standard_flags();
  Argv argv({"stray"});
  EXPECT_FALSE(flags.parse(argv.argc(), argv.argv()));
}

TEST(FlagSet, HelpReturnsFalse) {
  auto flags = standard_flags();
  Argv argv({"--help"});
  EXPECT_FALSE(flags.parse(argv.argc(), argv.argv()));
}

TEST(FlagSet, NegativeNumbers) {
  auto flags = standard_flags();
  Argv argv({"--count=-3", "--ratio=-0.5"});
  ASSERT_TRUE(flags.parse(argv.argc(), argv.argv()));
  EXPECT_EQ(flags.get_int("count"), -3);
  EXPECT_DOUBLE_EQ(flags.get_double("ratio"), -0.5);
}

TEST(FlagSet, EmptyStringValue) {
  auto flags = standard_flags();
  Argv argv({"--name="});
  ASSERT_TRUE(flags.parse(argv.argc(), argv.argv()));
  EXPECT_EQ(flags.get_string("name"), "");
}

TEST(FlagSet, LastValueWins) {
  auto flags = standard_flags();
  Argv argv({"--count=1", "--count=2"});
  ASSERT_TRUE(flags.parse(argv.argc(), argv.argv()));
  EXPECT_EQ(flags.get_int("count"), 2);
}

obs::Json parse(const char* text) {
  std::string error;
  auto parsed = obs::parse_json(text, &error);
  EXPECT_TRUE(parsed.has_value()) << error;
  return parsed.has_value() ? *parsed : obs::Json::object();
}

TEST(BenchCompare, ClassifiesKeysByName) {
  EXPECT_EQ(classify_bench_key("flat_seconds", false),
            BenchKeyKind::kTiming);
  EXPECT_EQ(classify_bench_key("wall_seconds", false),
            BenchKeyKind::kTiming);
  EXPECT_EQ(classify_bench_key("requests_per_second", false),
            BenchKeyKind::kRate);
  EXPECT_EQ(classify_bench_key("speedup", false), BenchKeyKind::kRate);
  EXPECT_EQ(classify_bench_key("ops", false), BenchKeyKind::kWorkload);
  EXPECT_EQ(classify_bench_key("requests", false),
            BenchKeyKind::kWorkload);
  EXPECT_EQ(classify_bench_key("checksums_match", true),
            BenchKeyKind::kBoolean);
}

TEST(BenchCompare, IdenticalReportsHaveNoRegression) {
  const auto doc = parse(
      R"({"ops": 100, "flat_seconds": 0.5, "speedup": 1.4,
          "checksums_match": true})");
  const auto report = compare_bench_reports(doc, doc, {});
  EXPECT_FALSE(report.has_regression());
  EXPECT_GT(report.gated_comparisons(), 0u);
  EXPECT_TRUE(report.notes.empty());
}

TEST(BenchCompare, FlagsTimingBeyondThreshold) {
  const auto base = parse(R"({"eval_seconds": 1.0})");
  const auto slow = parse(R"({"eval_seconds": 1.2})");
  const auto fast = parse(R"({"eval_seconds": 0.8})");
  const auto close = parse(R"({"eval_seconds": 1.05})");
  BenchCompareOptions options;
  options.threshold = 0.10;
  EXPECT_TRUE(compare_bench_reports(base, slow, options).has_regression());
  EXPECT_FALSE(compare_bench_reports(base, fast, options).has_regression());
  EXPECT_FALSE(
      compare_bench_reports(base, close, options).has_regression());
  const auto improvement = compare_bench_reports(base, fast, options);
  ASSERT_EQ(improvement.deltas.size(), 1u);
  EXPECT_EQ(improvement.deltas[0].status,
            BenchDelta::Status::kImprovement);
}

TEST(BenchCompare, RatesGateInTheOppositeDirection) {
  const auto base = parse(R"({"speedup": 2.0})");
  const auto worse = parse(R"({"speedup": 1.5})");
  const auto better = parse(R"({"speedup": 2.5})");
  EXPECT_TRUE(compare_bench_reports(base, worse, {}).has_regression());
  EXPECT_FALSE(compare_bench_reports(base, better, {}).has_regression());
}

TEST(BenchCompare, SubMinimumTimingsAreNoiseNotSignal) {
  // 5x slower but both sides under the floor: quick-mode noise.
  const auto base = parse(R"({"tiny_seconds": 0.00002})");
  const auto cand = parse(R"({"tiny_seconds": 0.0001})");
  BenchCompareOptions options;
  options.min_seconds = 1e-3;
  const auto report = compare_bench_reports(base, cand, options);
  EXPECT_FALSE(report.has_regression());
  ASSERT_EQ(report.deltas.size(), 1u);
  EXPECT_EQ(report.deltas[0].status,
            BenchDelta::Status::kSkippedNoise);
}

TEST(BenchCompare, WorkloadMismatchSkipsSubtree) {
  const auto base = parse(R"({"mix": {"ops": 100, "run_seconds": 1.0}})");
  const auto cand = parse(R"({"mix": {"ops": 200, "run_seconds": 9.0}})");
  const auto report = compare_bench_reports(base, cand, {});
  // 9x slower, but on 2x the ops: incomparable, noted, not flagged.
  EXPECT_FALSE(report.has_regression());
  EXPECT_TRUE(report.deltas.empty());
  ASSERT_EQ(report.notes.size(), 1u);
  EXPECT_NE(report.notes[0].find("workload differs"), std::string::npos);
}

TEST(BenchCompare, BooleanFlipTrueToFalseIsARegression) {
  const auto base = parse(R"({"checksums_match": true})");
  const auto cand = parse(R"({"checksums_match": false})");
  EXPECT_TRUE(compare_bench_reports(base, cand, {}).has_regression());
  // The other direction is an improvement, not a failure.
  EXPECT_FALSE(compare_bench_reports(cand, base, {}).has_regression());
}

TEST(BenchCompare, RatioOnlyDemotesTimings) {
  const auto base = parse(R"({"run_seconds": 1.0, "speedup": 2.0})");
  const auto cand = parse(R"({"run_seconds": 3.0, "speedup": 2.0})");
  BenchCompareOptions options;
  options.ratio_only = true;
  const auto report = compare_bench_reports(base, cand, options);
  EXPECT_FALSE(report.has_regression());
  // ... but a rate drop still fails in ratio-only mode.
  const auto worse = parse(R"({"run_seconds": 1.0, "speedup": 1.0})");
  EXPECT_TRUE(compare_bench_reports(base, worse, options).has_regression());
}

TEST(BenchCompare, NamedArrayEntriesPairByName) {
  const auto base = parse(
      R"({"runs": [{"name": "a", "wall_seconds": 1.0},
                   {"name": "b", "wall_seconds": 2.0}]})");
  const auto reordered = parse(
      R"({"runs": [{"name": "b", "wall_seconds": 2.0},
                   {"name": "a", "wall_seconds": 1.0}]})");
  EXPECT_FALSE(
      compare_bench_reports(base, reordered, {}).has_regression());
  const auto slow_b = parse(
      R"({"runs": [{"name": "a", "wall_seconds": 1.0},
                   {"name": "b", "wall_seconds": 3.0}]})");
  const auto report = compare_bench_reports(base, slow_b, {});
  EXPECT_TRUE(report.has_regression());
  bool found = false;
  for (const auto& delta : report.deltas) {
    if (delta.status == BenchDelta::Status::kRegression) {
      EXPECT_EQ(delta.path, "runs[b].wall_seconds");
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(BenchCompare, MissingKeysAreNotesNotRegressions) {
  const auto base = parse(R"({"a_seconds": 1.0, "b_seconds": 2.0})");
  const auto cand = parse(R"({"a_seconds": 1.0, "c_seconds": 9.0})");
  const auto report = compare_bench_reports(base, cand, {});
  EXPECT_FALSE(report.has_regression());
  EXPECT_EQ(report.notes.size(), 2u);  // b missing, c new
}

TEST(BenchCompare, InjectSlowdownScalesTimingsAndRates) {
  const auto doc = parse(
      R"({"ops": 100, "run_seconds": 1.0, "speedup": 2.0,
          "ok": true})");
  const auto slow = inject_slowdown(doc, 1.25);
  EXPECT_DOUBLE_EQ(slow.find("run_seconds")->number(), 1.25);
  EXPECT_DOUBLE_EQ(slow.find("speedup")->number(), 1.6);
  EXPECT_DOUBLE_EQ(slow.find("ops")->number(), 100.0);
  EXPECT_TRUE(slow.find("ok")->boolean());
  // The injected report must trip the gate against its own source.
  EXPECT_TRUE(compare_bench_reports(doc, slow, {}).has_regression());
  // Identity factor compares clean.
  const auto same = inject_slowdown(doc, 1.0);
  EXPECT_FALSE(compare_bench_reports(doc, same, {}).has_regression());
}

TEST(BenchCompare, ReportJsonShape) {
  const auto base = parse(R"({"run_seconds": 1.0})");
  const auto cand = parse(R"({"run_seconds": 2.0})");
  BenchCompareOptions options;
  const auto json =
      compare_bench_reports(base, cand, options).to_json(options);
  EXPECT_EQ(json.find("piggyweb_benchdiff")->number(), 1.0);
  EXPECT_EQ(json.find("regressions")->number(), 1.0);
  const auto* deltas = json.find("deltas");
  ASSERT_NE(deltas, nullptr);
  ASSERT_EQ(deltas->items().size(), 1u);
  const auto& delta = deltas->items()[0];
  EXPECT_EQ(delta.find("status")->string(), "regression");
  EXPECT_EQ(delta.find("kind")->string(), "timing");
  EXPECT_DOUBLE_EQ(delta.find("worse_ratio")->number(), 2.0);
}

}  // namespace
}  // namespace piggyweb::tools

#include "http/piggy_headers.h"

#include <gtest/gtest.h>

namespace piggyweb::http {
namespace {

TEST(PiggyFilter, SerializePaperExample) {
  core::ProxyFilter filter;
  filter.max_elements = 10;
  filter.rpv = {3, 4};
  EXPECT_EQ(serialize_filter(filter), "maxpiggy=10; rpv=\"3,4\"");
}

TEST(PiggyFilter, ParsePaperExample) {
  const auto filter = parse_filter("maxpiggy=10; rpv=\"3,4\"");
  ASSERT_TRUE(filter.has_value());
  EXPECT_TRUE(filter->enabled);
  EXPECT_EQ(filter->max_elements, 10u);
  ASSERT_EQ(filter->rpv.size(), 2u);
  EXPECT_EQ(filter->rpv[0], 3u);
  EXPECT_EQ(filter->rpv[1], 4u);
}

TEST(PiggyFilter, RoundTripAllFields) {
  core::ProxyFilter filter;
  filter.max_elements = 25;
  filter.rpv = {1, 2, 30000};
  filter.probability_threshold = 0.2;
  filter.max_size = 65536;
  filter.allow_image = false;
  filter.min_access_count = 5;
  const auto parsed = parse_filter(serialize_filter(filter));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->max_elements, 25u);
  EXPECT_EQ(parsed->rpv, filter.rpv);
  ASSERT_TRUE(parsed->probability_threshold.has_value());
  EXPECT_DOUBLE_EQ(*parsed->probability_threshold, 0.2);
  ASSERT_TRUE(parsed->max_size.has_value());
  EXPECT_EQ(*parsed->max_size, 65536u);
  EXPECT_TRUE(parsed->allow_html);
  EXPECT_FALSE(parsed->allow_image);
  EXPECT_TRUE(parsed->allow_other);
  EXPECT_EQ(parsed->min_access_count, 5u);
}

TEST(PiggyFilter, NopiggyRoundTrip) {
  core::ProxyFilter filter;
  filter.enabled = false;
  EXPECT_EQ(serialize_filter(filter), "nopiggy");
  const auto parsed = parse_filter("nopiggy");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(parsed->enabled);
}

TEST(PiggyFilter, DefaultsSerializeAndParse) {
  const core::ProxyFilter filter;
  const auto parsed = parse_filter(serialize_filter(filter));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->enabled);
  EXPECT_EQ(parsed->max_elements, filter.max_elements);
}

TEST(PiggyFilter, ParseIgnoresUnknownAttributes) {
  const auto filter = parse_filter("maxpiggy=5; future=shiny");
  ASSERT_TRUE(filter.has_value());
  EXPECT_EQ(filter->max_elements, 5u);
}

TEST(PiggyFilter, ParseRejectsBadValues) {
  EXPECT_FALSE(parse_filter("maxpiggy=abc").has_value());
  EXPECT_FALSE(parse_filter("rpv=\"1,x\"").has_value());
  EXPECT_FALSE(parse_filter("rpv=\"99999\"").has_value());  // > wire bound
  EXPECT_FALSE(parse_filter("pt=1.5").has_value());
  EXPECT_FALSE(parse_filter("pt=-0.1").has_value());
  EXPECT_FALSE(parse_filter("types=video").has_value());
  EXPECT_FALSE(parse_filter("maxsize=big").has_value());
}

TEST(PiggyFilter, AttachSetsTeChunked) {
  Request request;
  core::ProxyFilter filter;
  filter.max_elements = 10;
  attach_filter(request, filter);
  EXPECT_EQ(*request.headers.get("TE"), "chunked");
  ASSERT_TRUE(request.headers.get("Piggy-filter").has_value());
  const auto extracted = extract_filter(request);
  ASSERT_TRUE(extracted.has_value());
  EXPECT_EQ(extracted->max_elements, 10u);
}

TEST(PiggyFilter, ExtractMissingHeader) {
  Request request;
  EXPECT_FALSE(extract_filter(request).has_value());
}

TEST(PVolume, SerializeBasic) {
  util::InternTable paths;
  core::PiggybackMessage message;
  message.volume = 7;
  message.elements.push_back({paths.intern("/dir/a.html"), 2366, 887637622});
  EXPECT_EQ(serialize_pvolume(message, paths),
            "vid=7; e=\"/dir/a.html 887637622 2366\"");
}

TEST(PVolume, RoundTrip) {
  util::InternTable paths;
  core::PiggybackMessage message;
  message.volume = 12345;
  message.elements.push_back({paths.intern("/a.html"), 100, 5});
  message.elements.push_back({paths.intern("/b.gif"), 2048, 99999});
  const auto wire = serialize_pvolume(message, paths);

  util::InternTable other_paths;
  const auto parsed = parse_pvolume(wire, other_paths);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->volume, 12345u);
  ASSERT_EQ(parsed->elements.size(), 2u);
  EXPECT_EQ(other_paths.str(parsed->elements[0].resource), "/a.html");
  EXPECT_EQ(parsed->elements[0].size, 100u);
  EXPECT_EQ(parsed->elements[0].last_modified, 5);
  EXPECT_EQ(other_paths.str(parsed->elements[1].resource), "/b.gif");
}

TEST(PVolume, ProbabilityFieldRoundTrips) {
  util::InternTable paths;
  core::PiggybackMessage message;
  message.volume = 2;
  message.elements.push_back({paths.intern("/a.html"), 100, 5, 0.875});
  message.elements.push_back({paths.intern("/b.gif"), 200, 6, 0.0});
  const auto wire = serialize_pvolume(message, paths);
  EXPECT_NE(wire.find("0.875"), std::string::npos);

  util::InternTable other;
  const auto parsed = parse_pvolume(wire, other);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->elements.size(), 2u);
  EXPECT_NEAR(parsed->elements[0].probability, 0.875, 1e-6);
  EXPECT_DOUBLE_EQ(parsed->elements[1].probability, 0.0);
}

TEST(PVolume, ParseRejectsBadProbability) {
  util::InternTable paths;
  EXPECT_FALSE(parse_pvolume("vid=1; e=\"/a 1 2 1.5\"", paths).has_value());
  EXPECT_FALSE(parse_pvolume("vid=1; e=\"/a 1 2 x\"", paths).has_value());
  EXPECT_FALSE(
      parse_pvolume("vid=1; e=\"/a 1 2 0.5 9\"", paths).has_value());
}

TEST(PVolume, ParseRejectsMalformed) {
  util::InternTable paths;
  EXPECT_FALSE(parse_pvolume("", paths).has_value());
  EXPECT_FALSE(parse_pvolume("e=\"/a 1 2\"", paths).has_value());  // no vid
  EXPECT_FALSE(parse_pvolume("vid=99999", paths).has_value());
  EXPECT_FALSE(parse_pvolume("vid=1; e=\"/a 1\"", paths).has_value());
  EXPECT_FALSE(parse_pvolume("vid=1; e=\"/a x 2\"", paths).has_value());
}

TEST(PVolume, AttachMakesChunkedWithTrailer) {
  util::InternTable paths;
  core::PiggybackMessage message;
  message.volume = 3;
  message.elements.push_back({paths.intern("/x.html"), 10, 20});

  Response response;
  response.body = "body";
  response.headers.add("Content-Length", "4");
  attach_pvolume(response, message, paths);

  EXPECT_TRUE(response.chunked);
  EXPECT_FALSE(response.headers.contains("Content-Length"));
  EXPECT_EQ(*response.headers.get("Transfer-Encoding"), "chunked");
  EXPECT_EQ(*response.headers.get("Trailer"), "P-volume");

  util::InternTable proxy_paths;
  const auto extracted = extract_pvolume(response, proxy_paths);
  ASSERT_TRUE(extracted.has_value());
  EXPECT_EQ(extracted->volume, 3u);
  ASSERT_EQ(extracted->elements.size(), 1u);
}

TEST(PVolume, AttachEmptyIsNoop) {
  util::InternTable paths;
  Response response;
  response.headers.add("Content-Length", "0");
  attach_pvolume(response, {}, paths);
  EXPECT_FALSE(response.chunked);
  EXPECT_TRUE(response.headers.contains("Content-Length"));
}

TEST(PVolume, ExtractFromHeaderFallback) {
  util::InternTable paths;
  Response response;
  response.status = 304;
  response.headers.add("P-volume", "vid=2; e=\"/y.gif 7 8\"");
  const auto extracted = extract_pvolume(response, paths);
  ASSERT_TRUE(extracted.has_value());
  EXPECT_EQ(extracted->volume, 2u);
}

TEST(PVolume, WireRoundTripThroughSerializedResponse) {
  // Full wire round trip: attach -> serialize -> parse -> extract.
  util::InternTable paths;
  core::PiggybackMessage message;
  message.volume = 42;
  message.elements.push_back({paths.intern("/p/q.html"), 1234, 875000000});

  Response response;
  response.body = "response body";
  attach_pvolume(response, message, paths);
  const auto wire = response.serialize();

  ParseError error;
  const auto parsed = parse_response(wire, error);
  ASSERT_TRUE(parsed.has_value()) << error.message;
  util::InternTable proxy_paths;
  const auto extracted = extract_pvolume(parsed->response, proxy_paths);
  ASSERT_TRUE(extracted.has_value());
  EXPECT_EQ(extracted->volume, 42u);
  ASSERT_EQ(extracted->elements.size(), 1u);
  EXPECT_EQ(proxy_paths.str(extracted->elements[0].resource), "/p/q.html");
  EXPECT_EQ(extracted->elements[0].size, 1234u);
  EXPECT_EQ(extracted->elements[0].last_modified, 875000000);
  EXPECT_EQ(parsed->response.body, "response body");
}

TEST(PiggyHits, SerializeBasic) {
  EXPECT_EQ(serialize_hits({{3, 12}, {7, 4}}), "3:12, 7:4");
  EXPECT_EQ(serialize_hits({}), "");
}

TEST(PiggyHits, RoundTrip) {
  const std::vector<core::VolumeHitCount> counts = {{0, 1}, {3, 12},
                                                    {32767, 400}};
  const auto parsed = parse_hits(serialize_hits(counts));
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), 3u);
  EXPECT_EQ((*parsed)[1].volume, 3u);
  EXPECT_EQ((*parsed)[1].hits, 12u);
  EXPECT_EQ((*parsed)[2].volume, 32767u);
}

TEST(PiggyHits, ParseRejectsMalformed) {
  EXPECT_FALSE(parse_hits("3").has_value());
  EXPECT_FALSE(parse_hits("3:x").has_value());
  EXPECT_FALSE(parse_hits("99999:1").has_value());  // beyond wire bound
  EXPECT_FALSE(parse_hits("a:1").has_value());
}

TEST(PiggyHits, AttachAndExtract) {
  Request request;
  attach_hits(request, {{3, 12}});
  ASSERT_TRUE(request.headers.contains("Piggy-hits"));
  const auto extracted = extract_hits(request);
  ASSERT_TRUE(extracted.has_value());
  ASSERT_EQ(extracted->size(), 1u);
  EXPECT_EQ((*extracted)[0].hits, 12u);
}

TEST(PiggyHits, AttachEmptyIsNoop) {
  Request request;
  attach_hits(request, {});
  EXPECT_FALSE(request.headers.contains("Piggy-hits"));
  EXPECT_FALSE(extract_hits(request).has_value());
}

TEST(PiggyValidate, SerializeItems) {
  util::InternTable paths;
  const std::vector<core::ValidationItem> items = {
      {paths.intern("/a.html"), 886291300},
      {paths.intern("/b.gif"), 886291500}};
  EXPECT_EQ(serialize_validate(items, paths),
            "e=\"/a.html 886291300\"; e=\"/b.gif 886291500\"");
}

TEST(PiggyValidate, RoundTripThroughRequest) {
  util::InternTable paths;
  const std::vector<core::ValidationItem> items = {
      {paths.intern("/x/y.html"), 100}, {paths.intern("/z.pdf"), -1}};
  Request request;
  attach_validate(request, items, paths);
  ASSERT_TRUE(request.headers.contains("Piggy-validate"));

  util::InternTable other;
  const auto parsed = extract_validate(request, other);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ(other.str((*parsed)[0].resource), "/x/y.html");
  EXPECT_EQ((*parsed)[0].last_modified, 100);
  EXPECT_EQ((*parsed)[1].last_modified, -1);
}

TEST(PiggyValidate, AttachEmptyIsNoop) {
  util::InternTable paths;
  Request request;
  attach_validate(request, {}, paths);
  EXPECT_FALSE(request.headers.contains("Piggy-validate"));
}

TEST(PiggyValidate, ParseRejectsMalformed) {
  util::InternTable paths;
  EXPECT_FALSE(parse_validate("e=\"/a\"", paths).has_value());
  EXPECT_FALSE(parse_validate("e=\"/a x\"", paths).has_value());
  EXPECT_FALSE(parse_validate("q=\"/a 1\"", paths).has_value());
}

TEST(PValidate, ReplyRoundTrip) {
  util::InternTable paths;
  core::ValidationReply reply;
  reply.fresh.push_back(paths.intern("/ok.html"));
  reply.stale.push_back({paths.intern("/old.html"), 886295000});

  Response response;
  attach_validate_reply(response, reply, paths);
  ASSERT_TRUE(response.headers.contains("P-validate"));
  EXPECT_EQ(*response.headers.get("P-validate"),
            "f=\"/ok.html\"; s=\"/old.html 886295000\"");

  util::InternTable other;
  const auto parsed = extract_validate_reply(response, other);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->fresh.size(), 1u);
  EXPECT_EQ(other.str(parsed->fresh[0]), "/ok.html");
  ASSERT_EQ(parsed->stale.size(), 1u);
  EXPECT_EQ(other.str(parsed->stale[0].resource), "/old.html");
  EXPECT_EQ(parsed->stale[0].last_modified, 886295000);
}

TEST(PValidate, EmptyReplyIsNoop) {
  util::InternTable paths;
  Response response;
  attach_validate_reply(response, {}, paths);
  EXPECT_FALSE(response.headers.contains("P-validate"));
  util::InternTable other;
  EXPECT_FALSE(extract_validate_reply(response, other).has_value());
}

TEST(PValidate, ParseRejectsMalformed) {
  util::InternTable paths;
  EXPECT_FALSE(parse_validate_reply("x=\"/a\"", paths).has_value());
  EXPECT_FALSE(parse_validate_reply("s=\"/a\"", paths).has_value());
  EXPECT_FALSE(parse_validate_reply("s=\"/a b\"", paths).has_value());
  EXPECT_FALSE(parse_validate_reply("f=", paths).has_value());
}

}  // namespace
}  // namespace piggyweb::http

#include "obs/manifest.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/json.h"
#include "obs/registry.h"

namespace piggyweb::obs {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string temp_path(const char* name) {
  return testing::TempDir() + name;
}

TEST(Manifest, BuildAndValidate) {
  Registry registry;
  registry.counter("eval.requests").add(5);
  auto extra = Json::object();
  extra.set("note", "hello");
  const auto manifest = build_run_manifest("unit", {"--scale=1"}, 1.5, 1.4,
                                           registry, extra);
  EXPECT_EQ(manifest.find("piggyweb_manifest")->number(), 1);
  EXPECT_EQ(manifest.find("name")->string(), "unit");
  EXPECT_EQ(manifest.find("argv")->items().size(), 1u);
  EXPECT_EQ(manifest.find("wall_seconds")->number(), 1.5);
  EXPECT_EQ(manifest.find("note")->string(), "hello");
  ASSERT_NE(manifest.find("metrics"), nullptr);

  std::vector<std::string> problems;
  EXPECT_TRUE(validate_run_manifest(manifest, problems));
  EXPECT_TRUE(problems.empty());
}

TEST(Manifest, ValidateRejectsMissingSections) {
  std::vector<std::string> problems;
  EXPECT_FALSE(validate_run_manifest(Json::object(), problems));
  EXPECT_FALSE(problems.empty());

  auto bad = Json::object();
  bad.set("piggyweb_manifest", 2);  // wrong version
  bad.set("name", "x");
  problems.clear();
  EXPECT_FALSE(validate_run_manifest(bad, problems));
}

TEST(Manifest, SchemaRoundTrip) {
  Registry registry;
  registry.counter("c").add(3);
  registry.gauge("g").set(2.5);
  registry.histogram("h", 0.0, 1.0, 4).add(0.3);
  const auto manifest = build_run_manifest(
      "roundtrip", {"--a=1", "--b=2"}, 0.25, 0.25, registry, Json::object());
  const auto reparsed = parse_json(manifest.dump(2));
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_TRUE(*reparsed == manifest);
  EXPECT_EQ(reparsed->dump(2), manifest.dump(2));
}

TEST(RunScope, WritesManifestAndTraceAndInstallsGlobals) {
  const auto metrics_path = temp_path("runscope-manifest.json");
  const auto trace_path = temp_path("runscope-trace.json");
  {
    RunScope::Options options;
    options.run_name = "scope-test";
    options.metrics_path = metrics_path;
    options.trace_path = trace_path;
    options.argv = {"--flag=1"};
    RunScope scope(std::move(options));
    ASSERT_EQ(global_metrics(), &scope.registry());
    ASSERT_EQ(global_tracer(), &scope.tracer());
    global_metrics()->counter("eval.requests").add(7);
    { OBS_SPAN("unit.span"); }
    scope.note("extra_section", Json("ok"));
  }
  // Destruction uninstalls the globals and writes both artifacts.
  EXPECT_EQ(global_metrics(), nullptr);
  EXPECT_EQ(global_tracer(), nullptr);

  const auto manifest = parse_json(read_file(metrics_path));
  ASSERT_TRUE(manifest.has_value());
  std::vector<std::string> problems;
  EXPECT_TRUE(validate_run_manifest(*manifest, problems))
      << (problems.empty() ? "" : problems.front());
  EXPECT_EQ(manifest->find("name")->string(), "scope-test");
  EXPECT_EQ(manifest->find("extra_section")->string(), "ok");

  const auto trace = parse_json(read_file(trace_path));
  ASSERT_TRUE(trace.has_value());
  ASSERT_NE(trace->find("traceEvents"), nullptr);
  EXPECT_EQ(trace->find("traceEvents")->items().size(), 1u);

  std::remove(metrics_path.c_str());
  std::remove(trace_path.c_str());
}

TEST(RunScope, MetricsOnlySkipsTraceFile) {
  const auto metrics_path = temp_path("runscope-metrics-only.json");
  const auto trace_path = temp_path("runscope-no-trace.json");
  {
    RunScope::Options options;
    options.run_name = "metrics-only";
    options.metrics_path = metrics_path;
    RunScope scope(std::move(options));
    EXPECT_NE(global_metrics(), nullptr);
    EXPECT_EQ(global_tracer(), nullptr);  // tracing not requested
  }
  EXPECT_TRUE(parse_json(read_file(metrics_path)).has_value());
  std::ifstream trace_file(trace_path);
  EXPECT_FALSE(trace_file.good());
  std::remove(metrics_path.c_str());
}

// A manifest that checkpointed (or resumed from) a snapshot records the
// file path and whole-file checksum under "snapshots"; the validator pins
// the schema so piggyweb_tracecheck can verify checksums against disk.
Json valid_manifest_base() {
  Registry registry;
  registry.counter("eval.requests").add(1);
  return build_run_manifest("snap", {}, 0.1, 0.1, registry, Json::object());
}

Json snapshot_entry(const char* path, const char* checksum) {
  auto entry = Json::object();
  entry.set("path", path);
  entry.set("fnv1a", checksum);
  return entry;
}

TEST(Manifest, ValidSnapshotsSectionPasses) {
  auto manifest = valid_manifest_base();
  auto snapshots = Json::object();
  snapshots.set("loaded", snapshot_entry("ckpt.snap", "0x0123456789abcdef"));
  snapshots.set("saved", snapshot_entry("out.snap", "0xdeadbeef00000000"));
  manifest.set("snapshots", snapshots);

  std::vector<std::string> problems;
  EXPECT_TRUE(validate_run_manifest(manifest, problems));
  EXPECT_TRUE(problems.empty());
}

TEST(Manifest, SnapshotsSectionIsOptional) {
  std::vector<std::string> problems;
  EXPECT_TRUE(validate_run_manifest(valid_manifest_base(), problems));
}

TEST(Manifest, SnapshotsRejectsUnknownRole) {
  auto manifest = valid_manifest_base();
  auto snapshots = Json::object();
  snapshots.set("checkpointed", snapshot_entry("x.snap", "0x0000000000000000"));
  manifest.set("snapshots", snapshots);
  std::vector<std::string> problems;
  EXPECT_FALSE(validate_run_manifest(manifest, problems));
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("saved/loaded"), std::string::npos);
}

TEST(Manifest, SnapshotsRejectsMissingPathAndBadChecksum) {
  auto manifest = valid_manifest_base();
  auto snapshots = Json::object();
  auto entry = Json::object();
  entry.set("fnv1a", "0xNOTHEX0000000000");  // bad hex and no path
  snapshots.set("saved", entry);
  manifest.set("snapshots", snapshots);
  std::vector<std::string> problems;
  EXPECT_FALSE(validate_run_manifest(manifest, problems));
  EXPECT_EQ(problems.size(), 2u);

  // Uppercase hex and wrong lengths are also rejected — the writer emits
  // exactly "0x" + 16 lowercase digits.
  for (const char* bad : {"0XABCDEF0123456789", "0xABCDEF0123456789",
                          "0x123", "deadbeefdeadbeef", ""}) {
    auto m = valid_manifest_base();
    auto s = Json::object();
    s.set("saved", snapshot_entry("x.snap", bad));
    m.set("snapshots", s);
    problems.clear();
    EXPECT_FALSE(validate_run_manifest(m, problems)) << bad;
  }
}

TEST(Manifest, SnapshotsRejectsNonObjectShapes) {
  auto manifest = valid_manifest_base();
  manifest.set("snapshots", Json("not an object"));
  std::vector<std::string> problems;
  EXPECT_FALSE(validate_run_manifest(manifest, problems));

  auto nested = valid_manifest_base();
  auto snapshots = Json::object();
  snapshots.set("saved", Json(42.0));
  nested.set("snapshots", snapshots);
  problems.clear();
  EXPECT_FALSE(validate_run_manifest(nested, problems));
}

TEST(RunScope, FinishIsIdempotent) {
  const auto metrics_path = temp_path("runscope-finish.json");
  RunScope::Options options;
  options.run_name = "finish";
  options.metrics_path = metrics_path;
  RunScope scope(std::move(options));
  EXPECT_TRUE(scope.finish());
  EXPECT_TRUE(scope.finish());  // second call: no rewrite, still true
  EXPECT_EQ(global_metrics(), nullptr);
  std::remove(metrics_path.c_str());
}

}  // namespace
}  // namespace piggyweb::obs

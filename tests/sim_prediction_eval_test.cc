#include "sim/prediction_eval.h"

#include <gtest/gtest.h>

#include "server/meta.h"
#include "volume/directory.h"
#include "volume/pair_counter.h"
#include "volume/probability.h"

namespace piggyweb::sim {
namespace {

trace::Trace make_trace(
    std::initializer_list<std::tuple<util::Seconds, const char*,
                                     const char*>> events) {
  trace::Trace t;
  for (const auto& [time, source, path] : events) {
    t.add({time}, source, "server", path, trace::Method::kGet, 200, 100);
  }
  t.sort_by_time();
  return t;
}

EvalConfig default_config() {
  EvalConfig config;
  config.prediction_window = 300;
  config.cache_horizon = 7200;
  return config;
}

// Runs a trace through 1-level directory volumes.
EvalResult run_directory(const trace::Trace& t, const EvalConfig& config,
                         int level = 1) {
  volume::DirectoryVolumeConfig dvc;
  dvc.level = level;
  volume::DirectoryVolumes volumes(dvc);
  volumes.bind_paths(t.paths());
  server::TraceMetaOracle meta(t);
  return PredictionEvaluator(config).run(t, volumes, meta);
}

TEST(PredictionEval, PredictsSecondAccessInDirectory) {
  // c1 fetches /a/x then /a/y: the piggyback on x's response names y? No —
  // y wasn't in the volume yet. But a later re-access of y after another
  // request IS predicted. Classic warm-up sequence:
  const auto t = make_trace({{0, "c1", "/a/x.html"},
                             {10, "c1", "/a/y.html"},   // piggyback: {x}
                             {20, "c1", "/a/x.html"}}); // predicted by msg@10
  const auto result = run_directory(t, default_config());
  EXPECT_EQ(result.requests, 3u);
  EXPECT_EQ(result.predicted_requests, 1u);
  EXPECT_NEAR(result.fraction_predicted(), 1.0 / 3.0, 1e-9);
}

TEST(PredictionEval, PredictionExpiresAfterWindow) {
  const auto t = make_trace({{0, "c1", "/a/x.html"},
                             {10, "c1", "/a/y.html"},    // piggyback: {x}
                             {400, "c1", "/a/x.html"}}); // 390s later: stale
  const auto result = run_directory(t, default_config());
  EXPECT_EQ(result.predicted_requests, 0u);
}

TEST(PredictionEval, PredictionsScopedToSource) {
  const auto t = make_trace({{0, "c1", "/a/x.html"},
                             {10, "c1", "/a/y.html"},   // piggyback to c1
                             {20, "c2", "/a/x.html"}}); // c2 never got it
  const auto result = run_directory(t, default_config());
  EXPECT_EQ(result.predicted_requests, 0u);
}

TEST(PredictionEval, TruePredictionAccounting) {
  const auto t = make_trace({{0, "c1", "/a/x.html"},
                             {10, "c1", "/a/y.html"},   // predicts {x}
                             {20, "c1", "/a/x.html"}}); // fulfils it
  const auto result = run_directory(t, default_config());
  // Predictions made: msg@10 predicts x (1); msg@20 predicts y (1, still
  // open and unfulfilled at the end).
  EXPECT_EQ(result.predictions_made, 2u);
  EXPECT_EQ(result.predictions_true, 1u);
  EXPECT_DOUBLE_EQ(result.true_prediction_fraction(), 0.5);
}

TEST(PredictionEval, RepeatMentionsWithinWindowCountOnce) {
  const auto t = make_trace({{0, "c1", "/a/x.html"},
                             {10, "c1", "/a/y.html"},    // predicts {x}
                             {20, "c1", "/a/z.html"},    // mentions x again
                             {30, "c1", "/a/x.html"}});  // fulfils once
  const auto result = run_directory(t, default_config());
  // x's two mentions at 10 and 20 fall in one interval -> one prediction.
  // y is predicted by messages at 20 and 30 (one interval). z by msg@30.
  EXPECT_EQ(result.predictions_made, 3u);
  EXPECT_EQ(result.predictions_true, 1u);
}

TEST(PredictionEval, UpdateFractionBuckets) {
  EvalConfig config = default_config();  // T=300, C=7200
  const auto t = make_trace({
      {0, "c1", "/a/x.html"},
      {1000, "c1", "/a/y.html"},   // piggyback mentions x
      {1100, "c1", "/a/x.html"},   // prev occ 1100s ago (>T, <C), predicted
  });
  const auto result = run_directory(t, config);
  EXPECT_EQ(result.prev_occurrence_within_horizon, 1u);
  EXPECT_EQ(result.prev_occurrence_within_window, 0u);
  EXPECT_EQ(result.updated_by_piggyback, 1u);
  EXPECT_NEAR(result.update_fraction(), 1.0 / 3.0, 1e-9);
}

TEST(PredictionEval, RecentPrevOccurrenceNotCountedAsUpdate) {
  const auto t = make_trace({
      {0, "c1", "/a/x.html"},
      {10, "c1", "/a/y.html"},
      {20, "c1", "/a/x.html"},  // prev occ 20s ago (<T): already fresh
  });
  const auto result = run_directory(t, default_config());
  EXPECT_EQ(result.prev_occurrence_within_window, 1u);
  EXPECT_EQ(result.updated_by_piggyback, 0u);
}

TEST(PredictionEval, AvgPiggybackSize) {
  const auto t = make_trace({{0, "c1", "/a/x.html"},
                             {10, "c1", "/a/y.html"},    // 1 element {x}
                             {20, "c1", "/a/z.html"}});  // 2 elements {y,x}
  const auto result = run_directory(t, default_config());
  EXPECT_EQ(result.piggyback_messages, 2u);
  EXPECT_EQ(result.piggyback_elements, 3u);
  EXPECT_DOUBLE_EQ(result.avg_piggyback_size(), 1.5);
  EXPECT_DOUBLE_EQ(result.elements_per_request(), 1.0);
}

TEST(PredictionEval, MaxElementsCapsMessages) {
  EvalConfig config = default_config();
  config.filter.max_elements = 1;
  const auto t = make_trace({{0, "c1", "/a/x.html"},
                             {10, "c1", "/a/y.html"},
                             {20, "c1", "/a/z.html"}});
  const auto result = run_directory(t, config);
  EXPECT_DOUBLE_EQ(result.avg_piggyback_size(), 1.0);
}

TEST(PredictionEval, AccessFilterSuppressesUnpopular) {
  EvalConfig config = default_config();
  config.filter.min_access_count = 3;  // whole-trace counts
  const auto t = make_trace({{0, "c1", "/a/x.html"},
                             {10, "c1", "/a/y.html"},
                             {20, "c1", "/a/x.html"},
                             {30, "c1", "/a/x.html"}});
  // x occurs 3 times (passes); y occurs once (filtered out of piggybacks).
  const auto result = run_directory(t, config);
  EXPECT_GT(result.piggyback_messages, 0u);
  // Messages must never include y: total elements = mentions of x only.
  // Requests at 10, 20, 30 each can mention x once.
  EXPECT_LE(result.piggyback_elements, 3u);
}

TEST(PredictionEval, MinIntervalThrottlesMessages) {
  EvalConfig config = default_config();
  config.min_piggyback_interval = 100;
  const auto t = make_trace({{0, "c1", "/a/x.html"},
                             {10, "c1", "/a/y.html"},   // piggyback sent
                             {20, "c1", "/a/z.html"},   // throttled
                             {200, "c1", "/a/w.html"}}); // allowed again
  const auto result = run_directory(t, config);
  EXPECT_EQ(result.piggyback_messages, 2u);
}

TEST(PredictionEval, RpvSuppressesSameVolume) {
  EvalConfig config = default_config();
  config.use_rpv = true;
  config.rpv.timeout = 60;
  const auto t = make_trace({{0, "c1", "/a/x.html"},
                             {10, "c1", "/a/y.html"},   // piggyback (vol a)
                             {20, "c1", "/a/z.html"},   // RPV suppresses
                             {100, "c1", "/a/w.html"}}); // RPV expired
  const auto result = run_directory(t, config);
  EXPECT_EQ(result.piggyback_messages, 2u);
}

TEST(PredictionEval, RpvIsPerSource) {
  EvalConfig config = default_config();
  config.use_rpv = true;
  config.rpv.timeout = 600;
  const auto t = make_trace({{0, "c1", "/a/x.html"},
                             {10, "c1", "/a/y.html"},   // c1 piggyback
                             {20, "c2", "/a/x.html"},   // c2 has no RPV yet:
                             {30, "c2", "/a/y.html"}}); // gets piggybacks
  const auto result = run_directory(t, config);
  // c1: msg at 10. c2: msgs at 20 and 30? At 20, volume has {x,y}; c2's
  // first message arrives then its RPV suppresses the one at 30.
  EXPECT_EQ(result.piggyback_messages, 2u);
}

TEST(PredictionEval, ProbabilityVolumesPredict) {
  // Train on a strongly-paired trace and evaluate on it (the paper uses
  // a single volume set for the whole log).
  trace::Trace t;
  for (int i = 0; i < 10; ++i) {
    const auto base = static_cast<util::Seconds>(i * 10000);
    t.add({base}, "c1", "server", "/page.html", trace::Method::kGet, 200,
          100);
    t.add({base + 5}, "c1", "server", "/img.gif", trace::Method::kGet, 200,
          100);
  }
  t.sort_by_time();

  volume::PairCounterConfig pcc;
  const auto counts = volume::PairCounterBuilder(pcc).build(t);
  volume::ProbabilityVolumeConfig pvc;
  pvc.probability_threshold = 0.5;
  const auto set = volume::build_probability_volumes(t, counts, pvc);
  volume::ProbabilityVolumes provider(&set, 50);
  server::TraceMetaOracle meta(t);

  const auto result =
      PredictionEvaluator(default_config()).run(t, provider, meta);
  // Every /img.gif access follows a /page.html piggyback mentioning it.
  EXPECT_GE(result.predicted_requests, 10u);
  EXPECT_GT(result.true_prediction_fraction(), 0.5);
}

TEST(PredictionEval, EmptyTrace) {
  trace::Trace t;
  volume::DirectoryVolumeConfig dvc;
  volume::DirectoryVolumes volumes(dvc);
  volumes.bind_paths(t.paths());
  server::TraceMetaOracle meta(t);
  const auto result =
      PredictionEvaluator(default_config()).run(t, volumes, meta);
  EXPECT_EQ(result.requests, 0u);
  EXPECT_DOUBLE_EQ(result.fraction_predicted(), 0.0);
  EXPECT_DOUBLE_EQ(result.avg_piggyback_size(), 0.0);
}

}  // namespace
}  // namespace piggyweb::sim

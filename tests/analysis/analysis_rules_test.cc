// Targeted rule-engine tests over inline snippets. Each case builds a
// tiny Project, runs analyze(), and checks which rules fire (and, as
// importantly, which don't). The disk fixtures under testdata/ pin the
// full diagnostic text; these pin the decision logic.
#include "analysis/rules.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/project.h"

namespace piggyweb::analysis {
namespace {

std::vector<std::string> rules_fired(const std::vector<Diagnostic>& diags) {
  std::vector<std::string> out;
  for (const auto& d : diags) out.push_back(d.rule);
  return out;
}

std::vector<Diagnostic> analyze_one(std::string path, std::string text) {
  Project project;
  project.add_file(std::move(path), std::move(text));
  return project.analyze();
}

TEST(AnalysisRules, BannedCallFlaggedInHotModule) {
  const auto diags = analyze_one("src/sim/a.cc", "int f() { return rand(); }\n");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "det-banned-call");
  EXPECT_EQ(diags[0].line, 1u);
}

TEST(AnalysisRules, BannedCallExemptInRngTimeAndObs) {
  EXPECT_TRUE(analyze_one("src/util/rng.cc",
                          "int f() { return rand(); }\n")
                  .empty());
  EXPECT_TRUE(analyze_one("src/obs/clock.cc",
                          "long f() { return time(nullptr); }\n")
                  .empty());
}

TEST(AnalysisRules, BannedNamesInsideStringsAndCommentsAreInvisible) {
  const auto diags = analyze_one(
      "src/core/a.cc",
      "// rand() time() std::unordered_map\n"
      "const char* kDoc = \"call rand() for chaos\";\n");
  EXPECT_TRUE(diags.empty());
}

TEST(AnalysisRules, MemberNamedTimeIsNotABannedCall) {
  const auto diags = analyze_one(
      "src/core/a.cc", "long f(const W& w) { return w.time(); }\n");
  EXPECT_TRUE(diags.empty());
}

TEST(AnalysisRules, DeclaringAFunctionNamedLikeABannedCallIsFine) {
  const auto diags = analyze_one(
      "src/core/a.cc",
      "struct Stopwatch {\n"
      "  long time() const { return 0; }\n"
      "  util::Seconds clock() const;\n"
      "};\n");
  EXPECT_TRUE(diags.empty());
}

TEST(AnalysisRules, MmapConfinedToMmapFile) {
  const std::string raw =
      "#include <sys/mman.h>\n"
      "void* f(int fd, unsigned long n) {\n"
      "  return mmap(nullptr, n, 1, 2, fd, 0);\n"
      "}\n";
  const auto diags = analyze_one("src/trace/a.cc", raw);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "os-call-confined");
  EXPECT_EQ(diags[0].line, 3u);
  // The one allowed home: the RAII wrapper itself.
  EXPECT_TRUE(analyze_one("src/util/mmap_file.cc", raw).empty());
  // Applies to benches and tests too — no cold-module exemption.
  EXPECT_EQ(rules_fired(analyze_one("bench/a.cc",
                                    "void f(void* p) { munmap(p, 4); }\n")),
            (std::vector<std::string>{"os-call-confined"}));
  EXPECT_EQ(rules_fired(analyze_one(
                "tests/a_test.cc",
                "void f(void* p) { madvise(p, 4, 1); }\n")),
            (std::vector<std::string>{"os-call-confined"}));
}

TEST(AnalysisRules, MmapNamesInDeclarationsAndMembersAreFine) {
  const auto diags = analyze_one(
      "src/util/mmap_file.h",
      "#pragma once\n"
      "struct MmapFile { void* mmap(int fd); };\n");
  EXPECT_TRUE(diags.empty());
  // A member call named like the syscall is the wrapper, not the syscall.
  EXPECT_TRUE(analyze_one("src/trace/a.cc",
                          "void* f(W& w, int fd) { return w.mmap(fd); }\n")
                  .empty());
}

TEST(AnalysisRules, UnorderedContainerOnlyFlaggedWhereFlatMapMandated) {
  const std::string decl =
      "#include <unordered_map>\n"
      "std::unordered_map<unsigned, int> table;\n";
  EXPECT_EQ(rules_fired(analyze_one("src/sim/a.cc", decl)),
            (std::vector<std::string>{"det-unordered-container"}));
  // trace is a cold module: allowlisted as a module, not per-site.
  EXPECT_TRUE(analyze_one("src/trace/a.cc", decl).empty());
  EXPECT_TRUE(analyze_one("tests/a_test.cc", decl).empty());
}

TEST(AnalysisRules, UnorderedIterationIntoOrderedSink) {
  const std::string feeding =
      "#include <unordered_map>\n"
      "#include <vector>\n"
      "std::vector<int> f(const std::unordered_map<unsigned, int>& m) {\n"
      "  std::vector<int> out;\n"
      "  for (const auto& [k, v] : m) { out.push_back(v); }\n"
      "  return out;\n"
      "}\n";
  // In a cold module the container itself is allowed, but hash-order
  // output is still a determinism bug.
  EXPECT_EQ(rules_fired(analyze_one("src/trace/a.cc", feeding)),
            (std::vector<std::string>{"det-unordered-iteration"}));
  const std::string summing =
      "#include <unordered_map>\n"
      "int f(const std::unordered_map<unsigned, int>& m) {\n"
      "  int total = 0;\n"
      "  for (const auto& [k, v] : m) { total ^= v; }\n"
      "  return total;\n"
      "}\n";
  EXPECT_TRUE(analyze_one("src/trace/a.cc", summing).empty());
}

TEST(AnalysisRules, FlatMapIteratorInvalidation) {
  const std::string bad =
      "#include \"util/flat_map.h\"\n"
      "unsigned f(util::FlatMap<unsigned, unsigned>& m) {\n"
      "  auto it = m.find(1);\n"
      "  m.insert({2, 2});\n"
      "  return it->second;\n"
      "}\n";
  const auto diags = analyze_one("src/core/a.cc", bad);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "flatmap-ref-after-mutate");
  EXPECT_EQ(diags[0].line, 5u);
}

TEST(AnalysisRules, FlatMapOwnCallResultIsSafe) {
  const std::string good =
      "#include \"util/flat_map.h\"\n"
      "unsigned f(util::FlatMap<unsigned, unsigned>& m) {\n"
      "  auto [it, inserted] = m.try_emplace(1, 0u);\n"
      "  return it->second;\n"
      "}\n";
  EXPECT_TRUE(analyze_one("src/core/a.cc", good).empty());
}

TEST(AnalysisRules, FlatMapDistinctReceiversDoNotCrossInvalidate) {
  const std::string two_maps =
      "#include \"util/flat_map.h\"\n"
      "unsigned f(util::FlatMap<unsigned, unsigned>& left,\n"
      "           util::FlatMap<unsigned, unsigned>& right) {\n"
      "  auto it = left.find(1);\n"
      "  right.insert({2, 2});\n"
      "  return it->second;\n"
      "}\n";
  EXPECT_TRUE(analyze_one("src/core/a.cc", two_maps).empty());
}

TEST(AnalysisRules, FlatMapMutationInsideRangeFor) {
  const std::string bad =
      "#include \"util/flat_map.h\"\n"
      "void f(util::FlatMap<unsigned, unsigned>& m) {\n"
      "  for (const auto& [k, v] : m) {\n"
      "    if (v == 0) { m.erase(k); }\n"
      "  }\n"
      "}\n";
  const auto diags = analyze_one("src/core/a.cc", bad);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "flatmap-ref-after-mutate");
  EXPECT_EQ(diags[0].line, 4u);
}

TEST(AnalysisRules, ContractRequiredOnlyForPublicHotFunctions) {
  const std::string missing =
      "#pragma once\n"
      "void seek(std::size_t offset) { use(offset); }\n";
  EXPECT_EQ(rules_fired(analyze_one("src/volume/a.h", missing)),
            (std::vector<std::string>{"contract-missing-expect"}));
  // Cold module: no contract requirement.
  EXPECT_TRUE(analyze_one("src/http/a.h", missing).empty());
  const std::string checked =
      "#pragma once\n"
      "void seek(std::size_t offset) {\n"
      "  PW_EXPECT_BOUNDS(offset, limit());\n"
      "  use(offset);\n"
      "}\n";
  EXPECT_TRUE(analyze_one("src/volume/a.h", checked).empty());
  const std::string non_index =
      "#pragma once\n"
      "void scale(double factor) { use(factor); }\n";
  EXPECT_TRUE(analyze_one("src/volume/a.h", non_index).empty());
}

TEST(AnalysisRules, PragmaOnceRequiredInHeaders) {
  EXPECT_EQ(rules_fired(analyze_one("src/core/a.h", "struct A {};\n")),
            (std::vector<std::string>{"hdr-pragma-once"}));
  EXPECT_TRUE(
      analyze_one("src/core/a.h", "#pragma once\nstruct A {};\n").empty());
  // A leading comment is fine; tokens start at the pragma.
  EXPECT_TRUE(analyze_one("src/core/a.h",
                          "// banner\n#pragma once\nstruct A {};\n")
                  .empty());
  // .cc files have no pragma requirement.
  EXPECT_TRUE(analyze_one("src/core/a.cc", "struct A {};\n").empty());
}

TEST(AnalysisRules, UnusedProjectIncludeUsesTransitiveSymbols) {
  Project project;
  project.add_file("src/util/base.h", "#pragma once\nstruct Base {};\n");
  project.add_file("src/util/wrap.h",
                   "#pragma once\n#include \"util/base.h\"\n"
                   "struct Wrap { Base base; };\n");
  // Uses Base only — provided transitively through wrap.h, so the
  // include is counted as used.
  project.add_file("src/core/user.cc",
                   "#include \"util/wrap.h\"\nBase g_base;\n");
  // Never references anything from wrap.h's tree.
  project.add_file("src/core/dead.cc",
                   "#include \"util/wrap.h\"\nint g_x = 0;\n");
  std::vector<std::string> fired;
  for (const auto& d : project.analyze()) {
    fired.push_back(d.file + ":" + d.rule);
  }
  EXPECT_EQ(fired,
            (std::vector<std::string>{"src/core/dead.cc:hdr-unused-include"}));
}

TEST(AnalysisRules, UnknownSystemHeadersAreNeverFlagged) {
  EXPECT_TRUE(analyze_one("src/core/a.cc",
                          "#include <sys/obscure_platform.h>\nint g_x = 0;\n")
                  .empty());
}

TEST(AnalysisRules, RuleCatalogCoversEveryEmittedRule) {
  const auto& catalog = rule_catalog();
  EXPECT_EQ(catalog.size(), 8u);
  for (const auto& rule : catalog) {
    EXPECT_FALSE(rule.id.empty());
    EXPECT_FALSE(rule.summary.empty());
  }
}

}  // namespace
}  // namespace piggyweb::analysis

// Targeted rule-engine tests over inline snippets. Each case builds a
// tiny Project, runs analyze(), and checks which rules fire (and, as
// importantly, which don't). The disk fixtures under testdata/ pin the
// full diagnostic text; these pin the decision logic.
#include "analysis/rules.h"

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/project.h"
#include "util/rng.h"

namespace piggyweb::analysis {
namespace {

std::vector<std::string> rules_fired(const std::vector<Diagnostic>& diags) {
  std::vector<std::string> out;
  for (const auto& d : diags) out.push_back(d.rule);
  return out;
}

std::vector<Diagnostic> analyze_one(std::string path, std::string text) {
  Project project;
  project.add_file(std::move(path), std::move(text));
  return project.analyze();
}

TEST(AnalysisRules, BannedCallFlaggedInHotModule) {
  const auto diags = analyze_one("src/sim/a.cc", "int f() { return rand(); }\n");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "det-banned-call");
  EXPECT_EQ(diags[0].line, 1u);
}

TEST(AnalysisRules, BannedCallExemptInRngTimeAndObs) {
  EXPECT_TRUE(analyze_one("src/util/rng.cc",
                          "int f() { return rand(); }\n")
                  .empty());
  EXPECT_TRUE(analyze_one("src/obs/clock.cc",
                          "long f() { return time(nullptr); }\n")
                  .empty());
}

TEST(AnalysisRules, BannedNamesInsideStringsAndCommentsAreInvisible) {
  const auto diags = analyze_one(
      "src/core/a.cc",
      "// rand() time() std::unordered_map\n"
      "const char* kDoc = \"call rand() for chaos\";\n");
  EXPECT_TRUE(diags.empty());
}

TEST(AnalysisRules, MemberNamedTimeIsNotABannedCall) {
  const auto diags = analyze_one(
      "src/core/a.cc", "long f(const W& w) { return w.time(); }\n");
  EXPECT_TRUE(diags.empty());
}

TEST(AnalysisRules, DeclaringAFunctionNamedLikeABannedCallIsFine) {
  const auto diags = analyze_one(
      "src/core/a.cc",
      "struct Stopwatch {\n"
      "  long time() const { return 0; }\n"
      "  util::Seconds clock() const;\n"
      "};\n");
  EXPECT_TRUE(diags.empty());
}

TEST(AnalysisRules, MmapConfinedToMmapFile) {
  const std::string raw =
      "#include <sys/mman.h>\n"
      "void* f(int fd, unsigned long n) {\n"
      "  return mmap(nullptr, n, 1, 2, fd, 0);\n"
      "}\n";
  const auto diags = analyze_one("src/trace/a.cc", raw);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "os-call-confined");
  EXPECT_EQ(diags[0].line, 3u);
  // The one allowed home: the RAII wrapper itself.
  EXPECT_TRUE(analyze_one("src/util/mmap_file.cc", raw).empty());
  // Applies to benches and tests too — no cold-module exemption.
  EXPECT_EQ(rules_fired(analyze_one("bench/a.cc",
                                    "void f(void* p) { munmap(p, 4); }\n")),
            (std::vector<std::string>{"os-call-confined"}));
  EXPECT_EQ(rules_fired(analyze_one(
                "tests/a_test.cc",
                "void f(void* p) { madvise(p, 4, 1); }\n")),
            (std::vector<std::string>{"os-call-confined"}));
}

TEST(AnalysisRules, MmapNamesInDeclarationsAndMembersAreFine) {
  const auto diags = analyze_one(
      "src/util/mmap_file.h",
      "#pragma once\n"
      "struct MmapFile { void* mmap(int fd); };\n");
  EXPECT_TRUE(diags.empty());
  // A member call named like the syscall is the wrapper, not the syscall.
  EXPECT_TRUE(analyze_one("src/trace/a.cc",
                          "void* f(W& w, int fd) { return w.mmap(fd); }\n")
                  .empty());
}

TEST(AnalysisRules, UnorderedContainerOnlyFlaggedWhereFlatMapMandated) {
  const std::string decl =
      "#include <unordered_map>\n"
      "std::unordered_map<unsigned, int> table;\n";
  EXPECT_EQ(rules_fired(analyze_one("src/sim/a.cc", decl)),
            (std::vector<std::string>{"det-unordered-container"}));
  // trace is a cold module: allowlisted as a module, not per-site.
  EXPECT_TRUE(analyze_one("src/trace/a.cc", decl).empty());
  EXPECT_TRUE(analyze_one("tests/a_test.cc", decl).empty());
}

TEST(AnalysisRules, UnorderedIterationIntoOrderedSink) {
  const std::string feeding =
      "#include <unordered_map>\n"
      "#include <vector>\n"
      "std::vector<int> f(const std::unordered_map<unsigned, int>& m) {\n"
      "  std::vector<int> out;\n"
      "  for (const auto& [k, v] : m) { out.push_back(v); }\n"
      "  return out;\n"
      "}\n";
  // In a cold module the container itself is allowed, but hash-order
  // output is still a determinism bug.
  EXPECT_EQ(rules_fired(analyze_one("src/trace/a.cc", feeding)),
            (std::vector<std::string>{"det-unordered-iteration"}));
  const std::string summing =
      "#include <unordered_map>\n"
      "int f(const std::unordered_map<unsigned, int>& m) {\n"
      "  int total = 0;\n"
      "  for (const auto& [k, v] : m) { total ^= v; }\n"
      "  return total;\n"
      "}\n";
  EXPECT_TRUE(analyze_one("src/trace/a.cc", summing).empty());
}

TEST(AnalysisRules, FlatMapIteratorInvalidation) {
  const std::string bad =
      "#include \"util/flat_map.h\"\n"
      "unsigned f(util::FlatMap<unsigned, unsigned>& m) {\n"
      "  auto it = m.find(1);\n"
      "  m.insert({2, 2});\n"
      "  return it->second;\n"
      "}\n";
  const auto diags = analyze_one("src/core/a.cc", bad);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "flatmap-ref-after-mutate");
  EXPECT_EQ(diags[0].line, 5u);
}

TEST(AnalysisRules, FlatMapOwnCallResultIsSafe) {
  const std::string good =
      "#include \"util/flat_map.h\"\n"
      "unsigned f(util::FlatMap<unsigned, unsigned>& m) {\n"
      "  auto [it, inserted] = m.try_emplace(1, 0u);\n"
      "  return it->second;\n"
      "}\n";
  EXPECT_TRUE(analyze_one("src/core/a.cc", good).empty());
}

TEST(AnalysisRules, FlatMapDistinctReceiversDoNotCrossInvalidate) {
  const std::string two_maps =
      "#include \"util/flat_map.h\"\n"
      "unsigned f(util::FlatMap<unsigned, unsigned>& left,\n"
      "           util::FlatMap<unsigned, unsigned>& right) {\n"
      "  auto it = left.find(1);\n"
      "  right.insert({2, 2});\n"
      "  return it->second;\n"
      "}\n";
  EXPECT_TRUE(analyze_one("src/core/a.cc", two_maps).empty());
}

TEST(AnalysisRules, FlatMapMutationInsideRangeFor) {
  const std::string bad =
      "#include \"util/flat_map.h\"\n"
      "void f(util::FlatMap<unsigned, unsigned>& m) {\n"
      "  for (const auto& [k, v] : m) {\n"
      "    if (v == 0) { m.erase(k); }\n"
      "  }\n"
      "}\n";
  const auto diags = analyze_one("src/core/a.cc", bad);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "flatmap-ref-after-mutate");
  EXPECT_EQ(diags[0].line, 4u);
}

TEST(AnalysisRules, ContractRequiredOnlyForPublicHotFunctions) {
  const std::string missing =
      "#pragma once\n"
      "void seek(std::size_t offset) { use(offset); }\n";
  EXPECT_EQ(rules_fired(analyze_one("src/volume/a.h", missing)),
            (std::vector<std::string>{"contract-missing-expect"}));
  // Cold module: no contract requirement.
  EXPECT_TRUE(analyze_one("src/http/a.h", missing).empty());
  const std::string checked =
      "#pragma once\n"
      "void seek(std::size_t offset) {\n"
      "  PW_EXPECT_BOUNDS(offset, limit());\n"
      "  use(offset);\n"
      "}\n";
  EXPECT_TRUE(analyze_one("src/volume/a.h", checked).empty());
  const std::string non_index =
      "#pragma once\n"
      "void scale(double factor) { use(factor); }\n";
  EXPECT_TRUE(analyze_one("src/volume/a.h", non_index).empty());
}

TEST(AnalysisRules, PragmaOnceRequiredInHeaders) {
  EXPECT_EQ(rules_fired(analyze_one("src/core/a.h", "struct A {};\n")),
            (std::vector<std::string>{"hdr-pragma-once"}));
  EXPECT_TRUE(
      analyze_one("src/core/a.h", "#pragma once\nstruct A {};\n").empty());
  // A leading comment is fine; tokens start at the pragma.
  EXPECT_TRUE(analyze_one("src/core/a.h",
                          "// banner\n#pragma once\nstruct A {};\n")
                  .empty());
  // .cc files have no pragma requirement.
  EXPECT_TRUE(analyze_one("src/core/a.cc", "struct A {};\n").empty());
}

TEST(AnalysisRules, UnusedProjectIncludeUsesTransitiveSymbols) {
  Project project;
  project.add_file("src/util/base.h", "#pragma once\nstruct Base {};\n");
  project.add_file("src/util/wrap.h",
                   "#pragma once\n#include \"util/base.h\"\n"
                   "struct Wrap { Base base; };\n");
  // Uses Base only — provided transitively through wrap.h, so the
  // include is counted as used.
  project.add_file("src/core/user.cc",
                   "#include \"util/wrap.h\"\nBase g_base;\n");
  // Never references anything from wrap.h's tree.
  project.add_file("src/core/dead.cc",
                   "#include \"util/wrap.h\"\nint g_x = 0;\n");
  std::vector<std::string> fired;
  for (const auto& d : project.analyze()) {
    fired.push_back(d.file + ":" + d.rule);
  }
  EXPECT_EQ(fired,
            (std::vector<std::string>{"src/core/dead.cc:hdr-unused-include"}));
}

TEST(AnalysisRules, UnknownSystemHeadersAreNeverFlagged) {
  EXPECT_TRUE(analyze_one("src/core/a.cc",
                          "#include <sys/obscure_platform.h>\nint g_x = 0;\n")
                  .empty());
}

TEST(AnalysisRules, ConcurrencyHeadersKnowTheirSymbols) {
  // Each include is justified by a symbol the table must know about;
  // a gap would misreport the include as unused.
  EXPECT_TRUE(analyze_one(
                  "src/core/a.cc",
                  "#include <shared_mutex>\n"
                  "std::shared_mutex g_lock;\n"
                  "long f(long x) { std::shared_lock lock(g_lock);"
                  " return x; }\n")
                  .empty());
  EXPECT_TRUE(analyze_one(
                  "src/core/b.cc",
                  "#include <atomic>\n"
                  "void f(std::atomic<long>& a) {"
                  " a.fetch_add(1, std::memory_order_acq_rel); }\n")
                  .empty());
  EXPECT_TRUE(analyze_one(
                  "src/core/c.cc",
                  "#include <mutex>\n"
                  "void f(std::mutex& m) {"
                  " std::unique_lock<std::mutex> l(m, std::try_to_lock); }\n")
                  .empty());
  EXPECT_TRUE(analyze_one(
                  "src/core/d.cc",
                  "#include <span>\n"
                  "long f(std::span<const long> s) { return s[0]; }\n")
                  .empty());
}

TEST(AnalysisRules, GuardedMemberAccessOutsideLockIsFlagged) {
  const std::string bad =
      "#include <mutex>\n"
      "struct Counter {\n"
      "  std::mutex mutex;\n"
      "  long value PW_GUARDED_BY(mutex) = 0;\n"
      "  void add() {\n"
      "    std::lock_guard<std::mutex> lock(mutex);\n"
      "    value += 1;\n"
      "  }\n"
      "  long peek() const { return value; }\n"
      "};\n";
  const auto diags = analyze_one("src/util/counter.cc", bad);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "lock-guarded-state");
  EXPECT_EQ(diags[0].line, 9u);
}

TEST(AnalysisRules, GuardedMemberUnderRequiresOrGuardIsClean) {
  const std::string good =
      "#include <mutex>\n"
      "struct Counter {\n"
      "  std::mutex mutex;\n"
      "  long value PW_GUARDED_BY(mutex) = 0;\n"
      "  void add() {\n"
      "    std::scoped_lock lock(mutex);\n"
      "    value += 1;\n"
      "  }\n"
      "  void bump() PW_REQUIRES(mutex) { value += 1; }\n"
      "};\n";
  EXPECT_TRUE(analyze_one("src/util/counter.cc", good).empty());
}

TEST(AnalysisRules, GuardedMemberInConstructorIsExempt) {
  const std::string ctor =
      "#include <mutex>\n"
      "struct Counter {\n"
      "  Counter() { value = 1; }\n"
      "  ~Counter() { value = 0; }\n"
      "  std::mutex mutex;\n"
      "  long value PW_GUARDED_BY(mutex) = 0;\n"
      "};\n";
  EXPECT_TRUE(analyze_one("src/util/counter.cc", ctor).empty());
}

TEST(AnalysisRules, GuardedMemberHonorsReturnsLockFactory) {
  const std::string factory =
      "#include <mutex>\n"
      "struct Table {\n"
      "  struct Stripe {\n"
      "    std::mutex mutex;\n"
      "    long hits PW_GUARDED_BY(mutex) = 0;\n"
      "  };\n"
      "  static std::unique_lock<std::mutex> lock_stripe(Stripe& s)\n"
      "      PW_RETURNS_LOCK(s.mutex);\n"
      "  Stripe stripe;\n"
      "  void add() {\n"
      "    auto lock = lock_stripe(stripe);\n"
      "    stripe.hits += 1;\n"
      "  }\n"
      "  long bad() { return stripe.hits; }\n"
      "};\n";
  const auto diags = analyze_one("src/util/table.cc", factory);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "lock-guarded-state");
  EXPECT_EQ(diags[0].line, 14u);
}

TEST(AnalysisRules, GuardedStateRespectsUnlockAndDeferLock) {
  const std::string unlock_then_touch =
      "#include <mutex>\n"
      "struct Counter {\n"
      "  std::mutex mutex;\n"
      "  long value PW_GUARDED_BY(mutex) = 0;\n"
      "  void f() {\n"
      "    std::unique_lock<std::mutex> lock(mutex);\n"
      "    value += 1;\n"
      "    lock.unlock();\n"
      "    value += 1;\n"
      "  }\n"
      "};\n";
  const auto diags = analyze_one("src/util/counter.cc", unlock_then_touch);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "lock-guarded-state");
  EXPECT_EQ(diags[0].line, 9u);
  const std::string deferred =
      "#include <mutex>\n"
      "struct Counter {\n"
      "  std::mutex mutex;\n"
      "  long value PW_GUARDED_BY(mutex) = 0;\n"
      "  void f() {\n"
      "    std::unique_lock<std::mutex> lock(mutex, std::defer_lock);\n"
      "    lock.lock();\n"
      "    value += 1;\n"
      "  }\n"
      "};\n";
  EXPECT_TRUE(analyze_one("src/util/counter.cc", deferred).empty());
}

TEST(AnalysisRules, AtomicPlainMixFlagsLockedWritePlusBareRead) {
  const std::string mixed =
      "#include <mutex>\n"
      "struct Stats {\n"
      "  std::mutex mutex;\n"
      "  long guarded PW_GUARDED_BY(mutex) = 0;\n"
      "  long plain = 0;\n"
      "  void add() {\n"
      "    std::lock_guard<std::mutex> lock(mutex);\n"
      "    guarded += 1;\n"
      "    plain += 1;\n"
      "  }\n"
      "  long read() const { return plain; }\n"
      "};\n";
  const auto diags = analyze_one("src/util/stats.cc", mixed);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "atomic-plain-mix");
  EXPECT_EQ(diags[0].line, 11u);
}

TEST(AnalysisRules, AtomicPlainMixNeedsBothSidesOfTheMix) {
  // Only ever written under the lock: consistent, no mix.
  const std::string consistent =
      "#include <mutex>\n"
      "struct Stats {\n"
      "  std::mutex mutex;\n"
      "  long guarded PW_GUARDED_BY(mutex) = 0;\n"
      "  long plain = 0;\n"
      "  void add() {\n"
      "    std::lock_guard<std::mutex> lock(mutex);\n"
      "    guarded += 1;\n"
      "    plain += 1;\n"
      "  }\n"
      "};\n";
  EXPECT_TRUE(analyze_one("src/util/stats.cc", consistent).empty());
  // Class has no PW_GUARDED_BY member at all: not a concurrent class,
  // the rule stays out of the way.
  const std::string unannotated =
      "#include <mutex>\n"
      "struct Stats {\n"
      "  std::mutex mutex;\n"
      "  long plain = 0;\n"
      "  void add() {\n"
      "    std::lock_guard<std::mutex> lock(mutex);\n"
      "    plain += 1;\n"
      "  }\n"
      "  long read() const { return plain; }\n"
      "};\n";
  EXPECT_TRUE(analyze_one("src/util/stats.cc", unannotated).empty());
}

TEST(AnalysisRules, TraceWindowSpanUsedAfterNextWindow) {
  const std::string bad =
      "#include \"trace/stream.h\"\n"
      "unsigned long f(trace::TraceView& view) {\n"
      "  auto w = view.window(16);\n"
      "  auto w2 = view.window(16);\n"
      "  return w.size() + w2.size();\n"
      "}\n";
  const auto diags = analyze_one("src/trace/a.cc", bad);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "view-after-advance");
  EXPECT_EQ(diags[0].line, 5u);
  const std::string good =
      "#include \"trace/stream.h\"\n"
      "unsigned long f(trace::TraceView& view) {\n"
      "  unsigned long total = 0;\n"
      "  auto w = view.window(16);\n"
      "  total += w.size();\n"
      "  w = view.window(16);\n"
      "  total += w.size();\n"
      "  return total;\n"
      "}\n";
  EXPECT_TRUE(analyze_one("src/trace/a.cc", good).empty());
}

TEST(AnalysisRules, InternTableViewsStaleAfterIntern) {
  const std::string bad =
      "#include \"util/intern.h\"\n"
      "unsigned long f(util::InternTable& table) {\n"
      "  auto views = table.views();\n"
      "  table.intern(\"x\");\n"
      "  return views.size();\n"
      "}\n";
  const auto diags = analyze_one("src/core/a.cc", bad);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "view-after-advance");
  EXPECT_EQ(diags[0].line, 5u);
}

TEST(AnalysisRules, SerializerDriftFlaggedAtFirstDivergingOp) {
  const std::string bad =
      "#include \"persist/codec.h\"\n"
      "void serialize_point(ByteWriter& out, const Point& p) {\n"
      "  out.u32(p.x);\n"
      "  out.u64(p.y);\n"
      "}\n"
      "bool deserialize_point(ByteReader& in, Point& p) {\n"
      "  p.y = in.u64();\n"
      "  p.x = in.u32();\n"
      "  return in.ok();\n"
      "}\n";
  const auto diags = analyze_one("src/persist/point.cc", bad);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "persist-serializer-symmetry");
  EXPECT_EQ(diags[0].line, 7u);
}

TEST(AnalysisRules, SerializerLengthMismatchFlaggedOnReader) {
  const std::string bad =
      "#include \"persist/codec.h\"\n"
      "void serialize_point(ByteWriter& out, const Point& p) {\n"
      "  out.u32(p.x);\n"
      "  out.u64(p.y);\n"
      "}\n"
      "bool deserialize_point(ByteReader& in, Point& p) {\n"
      "  p.x = in.u32();\n"
      "  return in.ok();\n"
      "}\n";
  const auto diags = analyze_one("src/persist/point.cc", bad);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "persist-serializer-symmetry");
  EXPECT_EQ(diags[0].line, 6u);
}

TEST(AnalysisRules, SerializerMirroredPairsAndHelpersAreClean) {
  const std::string good =
      "#include \"persist/codec.h\"\n"
      "void serialize_name(ByteWriter& out, const Name& n) {\n"
      "  out.str(n.text);\n"
      "}\n"
      "bool deserialize_name(ByteReader& in, Name& n) {\n"
      "  n.text = in.str();\n"
      "  return in.ok();\n"
      "}\n"
      "void serialize_point(ByteWriter& out, const Point& p) {\n"
      "  out.u32(p.x);\n"
      "  serialize_name(out, p.name);\n"
      "}\n"
      "bool deserialize_point(ByteReader& in, Point& p) {\n"
      "  p.x = in.u32();\n"
      "  deserialize_name(in, p.name);\n"
      "  return in.ok();\n"
      "}\n";
  EXPECT_TRUE(analyze_one("src/persist/point.cc", good).empty());
  // The rule is scoped to src/persist/: the same drift elsewhere is not
  // a serializer pair.
  const std::string elsewhere =
      "void serialize_point(ByteWriter& out, const Point& p) {\n"
      "  out.u32(p.x);\n"
      "}\n"
      "bool deserialize_point(ByteReader& in, Point& p) {\n"
      "  p.x = in.u64();\n"
      "  return in.ok();\n"
      "}\n";
  EXPECT_TRUE(analyze_one("src/core/point.cc", elsewhere).empty());
}

// Differential check of the shared invalidation core against a direct
// reference oracle of the original flatmap rule's semantics: a binding
// taken from an accessor goes stale at the first subsequent mutation,
// and every later use of it is one diagnostic at the use line. Random
// straight-line programs, deterministic seed.
TEST(AnalysisRules, FlatMapRuleMatchesReferenceOracleOnRandomPrograms) {
  util::Rng rng(0x5eed0001u);
  for (int trial = 0; trial < 200; ++trial) {
    struct Binding {
      std::size_t line;
      bool used;
    };
    std::string body;
    std::vector<std::size_t> mutations;
    std::vector<Binding> bindings;
    std::vector<std::size_t> expected;
    std::size_t line = 3;  // body statements start after the signature
    const auto statements = 4 + rng.below(8);
    for (std::uint64_t s = 0; s < statements; ++s, ++line) {
      switch (rng.below(3)) {
        case 0:
          body += "  auto b" + std::to_string(bindings.size()) +
                  " = m.find(" + std::to_string(rng.below(9)) + ");\n";
          bindings.push_back({line, false});
          break;
        case 1:
          body += "  m.insert({" + std::to_string(rng.below(9)) + ", 1});\n";
          mutations.push_back(line);
          break;
        default: {
          std::vector<std::size_t> fresh;
          for (std::size_t b = 0; b < bindings.size(); ++b) {
            if (!bindings[b].used) fresh.push_back(b);
          }
          if (fresh.empty()) {
            body += "  touch();\n";
            break;
          }
          const auto pick = fresh[rng.below(fresh.size())];
          bindings[pick].used = true;
          body += "  use(b" + std::to_string(pick) + "->second);\n";
          for (const auto mutation : mutations) {
            if (mutation > bindings[pick].line) {
              expected.push_back(line);
              break;
            }
          }
          break;
        }
      }
    }
    const std::string text =
        "#include \"util/flat_map.h\"\n"
        "void f(util::FlatMap<unsigned, unsigned>& m) {\n" +
        body + "}\n";
    const auto diags = analyze_one("src/core/random.cc", text);
    std::vector<std::size_t> actual;
    for (const auto& d : diags) {
      ASSERT_EQ(d.rule, "flatmap-ref-after-mutate") << text;
      actual.push_back(d.line);
    }
    EXPECT_EQ(actual, expected) << "trial " << trial << "\n" << text;
  }
}

TEST(AnalysisRules, RuleCatalogCoversEveryEmittedRule) {
  const auto& catalog = rule_catalog();
  EXPECT_EQ(catalog.size(), 12u);
  for (const auto& rule : catalog) {
    EXPECT_FALSE(rule.id.empty());
    EXPECT_FALSE(rule.summary.empty());
  }
}

}  // namespace
}  // namespace piggyweb::analysis

// Fixture: dead includes (analyzed as tools/unused_include.cc). The
// <vector> include and the project header are never referenced; <string>
// is used and stays.
#include <string>
#include <vector>

#include "util/helper.h"

namespace piggyweb::tools {

std::string greeting() { return std::string("hello"); }

}  // namespace piggyweb::tools

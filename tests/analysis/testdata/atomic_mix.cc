// Fixture: atomic-plain-mix. Analyzed as src/util/atomic_mix.cc.
// The class is "concurrent" (it has a PW_GUARDED_BY member), and
// `pending_` is written under the mutex but also read bare — the mix
// the rule exists to catch. `hits_` is a std::atomic (type-exempt) and
// `settled_` is only ever touched under the lock, so neither fires.
#include <atomic>
#include <mutex>
#include <vector>

namespace piggyweb::util {

class WorkTracker {
 public:
  void submit(long item) {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(item);
    pending_ += 1;
    settled_ = false;
    hits_.fetch_add(1);
  }

  bool idle() const {
    return pending_ == 0;  // BAD: lock-free read of a locked-write field
  }

  bool settled() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return settled_;
  }

  long hit_count() const { return hits_.load(); }

 private:
  mutable std::mutex mutex_;
  std::vector<long> queue_ PW_GUARDED_BY(mutex_);
  long pending_ = 0;
  bool settled_ = true;
  std::atomic<long> hits_{0};
};

}  // namespace piggyweb::util

// Fixture: std::unordered_map in a hot module (analyzed as
// src/sim/det_unordered.cc) plus iteration feeding ordered output.
#include <unordered_map>
#include <vector>

namespace piggyweb::sim {

struct Tally {
  std::unordered_map<unsigned, unsigned> counts;  // finding: container
};

std::vector<unsigned> drain_in_hash_order(Tally& tally) {
  std::vector<unsigned> out;
  for (const auto& [key, count] : tally.counts) {  // finding: iteration
    out.push_back(count);
  }
  return out;
}

unsigned sum_is_order_independent(const Tally& tally) {
  unsigned total = 0;
  for (const auto& [key, count] : tally.counts) {  // no ordered sink: ok
    total ^= count ^ key;
  }
  return total;
}

}  // namespace piggyweb::sim

// Negative fixture (analyzed as src/core/clean.cc): hot-module code that
// follows every rule — FlatMap with re-lookup after mutation, contracts
// on index-like parameters, no wall-clock or unordered containers, and
// only includes it uses. Expected findings: none.
#include <cstddef>
#include <vector>

#include "util/expect.h"
#include "util/flat_map.h"

namespace piggyweb::core {

class CleanTable {
 public:
  unsigned value_at(std::size_t index) const {
    PW_EXPECT_BOUNDS(index, order_.size());
    return order_[index];
  }

  void bump(unsigned key) {
    auto [it, inserted] = counts_.try_emplace(key, 0u);
    ++it->second;
    if (inserted) order_.push_back(key);
  }

  unsigned count_of(unsigned key) const {
    const auto it = counts_.find(key);
    return it == counts_.end() ? 0u : it->second;
  }

 private:
  util::FlatMap<unsigned, unsigned> counts_;
  std::vector<unsigned> order_;  // deterministic insertion order
};

}  // namespace piggyweb::core

// Fixture: view-after-advance. Analyzed as src/trace/view_after_advance.cc.
// Streaming trace sources decode each window into one reused buffer, so
// the span returned by window()/read_batch() dies at the next call.
// InternTable::views() spans die when an intern() reallocates the table.
#include "trace/stream.h"
#include "util/intern.h"

namespace piggyweb::trace {

unsigned long stale_window(TraceView& view) {
  auto first = view.window(64);
  auto second = view.window(64);      // invalidates `first`
  return first.size() + second.size();  // BAD
}

unsigned long refetched_window(TraceView& view) {
  unsigned long total = 0;
  auto window = view.window(64);
  total += window.size();
  window = view.window(64);  // fine: rebound before reuse
  total += window.size();
  return total;
}

unsigned long stale_batch(StreamingTraceSource& source) {
  auto batch = source.read_batch(128);
  source.read_batch(128);  // invalidates `batch`
  return batch.size();     // BAD
}

unsigned long stale_intern_views(util::InternTable& table) {
  auto views = table.views();
  table.intern("resource");  // may reallocate the id->view table
  return views.size();       // BAD
}

unsigned long fresh_intern_views(util::InternTable& table) {
  table.intern("resource");
  auto views = table.views();  // fine: fetched after the insert
  return views.size();
}

}  // namespace piggyweb::trace

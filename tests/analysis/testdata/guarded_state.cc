// Fixture: lock-guarded-state. Analyzed as src/util/guarded_state.cc.
// One class with PW_GUARDED_BY members, exercised by clean accessors
// (RAII guards, PW_REQUIRES, a PW_RETURNS_LOCK factory, ctor/dtor) and
// two violations: a bare read and a use after an explicit unlock.
#include <mutex>
#include <vector>

namespace piggyweb::util {

class GuardedCounter {
 public:
  GuardedCounter() { value_ = 0; }   // ctor: exempt by design
  ~GuardedCounter() { value_ = 0; }  // dtor: exempt by design

  void add(long delta) {
    std::lock_guard<std::mutex> lock(mutex_);
    value_ += delta;
    history_.push_back(delta);
  }

  // Whole-body precondition: the caller holds mutex_.
  void add_locked(long delta) PW_REQUIRES(mutex_) { value_ += delta; }

  long snapshot() const {
    std::scoped_lock lock(mutex_);
    return value_;
  }

  long racy_peek() const {
    return value_;  // BAD: no lock held
  }

  void drain() {
    std::unique_lock<std::mutex> lock(mutex_);
    history_.clear();
    lock.unlock();
    history_.shrink_to_fit();  // BAD: guard released above
  }

  static std::unique_lock<std::mutex> take(GuardedCounter& counter)
      PW_RETURNS_LOCK(counter.mutex_);

  static long drain_via_factory(GuardedCounter& counter) {
    auto lock = take(counter);
    counter.history_.clear();  // fine: factory returns the lock
    return counter.value_;
  }

 private:
  mutable std::mutex mutex_;
  long value_ PW_GUARDED_BY(mutex_) = 0;
  std::vector<long> history_ PW_GUARDED_BY(mutex_);
};

std::unique_lock<std::mutex> GuardedCounter::take(GuardedCounter& counter)
    PW_RETURNS_LOCK(counter.mutex_) {
  return std::unique_lock<std::mutex>(counter.mutex_);
}

}  // namespace piggyweb::util

// Fixture: public hot-module functions with index-like parameters
// (analyzed as src/proxy/contract_missing.h). Public entry points that
// take a raw position must bounds-check it with PW_EXPECT /
// PW_EXPECT_BOUNDS; private helpers and checked functions are fine.
#pragma once

#include <cstddef>
#include <vector>

#include "util/expect.h"

namespace piggyweb::proxy {

class ShardTable {
 public:
  // finding: index-like parameter, no contract in the body.
  unsigned value_at(std::size_t index) const {
    return shards_[index];
  }

  // finding: suffix match (slot_index), no contract.
  void set(std::size_t slot_index, unsigned value) {
    shards_[slot_index] = value;
  }

  // ok: PW_EXPECT_BOUNDS guards the access.
  unsigned checked_value_at(std::size_t index) const {
    PW_EXPECT_BOUNDS(index, shards_.size());
    return shards_[index];
  }

  // ok: not an index-like name.
  void append(unsigned value) { shards_.push_back(value); }

 private:
  // ok: private members are not the public surface.
  unsigned unchecked_private(std::size_t index) const {
    return shards_[index];
  }

  std::vector<unsigned> shards_;
};

// finding: free function in a hot-module header, no contract.
inline unsigned pick(const std::vector<unsigned>& values, std::size_t pos) {
  return values[pos];
}

}  // namespace piggyweb::proxy

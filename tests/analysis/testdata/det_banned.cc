// Fixture: nondeterministic APIs in a hot module (analyzed as
// src/core/det_banned.cc). Every call below is a det-banned-call.
#include <cstdlib>

namespace piggyweb::core {

int noisy_seed() {
  std::srand(42);                   // finding: srand
  return std::rand();               // finding: rand
}

long wall_clock_now() {
  return time(nullptr);             // finding: time
}

unsigned hardware_entropy() {
  std::random_device device;        // finding: random_device
  return device();
}

long long chrono_wall_clock() {
  return std::chrono::system_clock::now().time_since_epoch().count();
}                                   // finding: system_clock

// Not findings: member access named like banned calls.
struct Stopwatch {
  long time_ = 0;
  long time() const { return time_; }
};

long member_access_ok(const Stopwatch& w) {
  return w.time();  // method on an object, not ::time()
}

}  // namespace piggyweb::core

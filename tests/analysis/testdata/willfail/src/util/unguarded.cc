// Injected violation for the WILL_FAIL lint-lane control: `count_` is
// declared PW_GUARDED_BY(mutex_) but peeked without the lock. If the
// lint lane ever stops failing on this tree, the concurrency gate has
// silently gone dark.
#include <mutex>

namespace piggyweb::util {

class Injected {
 public:
  void add(long delta) {
    std::lock_guard<std::mutex> lock(mutex_);
    count_ += delta;
  }

  long peek() const {
    return count_;  // unguarded read: the gate must catch this
  }

 private:
  mutable std::mutex mutex_;
  long count_ PW_GUARDED_BY(mutex_) = 0;
};

}  // namespace piggyweb::util

// Fixture: persist-serializer-symmetry. Analyzed as
// src/persist/serializer_asym.cc. Three pairs: `header` drifts (writer
// emits u32 magic then u64 count; reader consumes them swapped),
// `record` loses an op (reader skips the checksum), and `blob` mirrors
// correctly through a shared helper call, proving nesting unifies.
#include "persist/codec.h"

namespace piggyweb::persist {

void serialize_header(ByteWriter& out, const Header& header) {
  out.u32(header.magic);
  out.u64(header.count);
}

bool deserialize_header(ByteReader& in, Header& header) {
  header.count = in.u64();  // BAD: writer emitted u32 first
  header.magic = in.u32();
  return in.ok();
}

void serialize_record(ByteWriter& out, const Record& record) {
  out.str(record.name);
  out.u64(record.bytes);
  out.u32(record.checksum);
}

bool deserialize_record(ByteReader& in, Record& record) {  // BAD: 2 != 3
  record.name = in.str();
  record.bytes = in.u64();
  return in.ok();
}

void serialize_span(ByteWriter& out, const Span& span) {
  out.u64(span.offset);
  out.u64(span.length);
}

bool deserialize_span(ByteReader& in, Span& span) {
  span.offset = in.u64();
  span.length = in.u64();
  return in.ok();
}

void serialize_blob(ByteWriter& out, const Blob& blob) {
  out.u8(blob.kind);
  serialize_span(out, blob.span);
}

bool deserialize_blob(ByteReader& in, Blob& blob) {
  blob.kind = in.u8();
  deserialize_span(in, blob.span);
  return in.ok();
}

}  // namespace piggyweb::persist

// Fixture: raw memory-mapping syscalls outside util::MmapFile (analyzed
// as src/trace/os_call.cc). Each raw call is an os-call-confined finding.
#include <sys/mman.h>

namespace piggyweb::trace {

void* map_directly(int fd, unsigned long length) {
  void* region = mmap(nullptr, length, 1, 2, fd, 0);  // finding: mmap
  madvise(region, length, 2);                         // finding: madvise
  return region;
}

void unmap_directly(void* region, unsigned long length) {
  munmap(region, length);                             // finding: munmap
}

// Not findings: a member named like the syscall, and declarations.
struct Wrapper {
  void* mmap(int fd);
};

void* through_wrapper(Wrapper& w, int fd) {
  return w.mmap(fd);  // method on an object, not ::mmap()
}

}  // namespace piggyweb::trace

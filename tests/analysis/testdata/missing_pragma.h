// Fixture: header without '#pragma once' (analyzed as
// src/core/missing_pragma.h) — hdr-pragma-once fires at line 1.
#ifndef PIGGYWEB_TESTS_ANALYSIS_MISSING_PRAGMA_H_
#define PIGGYWEB_TESTS_ANALYSIS_MISSING_PRAGMA_H_

namespace piggyweb::core {

struct Empty {};

}  // namespace piggyweb::core

#endif  // PIGGYWEB_TESTS_ANALYSIS_MISSING_PRAGMA_H_

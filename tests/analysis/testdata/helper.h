// Fixture dependency: a well-formed project header (analyzed as
// src/util/helper.h) that provides `Helper` — included but unused by
// unused_include.cc.
#pragma once

namespace piggyweb::util {

struct Helper {
  int field = 0;
};

}  // namespace piggyweb::util

// Fixture: FlatMap references/iterators held across mutations (analyzed
// as src/volume/flatmap_unsafe.cc). FlatMap invalidates everything on
// any mutation (rehash or backward-shift), so each pattern below is a
// flatmap-ref-after-mutate.
#include "util/flat_map.h"

namespace piggyweb::volume {

unsigned iterator_after_insert(util::FlatMap<unsigned, unsigned>& table) {
  auto it = table.find(7);
  table.insert({9, 9});
  return it->second;  // finding: `it` died at the insert
}

unsigned reference_after_erase(util::FlatMap<unsigned, unsigned>& table) {
  auto& slot = table.at(7);
  table.erase(3u);
  return slot;  // finding: `slot` died at the erase
}

void mutate_inside_range_for(util::FlatMap<unsigned, unsigned>& table) {
  for (const auto& [key, value] : table) {
    if (value == 0) {
      table.erase(key);  // finding: mutation under live loop iterators
    }
  }
}

unsigned safe_patterns(util::FlatMap<unsigned, unsigned>& table) {
  // The iterator returned by the mutating call itself is valid.
  auto [it, inserted] = table.try_emplace(5, 1);
  unsigned total = it->second;
  // A copy survives mutation.
  const auto value = table.at(5);
  table.insert({6, 6});
  total += value;
  // Re-looking up after the mutation is the sanctioned pattern.
  const auto again = table.find(5);
  total += again->second;
  return total;
}

}  // namespace piggyweb::volume

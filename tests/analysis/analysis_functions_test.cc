#include "analysis/functions.h"

#include <string>

#include <gtest/gtest.h>

#include "analysis/lexer.h"

namespace piggyweb::analysis {
namespace {

SourceFile make_file(std::string text) {
  SourceFile file;
  file.path = "src/core/fixture.cc";
  file.text = std::move(text);
  file.tokens = lex(file.text);
  return file;
}

TEST(AnalysisFunctions, FreeFunctionWithParams) {
  const auto file = make_file(
      "namespace piggyweb {\n"
      "int add(int lhs, int rhs) { return lhs + rhs; }\n"
      "}\n");
  const auto fns = scan_functions(file);
  ASSERT_EQ(fns.size(), 1u);
  EXPECT_EQ(fns[0].name, "add");
  EXPECT_EQ(fns[0].line, 2u);
  EXPECT_FALSE(fns[0].at_class_scope);
  ASSERT_EQ(fns[0].params.size(), 2u);
  EXPECT_EQ(fns[0].params[0].name, "lhs");
  EXPECT_EQ(fns[0].params[1].name, "rhs");
}

TEST(AnalysisFunctions, DeclarationsProduceNoEntry) {
  const auto file = make_file("int declared_only(int value);\n");
  EXPECT_TRUE(scan_functions(file).empty());
}

TEST(AnalysisFunctions, CallsAreNotDefinitions) {
  const auto file = make_file(
      "void caller() {\n"
      "  helper(1);\n"
      "  other.method(2);\n"
      "}\n");
  const auto fns = scan_functions(file);
  ASSERT_EQ(fns.size(), 1u);
  EXPECT_EQ(fns[0].name, "caller");
}

TEST(AnalysisFunctions, AccessSpecifiersTracked) {
  const auto file = make_file(
      "class Widget {\n"
      " public:\n"
      "  void visible(int index) { use(index); }\n"
      " private:\n"
      "  void hidden(int index) { use(index); }\n"
      "};\n"
      "struct Pod {\n"
      "  void open(int index) { use(index); }\n"
      "};\n");
  const auto fns = scan_functions(file);
  ASSERT_EQ(fns.size(), 3u);
  EXPECT_EQ(fns[0].name, "visible");
  EXPECT_TRUE(fns[0].is_public);
  EXPECT_TRUE(fns[0].at_class_scope);
  EXPECT_EQ(fns[1].name, "hidden");
  EXPECT_FALSE(fns[1].is_public);
  EXPECT_EQ(fns[2].name, "open");  // struct defaults to public
  EXPECT_TRUE(fns[2].is_public);
}

TEST(AnalysisFunctions, OutOfLineDefinitionAndCtorInitList) {
  const auto file = make_file(
      "Widget::Widget(int capacity)\n"
      "    : table_(capacity), label_{\"w\"} {\n"
      "  init();\n"
      "}\n"
      "int Widget::lookup(std::size_t slot) const noexcept {\n"
      "  return table_[slot];\n"
      "}\n");
  const auto fns = scan_functions(file);
  ASSERT_EQ(fns.size(), 2u);
  EXPECT_EQ(fns[0].name, "Widget");
  ASSERT_EQ(fns[0].params.size(), 1u);
  EXPECT_EQ(fns[0].params[0].name, "capacity");
  EXPECT_EQ(fns[1].name, "lookup");
  ASSERT_EQ(fns[1].params.size(), 1u);
  EXPECT_EQ(fns[1].params[0].name, "slot");
}

TEST(AnalysisFunctions, TrailingReturnTypeAndTemplates) {
  const auto file = make_file(
      "template <typename T>\n"
      "auto first_of(const std::vector<T>& items, std::size_t pos)\n"
      "    -> const T& {\n"
      "  return items[pos];\n"
      "}\n");
  const auto fns = scan_functions(file);
  ASSERT_EQ(fns.size(), 1u);
  EXPECT_EQ(fns[0].name, "first_of");
  ASSERT_EQ(fns[0].params.size(), 2u);
  EXPECT_EQ(fns[0].params[0].name, "items");
  EXPECT_EQ(fns[0].params[1].name, "pos");
}

TEST(AnalysisFunctions, UnnamedAndDefaultedParams) {
  const auto file = make_file(
      "void mixed(int, std::size_t count = compute(4), double rate) {\n"
      "  use(count, rate);\n"
      "}\n");
  const auto fns = scan_functions(file);
  ASSERT_EQ(fns.size(), 1u);
  ASSERT_EQ(fns[0].params.size(), 3u);
  EXPECT_EQ(fns[0].params[0].name, "");  // unnamed: lone type token
  EXPECT_EQ(fns[0].params[1].name, "count");  // default arg stripped
  EXPECT_EQ(fns[0].params[2].name, "rate");
}

TEST(AnalysisFunctions, LambdasStayInsideTheEnclosingBody) {
  const auto file = make_file(
      "void outer() {\n"
      "  auto f = [](int inner_pos) { return inner_pos; };\n"
      "  f(1);\n"
      "}\n");
  const auto fns = scan_functions(file);
  ASSERT_EQ(fns.size(), 1u);
  EXPECT_EQ(fns[0].name, "outer");
}

TEST(AnalysisFunctions, BodyRangeCoversTheBody) {
  const auto file = make_file("int f() { return 42; }\n");
  const auto fns = scan_functions(file);
  ASSERT_EQ(fns.size(), 1u);
  bool saw_return = false;
  for (std::size_t i = fns[0].body_begin; i < fns[0].body_end; ++i) {
    if (file.tokens[i].is_ident("return")) saw_return = true;
    EXPECT_FALSE(file.tokens[i].is_punct("{"));
  }
  EXPECT_TRUE(saw_return);
}

TEST(AnalysisFunctions, ClassPathTrackedOnFunctions) {
  const auto file = make_file(
      "class Outer {\n"
      "  struct Inner {\n"
      "    void poke() { touch(); }\n"
      "  };\n"
      "  void prod() { touch(); }\n"
      "};\n");
  const auto fns = scan_functions(file);
  ASSERT_EQ(fns.size(), 2u);
  EXPECT_EQ(fns[0].classes,
            (std::vector<std::string_view>{"Outer", "Inner"}));
  EXPECT_EQ(fns[1].classes, (std::vector<std::string_view>{"Outer"}));
}

TEST(AnalysisFunctions, OutOfLineQualifiersJoinTheClassPath) {
  const auto file = make_file(
      "void Outer::Inner::poke() { touch(); }\n");
  const auto fns = scan_functions(file);
  ASSERT_EQ(fns.size(), 1u);
  EXPECT_EQ(fns[0].name, "poke");
  EXPECT_EQ(fns[0].classes,
            (std::vector<std::string_view>{"Outer", "Inner"}));
}

TEST(AnalysisFunctions, GuardedByAnnotationsCollected) {
  const auto file = make_file(
      "struct Counter {\n"
      "  std::mutex mutex;\n"
      "  long value PW_GUARDED_BY(mutex) = 0;\n"
      "  std::vector<int> items PW_GUARDED_BY(mutex);\n"
      "};\n");
  const auto scan = scan_file(file);
  ASSERT_EQ(scan.guarded_members.size(), 2u);
  EXPECT_EQ(scan.guarded_members[0].member, "value");
  EXPECT_EQ(scan.guarded_members[0].mutex, "mutex");
  EXPECT_EQ(scan.guarded_members[0].classes,
            (std::vector<std::string_view>{"Counter"}));
  EXPECT_EQ(scan.guarded_members[0].line, 3u);
  EXPECT_EQ(scan.guarded_members[1].member, "items");
}

TEST(AnalysisFunctions, FunctionAnnotationsInDeclaratorSuffix) {
  const auto file = make_file(
      "struct Counter {\n"
      "  std::mutex mutex;\n"
      "  void bump() PW_REQUIRES(mutex) { touch(); }\n"
      "  static std::unique_lock<std::mutex> take(Counter& c)\n"
      "      PW_RETURNS_LOCK(c.mutex);\n"
      "};\n");
  const auto scan = scan_file(file);
  ASSERT_EQ(scan.functions.size(), 1u);
  ASSERT_EQ(scan.functions[0].annotations.size(), 1u);
  EXPECT_EQ(scan.functions[0].annotations[0].macro, "PW_REQUIRES");
  EXPECT_EQ(scan.functions[0].annotations[0].args, "mutex");
  // The body-less factory declaration still surfaces its annotation.
  ASSERT_EQ(scan.annotated_decls.size(), 1u);
  EXPECT_EQ(scan.annotated_decls[0].name, "take");
  ASSERT_EQ(scan.annotated_decls[0].annotations.size(), 1u);
  EXPECT_EQ(scan.annotated_decls[0].annotations[0].macro,
            "PW_RETURNS_LOCK");
  EXPECT_EQ(scan.annotated_decls[0].annotations[0].args, "c.mutex");
}

TEST(AnalysisFunctions, MemberDeclsSeparateExemptTypes) {
  const auto file = make_file(
      "struct Stats {\n"
      "  std::mutex mutex;\n"
      "  std::atomic<long> hits;\n"
      "  long plain = 0;\n"
      "  static constexpr int kMax = 4;\n"
      "};\n");
  const auto scan = scan_file(file);
  ASSERT_EQ(scan.members.size(), 4u);
  EXPECT_EQ(scan.members[0].name, "mutex");
  EXPECT_TRUE(scan.members[0].type_exempt);
  EXPECT_EQ(scan.members[1].name, "hits");
  EXPECT_TRUE(scan.members[1].type_exempt);
  EXPECT_EQ(scan.members[2].name, "plain");
  EXPECT_FALSE(scan.members[2].type_exempt);
  EXPECT_EQ(scan.members[3].name, "kMax");
  EXPECT_TRUE(scan.members[3].type_exempt);
}

}  // namespace
}  // namespace piggyweb::analysis

#include "analysis/lexer.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace piggyweb::analysis {
namespace {

std::vector<std::string> texts(const std::vector<Token>& toks) {
  std::vector<std::string> out;
  out.reserve(toks.size());
  for (const auto& t : toks) out.emplace_back(t.text);
  return out;
}

TEST(AnalysisLexer, CommentsNeverBecomeTokens) {
  const auto toks = lex("a // line comment with ident rand()\n"
                        "b /* block\n comment time() */ c\n");
  EXPECT_EQ(texts(toks), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(toks[0].line, 1u);
  EXPECT_EQ(toks[1].line, 2u);
  EXPECT_EQ(toks[2].line, 3u);
}

TEST(AnalysisLexer, StringContentsAreOpaque) {
  const auto toks = lex("call(\"rand() unordered_map // not a comment\")");
  ASSERT_EQ(toks.size(), 4u);
  EXPECT_EQ(toks[2].kind, TokKind::kString);
  // Nothing inside the literal leaks out as an identifier.
  for (const auto& t : toks) {
    if (t.kind == TokKind::kIdent) {
      EXPECT_EQ(t.text, "call");
    }
  }
}

TEST(AnalysisLexer, RawStringsWithCustomDelimiter) {
  const auto toks = lex("auto s = R\"xx(quote \" and )\" inside)xx\";");
  ASSERT_EQ(toks.size(), 5u);
  EXPECT_EQ(toks[3].kind, TokKind::kString);
  EXPECT_EQ(toks[3].text, "R\"xx(quote \" and )\" inside)xx\"");
}

TEST(AnalysisLexer, EncodingPrefixesStayOneToken) {
  const auto toks = lex("u8\"a\" L\"b\" u\"c\" U\"d\" LR\"(e)\"");
  ASSERT_EQ(toks.size(), 5u);
  for (const auto& t : toks) EXPECT_EQ(t.kind, TokKind::kString);
}

TEST(AnalysisLexer, CharLiterals) {
  const auto toks = lex("char c = '\\''; char d = 'x';");
  bool saw_escaped = false;
  for (const auto& t : toks) {
    if (t.kind == TokKind::kChar && t.text == "'\\''") saw_escaped = true;
  }
  EXPECT_TRUE(saw_escaped);
}

TEST(AnalysisLexer, CombinedPunctuators) {
  const auto toks = lex("a::b->c");
  EXPECT_EQ(texts(toks), (std::vector<std::string>{"a", "::", "b", "->", "c"}));
  EXPECT_TRUE(toks[1].is_punct("::"));
  EXPECT_TRUE(toks[3].is_punct("->"));
}

TEST(AnalysisLexer, IncludeSpecIsOneStringToken) {
  const auto toks = lex("#include <vector>\n#include \"util/rng.h\"\n");
  ASSERT_EQ(toks.size(), 6u);
  EXPECT_EQ(toks[2].kind, TokKind::kString);
  EXPECT_EQ(toks[2].text, "<vector>");
  EXPECT_EQ(toks[5].kind, TokKind::kString);
  EXPECT_EQ(toks[5].text, "\"util/rng.h\"");
  // The '<' of an include spec is not a comparison: no stray puncts.
  for (const auto& t : toks) EXPECT_FALSE(t.is_punct("<"));
}

TEST(AnalysisLexer, BackslashNewlineSplice) {
  const auto toks = lex("#define LONG_MACRO(x) \\\n  do_thing(x)\n");
  std::vector<std::string> idents;
  for (const auto& t : toks) {
    if (t.kind == TokKind::kIdent) idents.emplace_back(t.text);
  }
  EXPECT_EQ(idents, (std::vector<std::string>{"define", "LONG_MACRO", "x",
                                              "do_thing", "x"}));
}

TEST(AnalysisLexer, NumbersWithSeparatorsAndExponents) {
  const auto toks = lex("1'000'000 0x1.8p3 1e-9 42u");
  ASSERT_EQ(toks.size(), 4u);
  for (const auto& t : toks) EXPECT_EQ(t.kind, TokKind::kNumber);
}

TEST(AnalysisLexer, KeywordClassifier) {
  EXPECT_TRUE(is_cpp_keyword("for"));
  EXPECT_TRUE(is_cpp_keyword("constexpr"));
  EXPECT_FALSE(is_cpp_keyword("FlatMap"));
  EXPECT_FALSE(is_cpp_keyword("unordered_map"));
}

// Randomized round-trip: emit a random token sequence with random
// whitespace/comments between tokens, lex it back, and require the exact
// token texts in order. Seeded Rng keeps the suite deterministic.
TEST(AnalysisLexer, RandomizedRoundTrip) {
  const std::vector<std::string> pool = {
      "ident",     "x9",    "_under", "FlatMap", "42",    "3.25",
      "0xff",      "\"s\"", "'c'",    "::",      "->",    "(",
      ")",         "{",     "}",      "+",       "=",     ";",
      "<",         ">",     ",",      "R\"(raw content)\"",
  };
  util::Rng rng(0xa11ce5ed);
  for (int iteration = 0; iteration < 200; ++iteration) {
    std::string src;
    std::vector<std::string> expected;
    const std::size_t count = 1 + rng.below(40);
    for (std::size_t i = 0; i < count; ++i) {
      const auto& piece = pool[rng.below(pool.size())];
      // A token boundary: whitespace, newline, or a comment.
      switch (rng.below(4)) {
        case 0: src += ' '; break;
        case 1: src += '\n'; break;
        case 2: src += " /* gap */ "; break;
        default: src += "\t"; break;
      }
      src += piece;
      expected.push_back(piece);
    }
    src += '\n';
    const auto toks = lex(src);
    ASSERT_EQ(texts(toks), expected) << "source was:\n" << src;
  }
}

// Line numbers stay correct through multi-line constructs.
TEST(AnalysisLexer, LineNumbersAcrossMultilineTokens) {
  const auto toks = lex("a\nR\"(line\nbreaks\ninside)\"\nb\n");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0].line, 1u);
  EXPECT_EQ(toks[1].line, 2u);
  EXPECT_EQ(toks[2].line, 5u);
}

}  // namespace
}  // namespace piggyweb::analysis

// Golden-output test over the disk fixtures in testdata/, plus
// engine-level coverage: suppression parsing/partitioning and the disk
// walker's skip rules. The fixtures are stored flat; each is analyzed
// under a mapped repo-relative path so module policy applies.
#include "analysis/engine.h"

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#ifndef PIGGYWEB_ANALYSIS_TESTDATA
#error "PIGGYWEB_ANALYSIS_TESTDATA must point at tests/analysis/testdata"
#endif

namespace piggyweb::analysis {
namespace {

namespace fs = std::filesystem;

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "cannot open " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

fs::path testdata_dir() { return fs::path(PIGGYWEB_ANALYSIS_TESTDATA); }

// Fixture file -> the repo-relative path it is analyzed under. The
// mapping places each fixture in a module where its rule family is
// active (clean.cc doubles as the all-rules negative case).
struct FixtureMap {
  const char* fixture;
  const char* analyzed_path;
};
constexpr FixtureMap kFixtures[] = {
    {"atomic_mix.cc", "src/util/atomic_mix.cc"},
    {"clean.cc", "src/core/clean.cc"},
    {"contract_missing.h", "src/proxy/contract_missing.h"},
    {"det_banned.cc", "src/core/det_banned.cc"},
    {"det_unordered.cc", "src/sim/det_unordered.cc"},
    {"flatmap_unsafe.cc", "src/volume/flatmap_unsafe.cc"},
    {"guarded_state.cc", "src/util/guarded_state.cc"},
    {"helper.h", "src/util/helper.h"},
    {"missing_pragma.h", "src/core/missing_pragma.h"},
    {"os_call.cc", "src/trace/os_call.cc"},
    {"serializer_asym.cc", "src/persist/serializer_asym.cc"},
    {"unused_include.cc", "tools/unused_include.cc"},
    {"view_after_advance.cc", "src/trace/view_after_advance.cc"},
};

TEST(AnalysisGolden, FixtureDiagnosticsMatchGoldenFile) {
  Project project;
  for (const auto& [fixture, analyzed_path] : kFixtures) {
    project.add_file(analyzed_path, read_file(testdata_dir() / fixture));
  }
  std::string actual;
  for (const auto& d : project.analyze()) {
    actual += format_diagnostic(d);
    actual += '\n';
  }
  // Refresh the golden file after an intentional rule change with:
  //   PIGGYWEB_REGEN_GOLDEN=1 ./tests_analysis
  // then review the diff by hand before committing it.
  if (::getenv("PIGGYWEB_REGEN_GOLDEN") != nullptr) {
    std::ofstream(testdata_dir() / "golden.txt", std::ios::binary) << actual;
    GTEST_SKIP() << "regenerated golden.txt";
  }
  const std::string expected = read_file(testdata_dir() / "golden.txt");
  EXPECT_EQ(actual, expected);
}

TEST(AnalysisGolden, CleanFixtureAloneProducesNothing) {
  Project project;
  project.add_file("src/core/clean.cc", read_file(testdata_dir() / "clean.cc"));
  EXPECT_TRUE(project.analyze().empty());
}

TEST(AnalysisSuppressions, ParseAcceptsFileAndLineForms) {
  std::vector<std::string> errors;
  const auto entries = parse_suppressions(
      "# legacy findings\n"
      "\n"
      "det-banned-call src/http/clock.cc\n"
      "hdr-unused-include src/trace/record.h:12\n",
      errors);
  EXPECT_TRUE(errors.empty());
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0], (Suppression{"det-banned-call", "src/http/clock.cc", 0}));
  EXPECT_EQ(entries[1],
            (Suppression{"hdr-unused-include", "src/trace/record.h", 12}));
}

TEST(AnalysisSuppressions, MalformedLinesAreReportedNotDropped) {
  std::vector<std::string> errors;
  const auto entries = parse_suppressions("just-one-field\n", errors);
  EXPECT_TRUE(entries.empty());
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].find("line 1"), std::string::npos);
}

// A throwaway on-disk tree for the walker/suppression tests.
class TempTree {
 public:
  TempTree() {
    root_ = fs::path(::testing::TempDir()) /
            ("piggyweb_lint_" + std::to_string(::getpid()));
    fs::remove_all(root_);
  }
  ~TempTree() { fs::remove_all(root_); }

  void write(const std::string& rel, const std::string& text) {
    const fs::path full = root_ / rel;
    fs::create_directories(full.parent_path());
    std::ofstream(full, std::ios::binary) << text;
  }

  std::string root() const { return root_.string(); }

 private:
  fs::path root_;
};

TEST(AnalysisEngine, SuppressionMovesFindingAside) {
  TempTree tree;
  tree.write("src/core/bad.cc", "int f() { return rand(); }\n");

  AnalyzeOptions options;
  options.root = tree.root();
  options.subdirs = {"src"};

  // Unsuppressed: one live finding.
  auto result = analyze_tree(options);
  EXPECT_EQ(result.files_scanned, 1u);
  ASSERT_EQ(result.diagnostics.size(), 1u);
  EXPECT_EQ(result.diagnostics[0].rule, "det-banned-call");
  EXPECT_TRUE(result.suppressed.empty());

  // Suppressed: the finding is partitioned aside, not deleted.
  options.suppressions = {{"det-banned-call", "src/core/bad.cc", 0}};
  result = analyze_tree(options);
  EXPECT_TRUE(result.diagnostics.empty());
  ASSERT_EQ(result.suppressed.size(), 1u);
  EXPECT_EQ(result.suppressed[0].rule, "det-banned-call");

  // A suppression pinned to the wrong line does not match.
  options.suppressions = {{"det-banned-call", "src/core/bad.cc", 999}};
  result = analyze_tree(options);
  EXPECT_EQ(result.diagnostics.size(), 1u);
  EXPECT_TRUE(result.suppressed.empty());
}

TEST(AnalysisEngine, WalkerSkipsTestdataAndBuildDirectories) {
  TempTree tree;
  tree.write("src/core/ok.cc", "int g_x = 0;\n");
  tree.write("src/core/testdata/fixture.cc", "int f() { return rand(); }\n");
  tree.write("src/build-tmp/gen.cc", "int f() { return rand(); }\n");
  tree.write("src/core/notes.txt", "not C++\n");

  AnalyzeOptions options;
  options.root = tree.root();
  options.subdirs = {"src"};
  EXPECT_EQ(collect_tree(options),
            (std::vector<std::string>{"src/core/ok.cc"}));
  EXPECT_TRUE(analyze_tree(options).diagnostics.empty());
}

}  // namespace
}  // namespace piggyweb::analysis

#include "proxy/pcv.h"

#include <gtest/gtest.h>

namespace piggyweb::proxy {
namespace {

CacheConfig cache_config(util::Seconds delta = 100) {
  CacheConfig c;
  c.capacity_bytes = 1'000'000;
  c.freshness_interval = delta;
  return c;
}

PcvConfig pcv_config(std::size_t batch = 10, util::Seconds horizon = 50) {
  PcvConfig c;
  c.batch = batch;
  c.horizon = horizon;
  return c;
}

TEST(PcvAgent, PlansOnlyExpiringEntries) {
  ProxyCache cache(cache_config(/*delta=*/100));
  PcvAgent agent(pcv_config(10, /*horizon=*/50), cache);
  cache.insert({1, 10}, 100, 500, {0});   // expires at 100
  cache.insert({1, 11}, 100, 600, {70});  // expires at 170
  // At t=60 with horizon 50 (deadline 110): only the first qualifies.
  const auto items = agent.plan(1, {60});
  ASSERT_EQ(items.size(), 1u);
  EXPECT_EQ(items[0].resource, 10u);
  EXPECT_EQ(items[0].last_modified, 500);
  EXPECT_EQ(agent.stats().batches_sent, 1u);
  EXPECT_EQ(agent.stats().items_sent, 1u);
}

TEST(PcvAgent, IncludesAlreadyStaleEntries) {
  ProxyCache cache(cache_config(100));
  PcvAgent agent(pcv_config(), cache);
  cache.insert({1, 10}, 100, 500, {0});
  const auto items = agent.plan(1, {500});  // long expired
  EXPECT_EQ(items.size(), 1u);
}

TEST(PcvAgent, BatchBound) {
  ProxyCache cache(cache_config(100));
  PcvAgent agent(pcv_config(/*batch=*/3), cache);
  for (util::InternId i = 0; i < 10; ++i) {
    cache.insert({1, i}, 100, 500, {0});
  }
  EXPECT_EQ(agent.plan(1, {200}).size(), 3u);
}

TEST(PcvAgent, PerServerSelection) {
  ProxyCache cache(cache_config(100));
  PcvAgent agent(pcv_config(), cache);
  cache.insert({1, 10}, 100, 500, {0});
  cache.insert({2, 11}, 100, 500, {0});
  const auto items = agent.plan(1, {200});
  ASSERT_EQ(items.size(), 1u);
  EXPECT_EQ(items[0].resource, 10u);
}

TEST(PcvAgent, EmptyPlanDoesNotCountABatch) {
  ProxyCache cache(cache_config(100));
  PcvAgent agent(pcv_config(), cache);
  EXPECT_TRUE(agent.plan(1, {0}).empty());
  EXPECT_EQ(agent.stats().batches_sent, 0u);
}

TEST(PcvAgent, ProcessFreshExtendsExpiry) {
  ProxyCache cache(cache_config(100));
  PcvAgent agent(pcv_config(), cache);
  cache.insert({1, 10}, 100, 500, {0});
  core::ValidationReply reply;
  reply.fresh.push_back(10);
  agent.process(1, reply, {90});
  // Without the bulk revalidation this would be stale at 150.
  EXPECT_EQ(cache.lookup({1, 10}, {150}), LookupOutcome::kFreshHit);
  EXPECT_EQ(agent.stats().freshened, 1u);
}

TEST(PcvAgent, ProcessStaleEvicts) {
  ProxyCache cache(cache_config(100));
  PcvAgent agent(pcv_config(), cache);
  cache.insert({1, 10}, 100, 500, {0});
  core::ValidationReply reply;
  reply.stale.push_back({10, /*new lm=*/700});
  agent.process(1, reply, {50});
  EXPECT_FALSE(cache.contains({1, 10}));
  EXPECT_EQ(agent.stats().invalidated, 1u);
}

TEST(PcvAgent, RevalidatedEntryLeavesTheBatchWindow) {
  ProxyCache cache(cache_config(100));
  PcvAgent agent(pcv_config(10, 50), cache);
  cache.insert({1, 10}, 100, 500, {0});
  core::ValidationReply reply;
  reply.fresh.push_back(10);
  agent.process(1, reply, {60});  // fresh until 160
  // Immediately afterwards the entry is no longer "expiring soon".
  EXPECT_TRUE(agent.plan(1, {61}).empty());
}

}  // namespace
}  // namespace piggyweb::proxy

// Whole-run checkpoint/resume equivalence: interrupt an evaluation run at
// an arbitrary request, snapshot, and prove the warm-started continuation
// produces an EvalResult bit-identical to the uninterrupted run — serial
// and parallel, directory and probability schemes, across thread counts.
// Also covers the canonical-bytes guarantee (the snapshot does not depend
// on the saving run's thread count) and the engine node-state round trip.
#include "persist/eval_state.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "persist/engine_state.h"
#include "server/meta.h"
#include "sim/engine.h"
#include "sim/parallel_eval.h"
#include "sim/prediction_eval.h"
#include "trace/profiles.h"
#include "volume/directory.h"
#include "volume/probability.h"

namespace piggyweb::persist {
namespace {

const trace::SyntheticWorkload& workload() {
  static const trace::SyntheticWorkload w =
      trace::generate(trace::aiusa_profile(0.03));
  return w;
}

sim::EvalConfig eval_config() {
  sim::EvalConfig config;
  config.filter.max_elements = 20;
  config.filter.min_access_count = 2;
  config.use_rpv = true;
  config.rpv.timeout = 30;
  config.min_piggyback_interval = 15;
  return config;
}

volume::DirectoryVolumeConfig directory_config() {
  volume::DirectoryVolumeConfig config;
  config.level = 1;
  return config;
}

void expect_identical(const sim::EvalResult& a, const sim::EvalResult& b) {
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.predicted_requests, b.predicted_requests);
  EXPECT_EQ(a.piggyback_messages, b.piggyback_messages);
  EXPECT_EQ(a.piggyback_elements, b.piggyback_elements);
  EXPECT_EQ(a.predictions_made, b.predictions_made);
  EXPECT_EQ(a.predictions_true, b.predictions_true);
  EXPECT_EQ(std::memcmp(&a, &b, sizeof a), 0);
}

// Serial directory-scheme baseline: the uninterrupted result.
sim::EvalResult serial_baseline(const sim::EvalConfig& config) {
  volume::DirectoryVolumes volumes(directory_config());
  volumes.bind_paths(workload().trace.paths());
  server::TraceMetaOracle meta(workload().trace);
  return sim::PredictionEvaluator(config).run(workload().trace, volumes, meta);
}

// Capture a snapshot of a serial directory run stopped after `mid`.
EvalSnapshot capture_serial_directory(const sim::EvalConfig& config,
                                      std::size_t mid) {
  const auto& trace = workload().trace;
  volume::DirectoryVolumes volumes(directory_config());
  volumes.bind_paths(trace.paths());
  server::TraceMetaOracle meta(trace);
  sim::detail::MetricAccumulator acc(config);
  sim::PredictionEvaluator(config).run_range(trace, volumes, meta, 0, mid,
                                             acc, /*publish=*/false);
  const auto dvc = directory_config();
  const volume::DirectoryVolumes* providers[] = {&volumes};
  const sim::detail::MetricAccumulator* accumulators[] = {&acc};
  return capture_eval_state(providers, accumulators,
                            make_eval_config_echo("directory", config, &dvc),
                            mid, trace.size(), trace_fingerprint(trace));
}

TEST(CheckpointResume, SerialDirectoryMatchesUninterrupted) {
  const auto config = eval_config();
  const auto& trace = workload().trace;
  ASSERT_GT(trace.size(), 400u);
  const auto baseline = serial_baseline(config);

  for (const std::size_t mid :
       {trace.size() / 7, trace.size() / 2, trace.size() - 1}) {
    const auto snapshot = capture_serial_directory(config, mid);

    // The container round trips exactly: serialize -> parse -> serialize
    // is a byte identity.
    const auto bytes = serialize_eval_snapshot(snapshot);
    std::string error;
    const auto parsed = parse_eval_snapshot(bytes, error);
    ASSERT_TRUE(parsed.has_value()) << error;
    EXPECT_EQ(serialize_eval_snapshot(*parsed), bytes);
    EXPECT_EQ(parsed->next_request, mid);

    // Warm-start a fresh provider/accumulator pair and finish the run.
    EvalRestore restore(*parsed);
    volume::DirectoryVolumes volumes(directory_config());
    volumes.bind_paths(trace.paths());
    server::TraceMetaOracle meta(trace);
    sim::detail::MetricAccumulator acc(config);
    restore.warm_provider(volumes, 0, 1);
    restore.seed_accumulator(acc, 0, 1);
    const auto resumed = sim::PredictionEvaluator(config).run_range(
        trace, volumes, meta, restore.next_request(), trace.size(), acc,
        /*publish=*/false);
    expect_identical(baseline, resumed);
  }
}

// Capture a snapshot of a parallel directory run stopped after `mid`.
EvalSnapshot capture_parallel_directory(const sim::EvalConfig& config,
                                        std::size_t mid,
                                        std::size_t threads) {
  const auto& trace = workload().trace;
  const auto dvc = directory_config();
  const auto spec = sim::shard_directory_volumes(dvc, trace);
  server::TraceMetaOracle meta(trace);
  std::optional<EvalSnapshot> captured;
  sim::EvalResumeHooks hooks;
  hooks.capture =
      [&](std::span<core::VolumeProvider* const> providers,
          std::span<sim::detail::MetricAccumulator* const> accumulators) {
        std::vector<const volume::DirectoryVolumes*> dirs;
        for (auto* provider : providers) {
          auto* directory = dynamic_cast<volume::DirectoryVolumes*>(provider);
          ASSERT_NE(directory, nullptr);
          dirs.push_back(directory);
        }
        std::vector<const sim::detail::MetricAccumulator*> accs(
            accumulators.begin(), accumulators.end());
        captured = capture_eval_state(
            dirs, accs, make_eval_config_echo("directory", config, &dvc), mid,
            trace.size(), trace_fingerprint(trace));
      };
  sim::ParallelEvalConfig par;
  par.threads = threads;
  par.chunk_requests = 256;  // several chunks even on the tiny trace
  sim::ParallelEvaluator(config, par)
      .run_range(trace, spec, meta, 0, mid, /*publish=*/false, &hooks);
  return std::move(captured).value();  // throws if capture never ran
}

TEST(CheckpointResume, SnapshotBytesAreThreadCountInvariant) {
  const auto config = eval_config();
  const auto mid = workload().trace.size() / 2;
  const auto serial_bytes =
      serialize_eval_snapshot(capture_serial_directory(config, mid));
  for (const std::size_t threads : {1u, 3u}) {
    const auto parallel_bytes = serialize_eval_snapshot(
        capture_parallel_directory(config, mid, threads));
    EXPECT_EQ(parallel_bytes, serial_bytes) << threads << " threads";
  }
}

TEST(CheckpointResume, CrossThreadCountResumeMatchesUninterrupted) {
  const auto config = eval_config();
  const auto& trace = workload().trace;
  const auto mid = trace.size() / 3;
  const auto baseline = serial_baseline(config);

  // Save under one thread count, resume under others (including serial).
  const auto snapshot = capture_parallel_directory(config, mid, 2);
  const auto dvc = directory_config();
  server::TraceMetaOracle meta(trace);

  for (const std::size_t threads : {1u, 4u}) {
    EvalRestore restore(snapshot);
    auto hooks = restore.hooks();
    const auto spec = sim::shard_directory_volumes(dvc, trace);
    sim::ParallelEvalConfig par;
    par.threads = threads;
    par.chunk_requests = 256;
    const auto resumed =
        sim::ParallelEvaluator(config, par)
            .run_range(trace, spec, meta, restore.next_request(), trace.size(),
                       /*publish=*/false, &hooks);
    expect_identical(baseline, resumed);
  }

  EvalRestore restore(snapshot);
  volume::DirectoryVolumes volumes(directory_config());
  volumes.bind_paths(trace.paths());
  sim::detail::MetricAccumulator acc(config);
  restore.warm_provider(volumes, 0, 1);
  restore.seed_accumulator(acc, 0, 1);
  const auto resumed = sim::PredictionEvaluator(config).run_range(
      trace, volumes, meta, mid, trace.size(), acc, /*publish=*/false);
  expect_identical(baseline, resumed);
}

TEST(CheckpointResume, ProbabilitySchemeRoundTrip) {
  sim::EvalConfig config;
  config.filter.max_elements = 10;
  const auto& trace = workload().trace;
  const auto mid = trace.size() / 2;
  server::TraceMetaOracle meta(trace);

  // A small hand-built volume set shared by all runs (the tool rebuilds it
  // deterministically from the trace; the snapshot stores no volume data).
  volume::ProbabilityVolumeSet set;
  for (util::InternId r = 0; r < 20; ++r) {
    set.add_volume(r, {{(r + 1) % 20, 0.8, 0.5}, {(r + 7) % 20, 0.4, 0.2}});
  }

  volume::ProbabilityVolumes serial_provider(&set, 10);
  const auto baseline =
      sim::PredictionEvaluator(config).run(trace, serial_provider, meta);

  // Stop at mid, snapshot (no providers for the probability scheme).
  volume::ProbabilityVolumes half_provider(&set, 10);
  sim::detail::MetricAccumulator acc(config);
  sim::PredictionEvaluator(config).run_range(trace, half_provider, meta, 0,
                                             mid, acc, /*publish=*/false);
  const sim::detail::MetricAccumulator* accumulators[] = {&acc};
  const auto snapshot = capture_eval_state(
      {}, accumulators, make_eval_config_echo("probability", config, nullptr),
      mid, trace.size(), trace_fingerprint(trace));
  const auto bytes = serialize_eval_snapshot(snapshot);
  std::string error;
  const auto parsed = parse_eval_snapshot(bytes, error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_TRUE(parsed->volumes.empty());
  EXPECT_EQ(serialize_eval_snapshot(*parsed), bytes);

  // Resume in parallel against the same set.
  EvalRestore restore(*parsed);
  auto hooks = restore.hooks();
  const auto spec = sim::shard_probability_volumes(&set, 10);
  sim::ParallelEvalConfig par;
  par.threads = 2;
  par.chunk_requests = 256;
  const auto resumed =
      sim::ParallelEvaluator(config, par)
          .run_range(trace, spec, meta, restore.next_request(), trace.size(),
                     /*publish=*/false, &hooks);
  expect_identical(baseline, resumed);
}

TEST(CheckpointResume, StructurallyInvalidSnapshotsAreRejected) {
  const auto config = eval_config();
  const auto mid = workload().trace.size() / 2;
  auto snapshot = capture_serial_directory(config, mid);

  std::string error;
  auto broken = snapshot;
  broken.next_request = broken.total_requests + 1;
  EXPECT_FALSE(
      parse_eval_snapshot(serialize_eval_snapshot(broken), error).has_value());

  broken = snapshot;
  broken.config.scheme = "bogus";
  EXPECT_FALSE(
      parse_eval_snapshot(serialize_eval_snapshot(broken), error).has_value());

  // The probability scheme must not carry volume images.
  broken = snapshot;
  broken.config.scheme = "probability";
  EXPECT_FALSE(
      parse_eval_snapshot(serialize_eval_snapshot(broken), error).has_value());

  // Non-canonical volume numbering is rejected.
  broken = snapshot;
  if (broken.volumes.size() >= 2) {
    std::swap(broken.volumes.front(), broken.volumes.back());
    EXPECT_FALSE(parse_eval_snapshot(serialize_eval_snapshot(broken), error)
                     .has_value());
  }
}

TEST(CheckpointResume, SaveLoadFileRoundTrip) {
  const auto config = eval_config();
  const auto snapshot =
      capture_serial_directory(config, workload().trace.size() / 2);
  const std::string path = "checkpoint_test_roundtrip.snap";
  std::string error;
  ASSERT_TRUE(save_eval_snapshot(path, snapshot, error)) << error;
  const auto loaded = load_eval_snapshot(path, error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(serialize_eval_snapshot(*loaded),
            serialize_eval_snapshot(snapshot));
  std::remove(path.c_str());

  EXPECT_FALSE(load_eval_snapshot("missing_checkpoint.snap", error)
                   .has_value());
  EXPECT_FALSE(error.empty());
}

// Engine node state (caches + filter RPV tables) ----------------------------

sim::UniformTreeSpec tree_spec() {
  sim::UniformTreeSpec spec;
  spec.depth = 2;
  spec.fanout = 2;
  spec.leaf_cache.capacity_bytes = 512 * 1024;
  spec.root_cache.capacity_bytes = 2ULL * 1024 * 1024;
  spec.base_filter.max_elements = 16;
  return spec;
}

TEST(EngineState, RoundTripIsByteStable) {
  const auto topology = sim::uniform_tree_topology(tree_spec());
  sim::EngineConfig config;
  config.volumes.level = 1;

  sim::SimulationEngine engine(workload(), topology, config);
  engine.run();
  const auto bytes = serialize_engine_state(engine);

  sim::SimulationEngine restored(workload(), topology, config);
  std::string error;
  ASSERT_TRUE(restore_engine_state(restored, bytes, error)) << error;
  EXPECT_EQ(serialize_engine_state(restored), bytes);
}

TEST(EngineState, NodeCountMismatchIsRejected) {
  sim::EngineConfig config;
  sim::SimulationEngine engine(
      workload(), sim::uniform_tree_topology(tree_spec()), config);
  const auto bytes = serialize_engine_state(engine);

  auto wider = tree_spec();
  wider.fanout = 3;
  sim::SimulationEngine other(workload(),
                              sim::uniform_tree_topology(wider), config);
  std::string error;
  EXPECT_FALSE(restore_engine_state(other, bytes, error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace piggyweb::persist

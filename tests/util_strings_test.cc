#include "util/strings.h"

#include <gtest/gtest.h>

namespace piggyweb::util {
namespace {

TEST(AsciiLower, MapsUppercaseOnly) {
  EXPECT_EQ(ascii_lower('A'), 'a');
  EXPECT_EQ(ascii_lower('Z'), 'z');
  EXPECT_EQ(ascii_lower('a'), 'a');
  EXPECT_EQ(ascii_lower('0'), '0');
  EXPECT_EQ(ascii_lower('-'), '-');
}

TEST(ToLower, Basic) {
  EXPECT_EQ(to_lower("Content-TYPE"), "content-type");
  EXPECT_EQ(to_lower(""), "");
}

TEST(IEquals, CaseInsensitive) {
  EXPECT_TRUE(iequals("Piggy-Filter", "piggy-filter"));
  EXPECT_TRUE(iequals("", ""));
  EXPECT_FALSE(iequals("abc", "abd"));
  EXPECT_FALSE(iequals("abc", "ab"));
}

TEST(Trim, DefaultWhitespace) {
  EXPECT_EQ(trim("  hello \t\r\n"), "hello");
  EXPECT_EQ(trim("hello"), "hello");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(Trim, CustomChars) {
  EXPECT_EQ(trim("\"quoted\"", "\""), "quoted");
  EXPECT_EQ(trim("xxabcxx", "x"), "abc");
}

TEST(Split, PreservesEmptyFields) {
  const auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(Split, EmptyInputYieldsOneEmptyField) {
  const auto parts = split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(Split, NoDelimiter) {
  const auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Split, TrailingDelimiter) {
  const auto parts = split("a,b,", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[2], "");
}

TEST(SplitTrimmed, TrimsAndDropsEmpties) {
  const auto parts = split_trimmed(" a ; ;b; ", ';');
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
}

TEST(StartsEndsWith, Basics) {
  EXPECT_TRUE(starts_with("/a/b.html", "/a"));
  EXPECT_FALSE(starts_with("/a", "/a/b"));
  EXPECT_TRUE(ends_with("index.html", ".html"));
  EXPECT_FALSE(ends_with("html", "index.html"));
  EXPECT_TRUE(starts_with("x", ""));
  EXPECT_TRUE(ends_with("x", ""));
}

TEST(ParseU64, ValidAndInvalid) {
  std::uint64_t v = 0;
  EXPECT_TRUE(parse_u64("12345", v));
  EXPECT_EQ(v, 12345u);
  EXPECT_TRUE(parse_u64("0", v));
  EXPECT_EQ(v, 0u);
  EXPECT_FALSE(parse_u64("", v));
  EXPECT_FALSE(parse_u64("12a", v));
  EXPECT_FALSE(parse_u64("-3", v));
  EXPECT_FALSE(parse_u64("999999999999999999999999", v));
}

TEST(ParseI64, Negative) {
  std::int64_t v = 0;
  EXPECT_TRUE(parse_i64("-42", v));
  EXPECT_EQ(v, -42);
  EXPECT_FALSE(parse_i64("4 2", v));
}

TEST(ParseDouble, Basics) {
  double v = 0;
  EXPECT_TRUE(parse_double("0.25", v));
  EXPECT_DOUBLE_EQ(v, 0.25);
  EXPECT_TRUE(parse_double("1e3", v));
  EXPECT_DOUBLE_EQ(v, 1000.0);
  EXPECT_FALSE(parse_double("", v));
  EXPECT_FALSE(parse_double("x", v));
}

TEST(NormalizePath, StripsSchemeAndHost) {
  EXPECT_EQ(normalize_path("http://www.foo.com/a/b.html"), "/a/b.html");
  EXPECT_EQ(normalize_path("https://foo.com/x"), "/x");
}

TEST(NormalizePath, HostOnlyBecomesRoot) {
  // The paper combines http://www.foo.com/ and http://www.foo.com.
  EXPECT_EQ(normalize_path("http://www.foo.com"), "/");
  EXPECT_EQ(normalize_path("http://www.foo.com/"), "/");
}

TEST(NormalizePath, TrailingSlashDropped) {
  EXPECT_EQ(normalize_path("/a/b/"), "/a/b");
  EXPECT_EQ(normalize_path("/"), "/");
  EXPECT_EQ(normalize_path(""), "/");
}

TEST(NormalizePath, AddsLeadingSlash) {
  EXPECT_EQ(normalize_path("a/b.html"), "/a/b.html");
}

TEST(NormalizePath, StripsFragment) {
  EXPECT_EQ(normalize_path("/a/b.html#sec2"), "/a/b.html");
}

TEST(DirectoryPrefix, PaperExamples) {
  // §3.2.1's examples for www.foo.com paths.
  EXPECT_EQ(directory_prefix("/a/b.html", 1), "/a");
  EXPECT_EQ(directory_prefix("/a/d/e.html", 1), "/a");
  EXPECT_EQ(directory_prefix("/f/g.html", 1), "/f");
  EXPECT_EQ(directory_prefix("/a/b.html", 0), "/");
  EXPECT_EQ(directory_prefix("/f/g.html", 0), "/");
}

TEST(DirectoryPrefix, DeeperLevels) {
  EXPECT_EQ(directory_prefix("/a/b/c/d.html", 2), "/a/b");
  EXPECT_EQ(directory_prefix("/a/b/c/d.html", 3), "/a/b/c");
}

TEST(DirectoryPrefix, LevelBeyondDepthKeepsOwnDirectory) {
  EXPECT_EQ(directory_prefix("/a/b/c.html", 9), "/a/b");
  EXPECT_EQ(directory_prefix("/top.html", 3), "/");
}

TEST(DirectoryPrefix, RootFile) {
  EXPECT_EQ(directory_prefix("/index.html", 1), "/");
  EXPECT_EQ(directory_prefix("/index.html", 0), "/");
}

TEST(DirectoryDepth, Counts) {
  EXPECT_EQ(directory_depth("/index.html"), 0);
  EXPECT_EQ(directory_depth("/a/b.html"), 1);
  EXPECT_EQ(directory_depth("/a/b/c/d.gif"), 3);
  EXPECT_EQ(directory_depth(""), 0);
}

TEST(PathExtension, Basics) {
  EXPECT_EQ(path_extension("/a/b.html"), "html");
  EXPECT_EQ(path_extension("/a/b.c/d.GIF"), "GIF");
  EXPECT_EQ(path_extension("/a/noext"), "");
  EXPECT_EQ(path_extension("/a/b."), "");
  EXPECT_EQ(path_extension("/a.b/c"), "");
}

}  // namespace
}  // namespace piggyweb::util

// Wide byte scanner (util/scan.h): randomized differential against the
// scalar reference, plus the boundary cases the word-at-a-time loop has
// to get right — needles at the head/tail of a word, `from` offsets that
// start mid-word, haystacks shorter than one word, and byte values with
// the high bit set (where a naive SWAR mask goes wrong).
#include "util/scan.h"

#include <string>
#include <string_view>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace piggyweb::util {
namespace {

TEST(FindByte, EmptyAndMissing) {
  EXPECT_EQ(find_byte("", 'x'), std::string_view::npos);
  EXPECT_EQ(find_byte("abc", 'x'), std::string_view::npos);
  EXPECT_EQ(find_byte("abc", 'a', 1), std::string_view::npos);
  EXPECT_EQ(find_byte("abc", 'c', 3), std::string_view::npos);
  EXPECT_EQ(find_byte("abc", 'c', 100), std::string_view::npos);
}

TEST(FindByte, MatchesStringViewFind) {
  const std::string_view s = "host - - [01/Jan/1998:00:00:00 +0000] "
                             "\"GET /a/b.html HTTP/1.0\" 200 17";
  for (const char needle : {' ', '[', ']', '"', '/', 'z'}) {
    for (std::size_t from = 0; from <= s.size(); ++from) {
      EXPECT_EQ(find_byte(s, needle, from), s.find(needle, from))
          << "needle '" << needle << "' from " << from;
    }
  }
}

TEST(FindByte, NeedleAtEveryPosition) {
  // One needle placed at each index of buffers sized around the 8/16-byte
  // word boundaries: head of word, tail of word, inside the scalar tail.
  for (std::size_t size : {1u, 7u, 8u, 9u, 15u, 16u, 17u, 31u, 32u, 33u}) {
    for (std::size_t at = 0; at < size; ++at) {
      std::string s(size, 'a');
      s[at] = '|';
      EXPECT_EQ(find_byte(s, '|'), at) << "size " << size << " at " << at;
      EXPECT_EQ(find_byte(s, '|', at), at);
      EXPECT_EQ(find_byte(s, '|', at + 1), std::string_view::npos);
    }
  }
}

TEST(FindByte, HighBitBytes) {
  // 0x80.. bytes are where sloppy SWAR masks produce false positives.
  std::string s(24, '\x80');
  s[13] = '\xff';
  EXPECT_EQ(find_byte(s, '\xff'), 13u);
  EXPECT_EQ(find_byte(s, '\x80'), 0u);
  EXPECT_EQ(find_byte(s, '\x7f'), std::string_view::npos);
  EXPECT_EQ(find_byte(s, '\0'), std::string_view::npos);
}

TEST(FindByte, RandomizedDifferentialAgainstScalar) {
  Rng rng(0x5CA11ED);
  for (int round = 0; round < 2000; ++round) {
    const auto size = rng.below(80);
    std::string s;
    s.reserve(size);
    for (std::size_t i = 0; i < size; ++i) {
      // Small alphabet so matches are common; occasionally any byte value.
      s.push_back(rng.chance(0.9)
                      ? static_cast<char>('a' + rng.below(4))
                      : static_cast<char>(rng.below(256)));
    }
    const char needle = rng.chance(0.5) ? 'a' : static_cast<char>(rng.below(256));
    const auto from = rng.below(size + 8);
    EXPECT_EQ(find_byte(s, needle, from), find_byte_scalar(s, needle, from))
        << "round " << round << " size " << size << " from " << from;
  }
}

}  // namespace
}  // namespace piggyweb::util

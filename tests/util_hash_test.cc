#include "util/hash.h"

#include <set>

#include <gtest/gtest.h>

namespace piggyweb::util {
namespace {

TEST(Fnv1a, KnownVectors) {
  // Standard FNV-1a 64-bit test vectors.
  EXPECT_EQ(fnv1a(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a("foobar"), 0x85944171f73967e8ULL);
}

TEST(Fnv1a, SeedChaining) {
  // Hashing "ab" equals hashing "b" seeded with the hash of "a".
  EXPECT_EQ(fnv1a("ab"), fnv1a("b", fnv1a("a")));
}

TEST(Fnv1a, Constexpr) {
  static_assert(fnv1a("piggyweb") != fnv1a("piggywec"));
  SUCCEED();
}

TEST(Mix64, AvalancheOnLowBits) {
  // Sequential inputs must not produce sequential outputs.
  std::set<std::uint64_t> high_bytes;
  for (std::uint64_t i = 0; i < 256; ++i) {
    high_bytes.insert(mix64(i) >> 56);
  }
  // With good avalanche the top byte takes many distinct values.
  EXPECT_GT(high_bytes.size(), 100u);
}

TEST(Mix64, ZeroIsFixedButNotIdentity) {
  EXPECT_EQ(mix64(0), 0u);  // murmur3 finalizer property
  EXPECT_NE(mix64(1), 1u);
  EXPECT_NE(mix64(2), mix64(3));
}

TEST(HashCombine, OrderSensitive) {
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
}

TEST(HashIdPair, DistinctPairsDistinctHashes) {
  std::set<std::uint64_t> seen;
  for (std::uint32_t a = 0; a < 30; ++a) {
    for (std::uint32_t b = 0; b < 30; ++b) {
      seen.insert(hash_id_pair(a, b));
    }
  }
  EXPECT_EQ(seen.size(), 900u);
}

TEST(HashIdPair, AsymmetricInArguments) {
  EXPECT_NE(hash_id_pair(1, 2), hash_id_pair(2, 1));
}

}  // namespace
}  // namespace piggyweb::util

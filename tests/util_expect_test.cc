// Direct coverage for the contract macros: passing checks are no-ops,
// failing checks abort through contract_failure / bounds_failure with the
// expected diagnostic on stderr.
#include "util/expect.h"

#include <cstddef>
#include <mutex>

#include <gtest/gtest.h>

namespace {

TEST(Expect, PassingChecksAreNoOps) {
  PW_EXPECT(1 + 1 == 2);
  PW_ENSURE(true);
  PW_EXPECT_BOUNDS(0, 1);
  const std::size_t i = 3;
  const std::size_t n = 4;
  PW_EXPECT_BOUNDS(i, n);
}

TEST(ExpectDeathTest, ExpectAbortsWithExpressionAndLocation) {
  EXPECT_DEATH(PW_EXPECT(2 + 2 == 5),
               "piggyweb: precondition failed: 2 \\+ 2 == 5 "
               "\\(.*util_expect_test\\.cc:[0-9]+\\)");
}

TEST(ExpectDeathTest, EnsureAbortsWithInvariantKind) {
  EXPECT_DEATH(PW_ENSURE(false), "piggyweb: invariant failed: false");
}

TEST(ExpectDeathTest, BoundsAbortsPrintingBothValues) {
  const std::size_t i = 5;
  const std::size_t n = 3;
  EXPECT_DEATH(PW_EXPECT_BOUNDS(i, n),
               "piggyweb: bounds check failed: i = 5, n = 3");
}

TEST(ExpectDeathTest, BoundsRejectsEqualIndex) {
  EXPECT_DEATH(PW_EXPECT_BOUNDS(7, 7), "bounds check failed");
}

TEST(ExpectDeathTest, BoundsRejectsNegativeSignedIndex) {
  const int i = -1;
  EXPECT_DEATH(PW_EXPECT_BOUNDS(i, 4), "bounds check failed");
}

TEST(ExpectDeathTest, BoundsEvaluatesArgumentsOnce) {
  int calls = 0;
  const auto next = [&calls]() { return calls++; };
  PW_EXPECT_BOUNDS(next(), 1);
  EXPECT_EQ(calls, 1);
}

TEST(ExpectDeathTest, UnreachableAlwaysAborts) {
  EXPECT_DEATH(PW_UNREACHABLE(), "piggyweb: unreachable failed");
}

// The lock annotations are assertions for the static checker, not the
// runtime: they must expand to nothing, cost nothing, and never
// evaluate their argument. A class using all three compiles and runs
// exactly like its unannotated twin.
namespace lock_annotations {

struct Annotated {
  std::mutex mutex;
  int value PW_GUARDED_BY(mutex) = 7;

  void bump() PW_REQUIRES(mutex) { ++value; }

  static std::unique_lock<std::mutex> take(Annotated& a)
      PW_RETURNS_LOCK(a.mutex) {
    return std::unique_lock<std::mutex>(a.mutex);
  }
};

}  // namespace lock_annotations

TEST(ExpectTest, LockAnnotationsAreRuntimeNoOps) {
  lock_annotations::Annotated annotated;
  EXPECT_EQ(annotated.value, 7);
  {
    auto lock = lock_annotations::Annotated::take(annotated);
    EXPECT_TRUE(lock.owns_lock());
    annotated.bump();
  }
  EXPECT_EQ(annotated.value, 8);
  // An annotated member is layout-identical to a plain one: the macro
  // added no storage.
  struct Plain {
    std::mutex mutex;
    int value = 7;
  };
  EXPECT_EQ(sizeof(lock_annotations::Annotated), sizeof(Plain));
}

}  // namespace

// Differential tests: drive the production data structures and naive
// reference implementations with the same randomized operation sequences
// and require identical observable behaviour. Catches whole classes of
// bookkeeping bugs (split FIFO partitions, iterator juggling, eviction
// order) that example-based tests miss.
#include <algorithm>
#include <cstdint>
#include <list>
#include <map>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "proxy/cache.h"
#include "util/rng.h"
#include "util/strings.h"
#include "volume/directory.h"
#include "volume/pair_counter.h"
#include "volume/sharded_pair_counter.h"

namespace piggyweb {
namespace {

// --- LRU cache reference ----------------------------------------------------

class ReferenceLru {
 public:
  ReferenceLru(std::uint64_t capacity, util::Seconds delta)
      : capacity_(capacity), delta_(delta) {}

  proxy::LookupOutcome lookup(std::uint64_t key, util::Seconds now) {
    const auto it = entries_.find(key);
    if (it == entries_.end()) return proxy::LookupOutcome::kMiss;
    touch(key);
    return now < it->second.expires ? proxy::LookupOutcome::kFreshHit
                                    : proxy::LookupOutcome::kStaleHit;
  }

  void insert(std::uint64_t key, std::uint64_t size, util::Seconds now) {
    if (size > capacity_) return;
    if (entries_.count(key)) erase(key);
    while (used_ + size > capacity_ && !order_.empty()) {
      erase(order_.back());
    }
    entries_[key] = {size, now + delta_};
    order_.push_front(key);
    used_ += size;
  }

  bool contains(std::uint64_t key) const { return entries_.count(key) > 0; }
  std::uint64_t used() const { return used_; }

 private:
  struct Entry {
    std::uint64_t size;
    util::Seconds expires;
  };
  void touch(std::uint64_t key) {
    order_.remove(key);
    order_.push_front(key);
  }
  void erase(std::uint64_t key) {
    used_ -= entries_[key].size;
    entries_.erase(key);
    order_.remove(key);
  }

  std::uint64_t capacity_;
  util::Seconds delta_;
  std::map<std::uint64_t, Entry> entries_;
  std::list<std::uint64_t> order_;
  std::uint64_t used_ = 0;
};

class LruDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LruDifferential, MatchesReferenceOverRandomOps) {
  constexpr std::uint64_t kCapacity = 5000;
  constexpr util::Seconds kDelta = 500;
  proxy::CacheConfig config;
  config.capacity_bytes = kCapacity;
  config.freshness_interval = kDelta;
  config.policy = proxy::ReplacementPolicy::kLru;
  proxy::ProxyCache cache(config);
  ReferenceLru reference(kCapacity, kDelta);

  util::Rng rng(GetParam());
  util::Seconds now = 0;
  for (int op = 0; op < 4000; ++op) {
    now += static_cast<util::Seconds>(rng.below(40));
    const auto key = static_cast<util::InternId>(rng.below(60));
    const proxy::CacheKey cache_key{0, key};
    const auto real = cache.lookup(cache_key, {now});
    const auto expected = reference.lookup(key, now);
    ASSERT_EQ(real, expected) << "op " << op << " key " << key;
    if (real == proxy::LookupOutcome::kMiss) {
      const auto size = 50 + rng.below(400);
      cache.insert(cache_key, size, 0, {now});
      reference.insert(key, size, now);
    }
    ASSERT_EQ(cache.used_bytes(), reference.used()) << "op " << op;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LruDifferential,
                         ::testing::Values(1, 2, 3, 42, 1998));

// --- Directory volume reference ---------------------------------------------

// Naive model: per (server, prefix), a recency-ordered vector of
// resources; candidate list = that vector, most recent first.
class ReferenceDirectory {
 public:
  explicit ReferenceDirectory(int level) : level_(level) {}

  std::vector<std::string> on_request(const std::string& path,
                                      util::Seconds now) {
    auto& members = volumes_[std::string(util::directory_prefix(path,
                                                                level_))];
    const auto it = std::find_if(
        members.begin(), members.end(),
        [&path](const auto& m) { return m.first == path; });
    if (it != members.end()) members.erase(it);
    members.insert(members.begin(), {path, now});
    // Recency order (stable under equal stamps because later arrivals are
    // always inserted at the front).
    std::vector<std::string> out;
    out.reserve(members.size());
    for (const auto& m : members) out.push_back(m.first);
    return out;
  }

 private:
  int level_;
  std::map<std::string, std::vector<std::pair<std::string, util::Seconds>>>
      volumes_;
};

class DirectoryDifferential : public ::testing::TestWithParam<int> {};

TEST_P(DirectoryDifferential, MatchesReferenceOverRandomRequests) {
  const int level = GetParam();
  volume::DirectoryVolumeConfig config;
  config.level = level;
  volume::DirectoryVolumes volumes(config);
  util::InternTable paths;
  volumes.bind_paths(paths);
  ReferenceDirectory reference(level);

  // A pool of paths over a small tree so prefixes collide heavily.
  std::vector<std::string> pool;
  for (const char* dir : {"", "/a", "/a/x", "/b", "/b/y/z"}) {
    for (int i = 0; i < 5; ++i) {
      pool.push_back(std::string(dir) + "/r" + std::to_string(i) + ".html");
    }
  }

  util::Rng rng(0xD1FF + static_cast<std::uint64_t>(level));
  util::Seconds now = 0;
  for (int op = 0; op < 2500; ++op) {
    ++now;  // strictly increasing: recency order is unambiguous
    const auto& path = pool[rng.below(pool.size())];
    core::VolumeRequest request;
    request.server = 0;
    request.path = paths.intern(path);
    request.time = {now};
    request.size = 100;
    request.type = trace::ContentType::kHtml;
    const auto prediction = volumes.on_request(request);
    const auto expected = reference.on_request(path, now);
    ASSERT_EQ(prediction.resources.size(), expected.size())
        << "op " << op << " path " << path;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      ASSERT_EQ(paths.str(prediction.resources[i]), expected[i])
          << "op " << op << " slot " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Levels, DirectoryDifferential,
                         ::testing::Values(0, 1, 2));

// --- Sharded pair-counter table vs serial reference -------------------------

// A randomized operation list is split round-robin across real threads
// that update the sharded table concurrently; a single-threaded replay of
// the same list into plain maps is the reference. Counter sums commute,
// so the merged table must match exactly for every interleaving.
class ShardedPairCounterDifferential
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ShardedPairCounterDifferential, InterleavedUpdatesMatchSerial) {
  constexpr std::size_t kThreads = 4;
  constexpr std::uint32_t kIdSpace = 37;

  struct Op {
    util::InternId r;
    util::InternId s;
    bool pair;  // add_pair(r, s) if set, else add_occurrence(r)
  };
  util::Rng rng(GetParam());
  std::vector<Op> ops(12'000);
  for (auto& op : ops) {
    op.r = static_cast<util::InternId>(rng.below(kIdSpace));
    op.s = static_cast<util::InternId>(rng.below(kIdSpace));
    op.pair = rng.below(3) != 0;
  }

  volume::ShardedPairCounterTable table(8);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([t, &ops, &table] {
      for (std::size_t i = t; i < ops.size(); i += kThreads) {
        if (ops[i].pair) {
          table.add_pair(ops[i].r, ops[i].s);
        } else {
          table.add_occurrence(ops[i].r);
        }
      }
    });
  }
  for (auto& worker : workers) worker.join();

  std::unordered_map<std::uint64_t, std::uint64_t> pairs;
  std::unordered_map<util::InternId, std::uint64_t> occurrences;
  for (const auto& op : ops) {
    if (op.pair) {
      ++pairs[volume::PairCounts::key(op.r, op.s)];
    } else {
      ++occurrences[op.r];
    }
  }

  EXPECT_EQ(table.counter_count(), pairs.size());
  for (std::uint32_t r = 0; r < kIdSpace; ++r) {
    const auto occ = occurrences.find(r);
    ASSERT_EQ(table.occurrences(r),
              occ == occurrences.end() ? 0 : occ->second)
        << "r=" << r;
    for (std::uint32_t s = 0; s < kIdSpace; ++s) {
      const auto it = pairs.find(volume::PairCounts::key(r, s));
      ASSERT_EQ(table.pair_count(r, s), it == pairs.end() ? 0 : it->second)
          << "r=" << r << " s=" << s;
    }
  }

  // The deterministic merge reproduces the same counts.
  const auto merged = table.to_pair_counts();
  EXPECT_EQ(merged.counter_count(), pairs.size());
  for (const auto& [key, count] : pairs) {
    const auto it = merged.pairs().find(key);
    ASSERT_NE(it, merged.pairs().end()) << key;
    EXPECT_EQ(it->second.count, count) << key;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardedPairCounterDifferential,
                         ::testing::Values(11, 29, 4242, 19980901));

// --- Parallel pair-counter builder vs serial builder ------------------------

void expect_same_counts(const volume::PairCounts& serial,
                        const volume::PairCounts& parallel) {
  EXPECT_EQ(serial.counter_count(), parallel.counter_count());
  EXPECT_EQ(serial.resource_occurrences(),
            parallel.resource_occurrences());
  for (const auto& [key, pc] : serial.pairs()) {
    const auto it = parallel.pairs().find(key);
    ASSERT_NE(it, parallel.pairs().end()) << "key " << key;
    EXPECT_EQ(pc.count, it->second.count) << "key " << key;
    EXPECT_EQ(pc.cr_at_creation, it->second.cr_at_creation)
        << "key " << key;
  }
}

trace::Trace random_single_server_trace(std::uint64_t seed,
                                        std::size_t requests) {
  std::vector<std::string> pool;
  for (const char* dir : {"", "/a", "/a/x", "/b"}) {
    for (int i = 0; i < 8; ++i) {
      pool.push_back(std::string(dir) + "/r" + std::to_string(i) + ".html");
    }
  }
  util::Rng rng(seed);
  trace::Trace trace;
  util::Seconds now = 1'000'000;
  for (std::size_t i = 0; i < requests; ++i) {
    now += static_cast<util::Seconds>(rng.below(3));  // duplicates allowed
    const auto source = "10.0.0." + std::to_string(rng.below(6));
    trace.add({now}, source, "origin", pool[rng.below(pool.size())]);
  }
  return trace;  // built time-sorted
}

class ParallelPairCounterDifferential
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParallelPairCounterDifferential, MatchesSerialBuilderExactly) {
  const auto trace = random_single_server_trace(GetParam(), 6'000);
  for (const int prefix_level : {0, 1}) {
    volume::PairCounterConfig config;
    config.window = 120;
    config.restrict_prefix_level = prefix_level;
    for (const std::uint64_t min_count : {1u, 5u}) {
      const auto serial =
          volume::PairCounterBuilder(config).build(trace, min_count);
      for (const std::size_t threads : {2u, 4u, 8u}) {
        const auto parallel =
            volume::ParallelPairCounterBuilder(config, threads)
                .build(trace, min_count);
        expect_same_counts(serial, parallel);
      }
    }
  }
}

TEST_P(ParallelPairCounterDifferential, SampledConfigFallsBackToSerial) {
  const auto trace = random_single_server_trace(GetParam() ^ 0xABCD, 3'000);
  volume::PairCounterConfig config;
  config.sample_counters = true;
  const auto serial = volume::PairCounterBuilder(config).build(trace, 1);
  const auto parallel =
      volume::ParallelPairCounterBuilder(config, 4).build(trace, 1);
  expect_same_counts(serial, parallel);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelPairCounterDifferential,
                         ::testing::Values(7, 1234, 987654321));

}  // namespace
}  // namespace piggyweb

// Differential tests: drive the production data structures and naive
// reference implementations with the same randomized operation sequences
// and require identical observable behaviour. Catches whole classes of
// bookkeeping bugs (split FIFO partitions, iterator juggling, eviction
// order) that example-based tests miss.
#include <algorithm>
#include <list>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "proxy/cache.h"
#include "util/rng.h"
#include "util/strings.h"
#include "volume/directory.h"

namespace piggyweb {
namespace {

// --- LRU cache reference ----------------------------------------------------

class ReferenceLru {
 public:
  ReferenceLru(std::uint64_t capacity, util::Seconds delta)
      : capacity_(capacity), delta_(delta) {}

  proxy::LookupOutcome lookup(std::uint64_t key, util::Seconds now) {
    const auto it = entries_.find(key);
    if (it == entries_.end()) return proxy::LookupOutcome::kMiss;
    touch(key);
    return now < it->second.expires ? proxy::LookupOutcome::kFreshHit
                                    : proxy::LookupOutcome::kStaleHit;
  }

  void insert(std::uint64_t key, std::uint64_t size, util::Seconds now) {
    if (size > capacity_) return;
    if (entries_.count(key)) erase(key);
    while (used_ + size > capacity_ && !order_.empty()) {
      erase(order_.back());
    }
    entries_[key] = {size, now + delta_};
    order_.push_front(key);
    used_ += size;
  }

  bool contains(std::uint64_t key) const { return entries_.count(key) > 0; }
  std::uint64_t used() const { return used_; }

 private:
  struct Entry {
    std::uint64_t size;
    util::Seconds expires;
  };
  void touch(std::uint64_t key) {
    order_.remove(key);
    order_.push_front(key);
  }
  void erase(std::uint64_t key) {
    used_ -= entries_[key].size;
    entries_.erase(key);
    order_.remove(key);
  }

  std::uint64_t capacity_;
  util::Seconds delta_;
  std::map<std::uint64_t, Entry> entries_;
  std::list<std::uint64_t> order_;
  std::uint64_t used_ = 0;
};

class LruDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LruDifferential, MatchesReferenceOverRandomOps) {
  constexpr std::uint64_t kCapacity = 5000;
  constexpr util::Seconds kDelta = 500;
  proxy::CacheConfig config;
  config.capacity_bytes = kCapacity;
  config.freshness_interval = kDelta;
  config.policy = proxy::ReplacementPolicy::kLru;
  proxy::ProxyCache cache(config);
  ReferenceLru reference(kCapacity, kDelta);

  util::Rng rng(GetParam());
  util::Seconds now = 0;
  for (int op = 0; op < 4000; ++op) {
    now += static_cast<util::Seconds>(rng.below(40));
    const auto key = static_cast<util::InternId>(rng.below(60));
    const proxy::CacheKey cache_key{0, key};
    const auto real = cache.lookup(cache_key, {now});
    const auto expected = reference.lookup(key, now);
    ASSERT_EQ(real, expected) << "op " << op << " key " << key;
    if (real == proxy::LookupOutcome::kMiss) {
      const auto size = 50 + rng.below(400);
      cache.insert(cache_key, size, 0, {now});
      reference.insert(key, size, now);
    }
    ASSERT_EQ(cache.used_bytes(), reference.used()) << "op " << op;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LruDifferential,
                         ::testing::Values(1, 2, 3, 42, 1998));

// --- Directory volume reference ---------------------------------------------

// Naive model: per (server, prefix), a recency-ordered vector of
// resources; candidate list = that vector, most recent first.
class ReferenceDirectory {
 public:
  explicit ReferenceDirectory(int level) : level_(level) {}

  std::vector<std::string> on_request(const std::string& path,
                                      util::Seconds now) {
    auto& members = volumes_[std::string(util::directory_prefix(path,
                                                                level_))];
    const auto it = std::find_if(
        members.begin(), members.end(),
        [&path](const auto& m) { return m.first == path; });
    if (it != members.end()) members.erase(it);
    members.insert(members.begin(), {path, now});
    // Recency order (stable under equal stamps because later arrivals are
    // always inserted at the front).
    std::vector<std::string> out;
    out.reserve(members.size());
    for (const auto& m : members) out.push_back(m.first);
    return out;
  }

 private:
  int level_;
  std::map<std::string, std::vector<std::pair<std::string, util::Seconds>>>
      volumes_;
};

class DirectoryDifferential : public ::testing::TestWithParam<int> {};

TEST_P(DirectoryDifferential, MatchesReferenceOverRandomRequests) {
  const int level = GetParam();
  volume::DirectoryVolumeConfig config;
  config.level = level;
  volume::DirectoryVolumes volumes(config);
  util::InternTable paths;
  volumes.bind_paths(paths);
  ReferenceDirectory reference(level);

  // A pool of paths over a small tree so prefixes collide heavily.
  std::vector<std::string> pool;
  for (const char* dir : {"", "/a", "/a/x", "/b", "/b/y/z"}) {
    for (int i = 0; i < 5; ++i) {
      pool.push_back(std::string(dir) + "/r" + std::to_string(i) + ".html");
    }
  }

  util::Rng rng(0xD1FF + static_cast<std::uint64_t>(level));
  util::Seconds now = 0;
  for (int op = 0; op < 2500; ++op) {
    ++now;  // strictly increasing: recency order is unambiguous
    const auto& path = pool[rng.below(pool.size())];
    core::VolumeRequest request;
    request.server = 0;
    request.path = paths.intern(path);
    request.time = {now};
    request.size = 100;
    request.type = trace::ContentType::kHtml;
    const auto prediction = volumes.on_request(request);
    const auto expected = reference.on_request(path, now);
    ASSERT_EQ(prediction.resources.size(), expected.size())
        << "op " << op << " path " << path;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      ASSERT_EQ(paths.str(prediction.resources[i]), expected[i])
          << "op " << op << " slot " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Levels, DirectoryDifferential,
                         ::testing::Values(0, 1, 2));

}  // namespace
}  // namespace piggyweb

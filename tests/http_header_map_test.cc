#include "http/header_map.h"

#include <gtest/gtest.h>

namespace piggyweb::http {
namespace {

TEST(HeaderMap, AddAndGet) {
  HeaderMap headers;
  headers.add("Host", "sig.com");
  ASSERT_TRUE(headers.get("Host").has_value());
  EXPECT_EQ(*headers.get("Host"), "sig.com");
}

TEST(HeaderMap, CaseInsensitiveLookup) {
  HeaderMap headers;
  headers.add("Content-Length", "42");
  EXPECT_TRUE(headers.contains("content-length"));
  EXPECT_TRUE(headers.contains("CONTENT-LENGTH"));
  EXPECT_EQ(*headers.get("cOnTeNt-LeNgTh"), "42");
}

TEST(HeaderMap, PreservesInsertionOrder) {
  HeaderMap headers;
  headers.add("A", "1");
  headers.add("B", "2");
  headers.add("C", "3");
  ASSERT_EQ(headers.fields().size(), 3u);
  EXPECT_EQ(headers.fields()[0].name, "A");
  EXPECT_EQ(headers.fields()[1].name, "B");
  EXPECT_EQ(headers.fields()[2].name, "C");
}

TEST(HeaderMap, DuplicatesAllowed) {
  HeaderMap headers;
  headers.add("Via", "proxy1");
  headers.add("Via", "proxy2");
  const auto all = headers.get_all("via");
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0], "proxy1");
  EXPECT_EQ(all[1], "proxy2");
  EXPECT_EQ(*headers.get("Via"), "proxy1");  // first wins
}

TEST(HeaderMap, SetReplacesAll) {
  HeaderMap headers;
  headers.add("X", "1");
  headers.add("X", "2");
  headers.set("x", "3");
  EXPECT_EQ(headers.get_all("X").size(), 1u);
  EXPECT_EQ(*headers.get("X"), "3");
}

TEST(HeaderMap, RemoveReturnsCount) {
  HeaderMap headers;
  headers.add("A", "1");
  headers.add("a", "2");
  headers.add("B", "3");
  EXPECT_EQ(headers.remove("A"), 2u);
  EXPECT_FALSE(headers.contains("A"));
  EXPECT_TRUE(headers.contains("B"));
  EXPECT_EQ(headers.remove("A"), 0u);
}

TEST(HeaderMap, GetMissing) {
  HeaderMap headers;
  EXPECT_FALSE(headers.get("Nope").has_value());
  EXPECT_TRUE(headers.get_all("Nope").empty());
  EXPECT_TRUE(headers.empty());
}

TEST(HeaderMap, Serialize) {
  HeaderMap headers;
  headers.add("Host", "sig.com");
  headers.add("TE", "chunked");
  EXPECT_EQ(headers.serialize(), "Host: sig.com\r\nTE: chunked\r\n");
}

TEST(HeaderMap, SerializeEmpty) {
  HeaderMap headers;
  EXPECT_EQ(headers.serialize(), "");
}

}  // namespace
}  // namespace piggyweb::http

// FlightRecorder: ring wraparound and drop accounting, oldest-first
// Chrome-trace export, multi-thread ring registration, and the crash-path
// dump (which must produce parseable trace JSON using only
// async-signal-safe I/O).
#include "obs/flight_recorder.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/json.h"
#include "obs/tracer.h"

namespace piggyweb::obs {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + name;
}

TEST(FlightRecorder, EmptyRecorder) {
  FlightRecorder recorder(8);
  EXPECT_EQ(recorder.capacity_per_thread(), 8u);
  EXPECT_EQ(recorder.thread_count(), 0u);
  EXPECT_EQ(recorder.recorded(), 0u);
  EXPECT_EQ(recorder.dropped(), 0u);
  EXPECT_EQ(recorder.retained(), 0u);
  const auto trace = recorder.chrome_trace();
  const auto* events = trace.find("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_TRUE(events->items().empty());
}

TEST(FlightRecorder, RetainsEverythingBelowCapacity) {
  FlightRecorder recorder(16);
  for (int i = 0; i < 10; ++i) {
    recorder.record("span", static_cast<std::uint64_t>(i), 1);
  }
  EXPECT_EQ(recorder.recorded(), 10u);
  EXPECT_EQ(recorder.dropped(), 0u);
  EXPECT_EQ(recorder.retained(), 10u);
  EXPECT_EQ(recorder.thread_count(), 1u);
}

TEST(FlightRecorder, WraparoundKeepsNewestAndCountsDrops) {
  FlightRecorder recorder(4);
  for (int i = 0; i < 10; ++i) {
    recorder.record("span", static_cast<std::uint64_t>(i), 1);
  }
  EXPECT_EQ(recorder.recorded(), 10u);
  EXPECT_EQ(recorder.dropped(), 6u);
  EXPECT_EQ(recorder.retained(), 4u);
  // The export holds exactly the newest four entries, oldest first.
  const auto trace = recorder.chrome_trace();
  const auto* events = trace.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->items().size(), 4u);
  std::vector<double> stamps;
  for (const auto& event : events->items()) {
    stamps.push_back(event.find("ts")->number());
  }
  EXPECT_EQ(stamps, (std::vector<double>{6, 7, 8, 9}));
}

TEST(FlightRecorder, EachThreadGetsItsOwnRing) {
  FlightRecorder recorder(4);
  recorder.record("main", 0, 1);
  std::thread worker([&recorder] {
    for (int i = 0; i < 6; ++i) {
      recorder.record("worker", static_cast<std::uint64_t>(i), 1);
    }
  });
  worker.join();
  EXPECT_EQ(recorder.thread_count(), 2u);
  EXPECT_EQ(recorder.recorded(), 7u);
  // Only the worker ring wrapped; main's single entry survives.
  EXPECT_EQ(recorder.dropped(), 2u);
  EXPECT_EQ(recorder.retained(), 5u);
}

TEST(FlightRecorder, SpansFeedTheGlobalRecorder) {
  FlightRecorder recorder(8);
  set_global_flight_recorder(&recorder);
  {
    OBS_SPAN("unit.test.span");
  }
  set_global_flight_recorder(nullptr);
  EXPECT_EQ(recorder.recorded(), 1u);
  const auto json = recorder.chrome_trace_json();
  EXPECT_NE(json.find("unit.test.span"), std::string::npos);
}

TEST(FlightRecorder, WriteChromeTraceRoundTrips) {
  FlightRecorder recorder(8);
  recorder.record("a", 1, 2);
  recorder.record("b", 3, 4);
  const auto path = temp_path("flight-normal.json");
  ASSERT_TRUE(recorder.write_chrome_trace(path));
  std::string error;
  const auto parsed = parse_json(slurp(path), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  const auto* events = parsed->find("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_EQ(events->items().size(), 2u);
  std::remove(path.c_str());
}

TEST(FlightRecorder, CrashDumpIsParseableChromeTrace) {
  FlightRecorder recorder(4);
  for (int i = 0; i < 7; ++i) {
    recorder.record("crash.span", static_cast<std::uint64_t>(i), 2);
  }
  const auto path = temp_path("flight-crash.json");
  ASSERT_TRUE(recorder.dump_for_crash(path.c_str()));
  std::string error;
  const auto parsed = parse_json(slurp(path), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  const auto* events = parsed->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->items().size(), 4u);  // ring capacity survived
  for (const auto& event : events->items()) {
    EXPECT_EQ(event.find("name")->string(), "crash.span");
    EXPECT_EQ(event.find("ph")->string(), "X");
    EXPECT_EQ(event.find("dur")->number(), 2.0);
  }
  std::remove(path.c_str());
}

TEST(FlightRecorder, CrashDumpToUnwritablePathFails) {
  FlightRecorder recorder(4);
  recorder.record("x", 0, 1);
  EXPECT_FALSE(recorder.dump_for_crash("/nonexistent-dir/nope.json"));
}

}  // namespace
}  // namespace piggyweb::obs

#include "proxy/coherency.h"

#include <gtest/gtest.h>

namespace piggyweb::proxy {
namespace {

CacheConfig cache_config() {
  CacheConfig c;
  c.capacity_bytes = 100'000;
  c.freshness_interval = 100;
  return c;
}

core::PiggybackMessage message_with(
    std::initializer_list<core::PiggybackElement> elements) {
  core::PiggybackMessage m;
  m.volume = 1;
  m.elements = elements;
  return m;
}

TEST(CoherencyAgent, RefreshesCurrentEntries) {
  ProxyCache cache(cache_config());
  CoherencyAgent agent(cache);
  cache.insert({0, 1}, 100, /*lm=*/50, {0});

  agent.process(0, message_with({{1, 100, 50}}), {90});
  EXPECT_EQ(agent.stats().refreshed, 1u);
  // The free revalidation pushed the expiry past the original window.
  EXPECT_EQ(cache.lookup({0, 1}, {150}), LookupOutcome::kFreshHit);
}

TEST(CoherencyAgent, InvalidatesOutdatedEntries) {
  ProxyCache cache(cache_config());
  CoherencyAgent agent(cache);
  cache.insert({0, 1}, 100, /*lm=*/50, {0});

  agent.process(0, message_with({{1, 100, /*lm=*/75}}), {10});
  EXPECT_EQ(agent.stats().invalidated, 1u);
  EXPECT_FALSE(cache.contains({0, 1}));
}

TEST(CoherencyAgent, CountsUncachedElements) {
  ProxyCache cache(cache_config());
  CoherencyAgent agent(cache);
  agent.process(0, message_with({{9, 10, 10}}), {0});
  EXPECT_EQ(agent.stats().not_cached, 1u);
  EXPECT_EQ(agent.stats().refreshed, 0u);
}

TEST(CoherencyAgent, MixedMessage) {
  ProxyCache cache(cache_config());
  CoherencyAgent agent(cache);
  cache.insert({0, 1}, 100, 50, {0});
  cache.insert({0, 2}, 100, 50, {0});

  agent.process(
      0, message_with({{1, 100, 50}, {2, 100, 80}, {3, 100, 10}}), {20});
  EXPECT_EQ(agent.stats().piggybacks_processed, 1u);
  EXPECT_EQ(agent.stats().elements_processed, 3u);
  EXPECT_EQ(agent.stats().refreshed, 1u);
  EXPECT_EQ(agent.stats().invalidated, 1u);
  EXPECT_EQ(agent.stats().not_cached, 1u);
}

TEST(CoherencyAgent, EmptyMessageIgnored) {
  ProxyCache cache(cache_config());
  CoherencyAgent agent(cache);
  agent.process(0, {}, {0});
  EXPECT_EQ(agent.stats().piggybacks_processed, 0u);
}

TEST(CoherencyAgent, ServerScopesKeys) {
  ProxyCache cache(cache_config());
  CoherencyAgent agent(cache);
  cache.insert({0, 1}, 100, 50, {0});
  // Piggyback from a different server must not touch server 0's entry.
  agent.process(7, message_with({{1, 100, 99}}), {10});
  EXPECT_EQ(agent.stats().not_cached, 1u);
  EXPECT_TRUE(cache.contains({0, 1}));
}

}  // namespace
}  // namespace piggyweb::proxy

// Randomized round-trip and robustness tests for every wire codec:
// chunked transfer-coding, HTTP messages, Piggy-filter / P-volume /
// Piggy-hits grammars, and CLF lines. Deterministic seeds; two properties
// per codec: (1) serialize -> parse is the identity, (2) parsing mutated
// bytes never crashes and either fails cleanly or yields a well-formed
// value.
#include <string>

#include <gtest/gtest.h>

#include "http/chunked.h"
#include "http/message.h"
#include "http/piggy_headers.h"
#include "persist/codec.h"
#include "trace/binary.h"
#include "trace/clf.h"
#include "util/rng.h"

namespace piggyweb {
namespace {

std::string random_bytes(util::Rng& rng, std::size_t max_len) {
  std::string out;
  const auto len = rng.below(max_len + 1);
  out.reserve(len);
  for (std::uint64_t i = 0; i < len; ++i) {
    out.push_back(static_cast<char>(rng.below(256)));
  }
  return out;
}

std::string random_path(util::Rng& rng) {
  std::string path;
  const auto depth = rng.below(4);
  for (std::uint64_t d = 0; d <= depth; ++d) {
    path += "/d" + std::to_string(rng.below(10));
  }
  path += "/r" + std::to_string(rng.below(1000)) + ".html";
  return path;
}

class CodecFuzz : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  util::Rng rng_{GetParam()};
};

TEST_P(CodecFuzz, ChunkedRoundTripArbitraryBytes) {
  for (int i = 0; i < 50; ++i) {
    const auto body = random_bytes(rng_, 5000);
    http::HeaderMap trailers;
    if (rng_.chance(0.5)) trailers.add("P-volume", "vid=1");
    const auto chunk_size = 1 + rng_.below(512);
    const auto encoded = http::chunk_encode(body, trailers, chunk_size);
    http::ChunkedDecode decoded;
    ASSERT_TRUE(http::chunk_decode(encoded, decoded)) << "iteration " << i;
    EXPECT_EQ(decoded.body, body);
    EXPECT_EQ(decoded.consumed, encoded.size());
  }
}

TEST_P(CodecFuzz, ChunkedDecodeSurvivesMutation) {
  for (int i = 0; i < 200; ++i) {
    http::HeaderMap trailers;
    trailers.add("P-volume", "vid=1; e=\"/a 1 2\"");
    auto encoded = http::chunk_encode(random_bytes(rng_, 300), trailers, 64);
    // Flip a few bytes.
    for (int flips = 0; flips < 3; ++flips) {
      encoded[rng_.below(encoded.size())] =
          static_cast<char>(rng_.below(256));
    }
    http::ChunkedDecode decoded;
    http::chunk_decode(encoded, decoded);  // must not crash or hang
  }
}

TEST_P(CodecFuzz, ResponseRoundTripRandomBodies) {
  for (int i = 0; i < 50; ++i) {
    http::Response response;
    response.status = 200;
    response.reason = "OK";
    response.body = random_bytes(rng_, 2000);
    // CRLF-rich bodies exercise framing; Content-Length vs chunked both.
    if (rng_.chance(0.5)) {
      response.chunked = true;
      response.headers.add("Transfer-Encoding", "chunked");
      response.trailers.add("P-volume", "vid=2");
    } else {
      response.headers.add("Content-Length",
                           std::to_string(response.body.size()));
    }
    http::ParseError error;
    const auto parsed = http::parse_response(response.serialize(), error);
    ASSERT_TRUE(parsed.has_value()) << error.message;
    EXPECT_EQ(parsed->response.body, response.body);
    EXPECT_EQ(parsed->response.status, 200);
  }
}

TEST_P(CodecFuzz, ParsersRejectGarbageWithoutCrashing) {
  for (int i = 0; i < 300; ++i) {
    const auto garbage = random_bytes(rng_, 400);
    http::ParseError error;
    http::parse_request(garbage, error);
    http::parse_response(garbage, error);
    http::ChunkedDecode decoded;
    http::chunk_decode(garbage, decoded);
    http::parse_filter(garbage);
    util::InternTable paths;
    http::parse_pvolume(garbage, paths);
    http::parse_hits(garbage);
    trace::parse_clf_line(garbage);
  }
}

TEST_P(CodecFuzz, FilterRoundTripRandomFields) {
  for (int i = 0; i < 100; ++i) {
    core::ProxyFilter filter;
    filter.enabled = rng_.chance(0.9);
    filter.max_elements = static_cast<std::uint32_t>(rng_.below(1000));
    const auto n_rpv = rng_.below(8);
    for (std::uint64_t v = 0; v < n_rpv; ++v) {
      filter.rpv.push_back(
          static_cast<core::VolumeId>(rng_.below(32768)));
    }
    if (rng_.chance(0.5)) {
      filter.probability_threshold = rng_.uniform();
    }
    if (rng_.chance(0.5)) filter.max_size = rng_.below(1 << 20);
    filter.allow_image = rng_.chance(0.8);
    filter.allow_other = rng_.chance(0.8);
    filter.min_access_count = static_cast<std::uint32_t>(rng_.below(100));

    const auto parsed = http::parse_filter(http::serialize_filter(filter));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->enabled, filter.enabled);
    if (!filter.enabled) continue;  // nopiggy drops the other fields
    EXPECT_EQ(parsed->max_elements, filter.max_elements);
    EXPECT_EQ(parsed->rpv, filter.rpv);
    EXPECT_EQ(parsed->probability_threshold.has_value(),
              filter.probability_threshold.has_value());
    if (filter.probability_threshold) {
      EXPECT_NEAR(*parsed->probability_threshold,
                  *filter.probability_threshold, 1e-4);
    }
    EXPECT_EQ(parsed->max_size, filter.max_size);
    EXPECT_EQ(parsed->allow_image, filter.allow_image);
    EXPECT_EQ(parsed->allow_other, filter.allow_other);
    EXPECT_EQ(parsed->min_access_count, filter.min_access_count);
  }
}

TEST_P(CodecFuzz, PVolumeRoundTripRandomMessages) {
  for (int i = 0; i < 100; ++i) {
    util::InternTable paths;
    core::PiggybackMessage message;
    message.volume =
        static_cast<core::VolumeId>(rng_.below(core::kMaxWireVolumeId + 1));
    const auto n = 1 + rng_.below(20);
    for (std::uint64_t e = 0; e < n; ++e) {
      message.elements.push_back(
          {paths.intern(random_path(rng_)), rng_.below(1 << 30),
           static_cast<std::int64_t>(rng_.below(1'000'000'000))});
    }
    util::InternTable other;
    const auto parsed =
        http::parse_pvolume(http::serialize_pvolume(message, paths), other);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->volume, message.volume);
    ASSERT_EQ(parsed->elements.size(), message.elements.size());
    for (std::size_t e = 0; e < message.elements.size(); ++e) {
      EXPECT_EQ(other.str(parsed->elements[e].resource),
                paths.str(message.elements[e].resource));
      EXPECT_EQ(parsed->elements[e].size, message.elements[e].size);
      EXPECT_EQ(parsed->elements[e].last_modified,
                message.elements[e].last_modified);
    }
  }
}

TEST_P(CodecFuzz, ClfRoundTripRandomEntries) {
  for (int i = 0; i < 100; ++i) {
    trace::ClfEntry entry;
    entry.host = "host-" + std::to_string(rng_.below(1000));
    entry.time = {static_cast<util::Seconds>(rng_.below(2'000'000'000))};
    entry.method =
        rng_.chance(0.8) ? trace::Method::kGet : trace::Method::kPost;
    entry.path = random_path(rng_);
    entry.status = rng_.chance(0.8) ? 200 : 304;
    entry.size = rng_.below(1 << 24);
    const auto parsed = trace::parse_clf_line(trace::format_clf_line(entry));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->host, entry.host);
    EXPECT_EQ(parsed->time.value, entry.time.value);
    EXPECT_EQ(parsed->method, entry.method);
    EXPECT_EQ(parsed->path, entry.path);
    EXPECT_EQ(parsed->status, entry.status);
    EXPECT_EQ(parsed->size, entry.size);
  }
}

// Snapshot container (persist/codec.h) -------------------------------------

// A random but well-formed snapshot: up to 6 sections with random names
// and payloads (including empty ones).
std::string random_snapshot(util::Rng& rng) {
  persist::SnapshotWriter writer;
  const auto sections = rng.below(7);
  for (std::uint64_t s = 0; s < sections; ++s) {
    writer.add_section("sec" + std::to_string(s), random_bytes(rng, 600));
  }
  return writer.finish();
}

TEST_P(CodecFuzz, SnapshotRoundTripRandomSections) {
  for (int i = 0; i < 50; ++i) {
    const auto file = random_snapshot(rng_);
    std::string error;
    const auto reader = persist::SnapshotReader::parse(file, error);
    ASSERT_TRUE(reader.has_value()) << error;
  }
}

TEST_P(CodecFuzz, SnapshotMutationsNeverParseAndNeverCrash) {
  // Bit flips, random-byte stomps, truncations, and extensions: the
  // whole-file checksum makes any byte-level difference detectable, so
  // every mutation must be rejected with an error — and, under the
  // address/undefined sanitizer lanes, without touching invalid memory.
  for (int i = 0; i < 100; ++i) {
    const auto file = random_snapshot(rng_);
    auto corrupt = file;
    switch (rng_.below(4)) {
      case 0: {  // single bit flip
        const auto pos = rng_.below(corrupt.size());
        corrupt[pos] = static_cast<char>(
            corrupt[pos] ^ (1 << rng_.below(8)));
        break;
      }
      case 1: {  // stomp a random run of bytes
        const auto pos = rng_.below(corrupt.size());
        const auto run = 1 + rng_.below(16);
        for (std::uint64_t b = 0; b < run && pos + b < corrupt.size(); ++b) {
          corrupt[pos + b] = static_cast<char>(rng_.below(256));
        }
        break;
      }
      case 2:  // truncate
        corrupt.resize(rng_.below(corrupt.size()));
        break;
      case 3:  // append garbage
        corrupt += random_bytes(rng_, 32) + "x";
        break;
    }
    if (corrupt == file) continue;  // stomp happened to rewrite same bytes
    std::string error;
    EXPECT_FALSE(persist::SnapshotReader::parse(corrupt, error).has_value())
        << "iteration " << i;
    EXPECT_FALSE(error.empty());
  }
}

TEST_P(CodecFuzz, SnapshotDuplicatedSectionsAreRejected) {
  // Splice a randomly chosen section in twice and re-checksum, so the file
  // is bytewise self-consistent and rejection is specifically the
  // duplicate-name check.
  for (int i = 0; i < 50; ++i) {
    const auto count = 1 + rng_.below(4);
    const auto duplicated = rng_.below(count);
    persist::ByteWriter body;
    body.u32(persist::kSnapshotVersion);
    body.u32(static_cast<std::uint32_t>(count + 1));
    for (std::uint64_t s = 0; s <= count; ++s) {
      // Visit `duplicated` twice; names repeat only for that index.
      const auto logical = s <= duplicated ? s : s - 1;
      const auto name = "sec" + std::to_string(logical);
      const auto payload = random_bytes(rng_, 64);
      body.u16(static_cast<std::uint16_t>(name.size()));
      for (const char c : name) body.u8(static_cast<std::uint8_t>(c));
      body.u64(payload.size());
      body.u64(persist::snapshot_checksum(payload));
      for (const char c : payload) body.u8(static_cast<std::uint8_t>(c));
    }
    std::string file(persist::kSnapshotMagic);
    file += body.bytes();
    persist::ByteWriter footer;
    footer.u64(persist::snapshot_checksum(file));
    file += footer.bytes();

    std::string error;
    EXPECT_FALSE(persist::SnapshotReader::parse(file, error).has_value());
    EXPECT_NE(error.find("duplicate"), std::string::npos) << error;
  }
}

TEST_P(CodecFuzz, SnapshotParserSurvivesArbitraryStructuredPrefixes) {
  // Random bytes behind a valid magic + version prefix: exercises the
  // section-walk bounds checks rather than bailing at the magic.
  for (int i = 0; i < 200; ++i) {
    std::string file(persist::kSnapshotMagic);
    persist::ByteWriter version;
    version.u32(persist::kSnapshotVersion);
    file += version.bytes();
    file += random_bytes(rng_, 256);
    std::string error;
    EXPECT_FALSE(persist::SnapshotReader::parse(file, error).has_value());
  }
}

// Binary trace container (trace/binary.h) ----------------------------------

// A random trace: a handful of hosts/paths, random methods/statuses/
// sizes, sorted times, occasional Last-Modified values.
trace::Trace random_trace(util::Rng& rng) {
  trace::Trace t;
  const auto count = rng.below(200);
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto method = rng.chance(0.8)   ? trace::Method::kGet
                        : rng.chance(0.5) ? trace::Method::kPost
                                          : trace::Method::kHead;
    t.add(util::TimePoint{static_cast<util::Seconds>(rng.below(1 << 20))},
          "host-" + std::to_string(rng.below(20)),
          "server-" + std::to_string(rng.below(3)), random_path(rng),
          method, rng.chance(0.8) ? 200 : 304, rng.below(1 << 24),
          rng.chance(0.3) ? static_cast<std::int64_t>(rng.below(1 << 20))
                          : -1);
  }
  t.sort_by_time();
  return t;
}

TEST_P(CodecFuzz, BinaryTraceRoundTripRandomTraces) {
  for (int i = 0; i < 25; ++i) {
    const auto t = random_trace(rng_);
    const auto bytes = trace::serialize_binary_trace(t);
    trace::Trace reloaded;
    std::string error;
    ASSERT_TRUE(trace::load_binary_trace(bytes, reloaded, error)) << error;
    ASSERT_EQ(reloaded.size(), t.size());
    for (std::size_t r = 0; r < t.size(); ++r) {
      ASSERT_EQ(reloaded.requests()[r].time, t.requests()[r].time);
      ASSERT_EQ(reloaded.requests()[r].path, t.requests()[r].path);
      ASSERT_EQ(reloaded.requests()[r].size, t.requests()[r].size);
    }
    EXPECT_EQ(trace::trace_content_fingerprint(reloaded),
              trace::trace_content_fingerprint(t));
    // Canonical bytes: re-serializing reproduces the file.
    EXPECT_EQ(trace::serialize_binary_trace(reloaded), bytes);
  }
}

TEST_P(CodecFuzz, BinaryTraceMutationsNeverLoadAndNeverCrash) {
  // Same mutation classes as the snapshot suite: bit flips, byte stomps,
  // truncation, extension. The shared envelope checksums make every one
  // detectable, and the column validation must never read out of bounds
  // (the ASan/UBSan lanes rerun this test).
  for (int i = 0; i < 50; ++i) {
    const auto file = trace::serialize_binary_trace(random_trace(rng_));
    auto corrupt = file;
    switch (rng_.below(4)) {
      case 0: {
        const auto pos = rng_.below(corrupt.size());
        corrupt[pos] =
            static_cast<char>(corrupt[pos] ^ (1 << rng_.below(8)));
        break;
      }
      case 1: {
        const auto pos = rng_.below(corrupt.size());
        const auto run = 1 + rng_.below(16);
        for (std::uint64_t b = 0; b < run && pos + b < corrupt.size(); ++b) {
          corrupt[pos + b] = static_cast<char>(rng_.below(256));
        }
        break;
      }
      case 2:
        corrupt.resize(rng_.below(corrupt.size()));
        break;
      case 3:
        corrupt += random_bytes(rng_, 32) + "x";
        break;
    }
    if (corrupt == file) continue;
    trace::Trace out;
    std::string error;
    EXPECT_FALSE(trace::load_binary_trace(corrupt, out, error))
        << "iteration " << i;
    EXPECT_FALSE(error.empty());
  }
}

TEST_P(CodecFuzz, BinaryTraceReaderSurvivesArbitraryStructuredPrefixes) {
  for (int i = 0; i < 200; ++i) {
    std::string file(trace::kBinaryTraceMagic);
    persist::ByteWriter version;
    version.u32(trace::kBinaryTraceVersion);
    file += version.bytes();
    file += random_bytes(rng_, 256);
    trace::Trace out;
    std::string error;
    EXPECT_FALSE(trace::load_binary_trace(file, out, error));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecFuzz,
                         ::testing::Values(11, 22, 33, 44));

}  // namespace
}  // namespace piggyweb

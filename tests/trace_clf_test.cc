#include "trace/clf.h"

#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace piggyweb::trace {
namespace {

constexpr std::string_view kLine =
    "ppp-12.isp.net - - [10/Oct/1998:13:55:36 +0000] "
    "\"GET /dir/page.html HTTP/1.0\" 200 2326";

TEST(ClfDate, ParsesUtc) {
  std::int64_t out = 0;
  ASSERT_TRUE(parse_clf_date("10/Oct/1998:13:55:36 +0000", out));
  // 10 Oct 1998 = day 10509; 13:55:36 = 50136 s.
  EXPECT_EQ(out, 10509 * 86400 + 50136);
}

TEST(ClfDate, AppliesZoneOffset) {
  std::int64_t utc = 0, west = 0;
  ASSERT_TRUE(parse_clf_date("10/Oct/1998:13:55:36 +0000", utc));
  ASSERT_TRUE(parse_clf_date("10/Oct/1998:06:55:36 -0700", west));
  EXPECT_EQ(utc, west);
}

TEST(ClfDate, RejectsMalformed) {
  std::int64_t out = 0;
  EXPECT_FALSE(parse_clf_date("1998-10-10 13:55:36", out));
  EXPECT_FALSE(parse_clf_date("10/Foo/1998:13:55:36 +0000", out));
  EXPECT_FALSE(parse_clf_date("99/Oct/1998:13:55:36 +0000", out));
  EXPECT_FALSE(parse_clf_date("10/Oct/1998:25:55:36 +0000", out));
  EXPECT_FALSE(parse_clf_date("", out));
}

TEST(ClfDate, FormatParsesBack) {
  const std::int64_t ts = 10509 * 86400 + 50136;
  std::int64_t round = 0;
  ASSERT_TRUE(parse_clf_date(format_clf_date(ts), round));
  EXPECT_EQ(round, ts);
}

TEST(ClfLine, ParsesAllFields) {
  const auto entry = parse_clf_line(kLine);
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->host, "ppp-12.isp.net");
  EXPECT_EQ(entry->method, Method::kGet);
  EXPECT_EQ(entry->path, "/dir/page.html");
  EXPECT_EQ(entry->status, 200);
  EXPECT_EQ(entry->size, 2326u);
}

TEST(ClfLine, DashSizeMeansZero) {
  const auto entry = parse_clf_line(
      "h - - [10/Oct/1998:13:55:36 +0000] \"GET /x HTTP/1.0\" 304 -");
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->status, 304);
  EXPECT_EQ(entry->size, 0u);
}

TEST(ClfLine, NormalizesAbsoluteUrl) {
  const auto entry = parse_clf_line(
      "h - - [10/Oct/1998:13:55:36 +0000] "
      "\"GET http://www.foo.com/a/b.html HTTP/1.0\" 200 10");
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->path, "/a/b.html");
}

TEST(ClfLine, RejectsGarbage) {
  EXPECT_FALSE(parse_clf_line("").has_value());
  EXPECT_FALSE(parse_clf_line("not a log line").has_value());
  EXPECT_FALSE(parse_clf_line(
                   "h - - [bad date] \"GET /x HTTP/1.0\" 200 1")
                   .has_value());
  EXPECT_FALSE(parse_clf_line(
                   "h - - [10/Oct/1998:13:55:36 +0000] \"PUT /x HTTP/1.0\" "
                   "200 1")
                   .has_value());
  EXPECT_FALSE(parse_clf_line(
                   "h - - [10/Oct/1998:13:55:36 +0000] \"GET /x HTTP/1.0\" "
                   "abc 1")
                   .has_value());
}

TEST(ClfLine, RoundTripThroughFormat) {
  const auto entry = parse_clf_line(kLine);
  ASSERT_TRUE(entry.has_value());
  const auto again = parse_clf_line(format_clf_line(*entry));
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->host, entry->host);
  EXPECT_EQ(again->time.value, entry->time.value);
  EXPECT_EQ(again->path, entry->path);
  EXPECT_EQ(again->status, entry->status);
  EXPECT_EQ(again->size, entry->size);
}

TEST(Uncachable, MatchesPaperRules) {
  EXPECT_TRUE(is_uncachable_url("/cgi-bin/search"));
  EXPECT_TRUE(is_uncachable_url("/find?q=x"));
  EXPECT_FALSE(is_uncachable_url("/static/page.html"));
}

TEST(LoadClf, FiltersAndCounts) {
  std::istringstream in(
      "h1 - - [10/Oct/1998:13:55:36 +0000] \"GET /a.html HTTP/1.0\" 200 10\n"
      "h2 - - [10/Oct/1998:13:55:40 +0000] \"GET /cgi-bin/x HTTP/1.0\" 200 "
      "5\n"
      "garbage line\n"
      "h1 - - [10/Oct/1998:13:56:00 +0000] \"POST /b HTTP/1.0\" 200 7\n");
  Trace trace;
  ClfLoadOptions options;
  options.server_name = "svr";
  const auto result = load_clf(in, trace, options);
  EXPECT_EQ(result.parsed, 2u);
  EXPECT_EQ(result.skipped_filtered, 1u);  // the cgi line
  EXPECT_EQ(result.skipped_malformed, 1u);
  EXPECT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace.servers().str(trace.requests()[0].server), "svr");
}

TEST(LoadClf, DropPostOption) {
  std::istringstream in(
      "h1 - - [10/Oct/1998:13:55:36 +0000] \"POST /b HTTP/1.0\" 200 7\n");
  Trace trace;
  ClfLoadOptions options;
  options.drop_post = true;
  const auto result = load_clf(in, trace, options);
  EXPECT_EQ(result.parsed, 0u);
  EXPECT_EQ(result.skipped_filtered, 1u);
}

TEST(WriteClf, RoundTripsThroughLoad) {
  Trace original;
  original.add({875000000}, "c1", "svr", "/a/b.html", Method::kGet, 200, 99);
  original.add({875000100}, "c2", "svr", "/c.gif", Method::kGet, 304, 0);
  std::ostringstream out;
  write_clf(out, original);

  std::istringstream in(out.str());
  Trace loaded;
  ClfLoadOptions options;
  options.server_name = "svr";
  const auto result = load_clf(in, loaded, options);
  EXPECT_EQ(result.parsed, 2u);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded.requests()[0].time.value, 875000000);
  EXPECT_EQ(loaded.paths().str(loaded.requests()[0].path), "/a/b.html");
  EXPECT_EQ(loaded.requests()[1].status, 304);
}

// ---------------------------------------------------------------------------
// Wide (SSE2/SWAR) vs scalar parse_clf_fields differential. The wide
// parser is the production path; the scalar one is the reference. They
// must agree — same accept/reject verdict and, on accept, identical
// fields — on every input, including malformed ones.

void expect_parsers_agree(std::string_view line) {
  ClfFields wide, scalar;
  const bool ok_wide = parse_clf_fields(line, wide);
  const bool ok_scalar = parse_clf_fields_scalar(line, scalar);
  ASSERT_EQ(ok_wide, ok_scalar) << "line: " << line;
  if (!ok_wide) return;
  EXPECT_EQ(wide.host, scalar.host) << "line: " << line;
  EXPECT_EQ(wide.time, scalar.time) << "line: " << line;
  EXPECT_EQ(wide.method, scalar.method) << "line: " << line;
  EXPECT_EQ(wide.path, scalar.path) << "line: " << line;
  EXPECT_EQ(wide.status, scalar.status) << "line: " << line;
  EXPECT_EQ(wide.size, scalar.size) << "line: " << line;
}

TEST(ParseClfFieldsDifferential, HandWrittenCases) {
  const std::string long_path =
      "/very" + std::string(300, 'x') + "/deep/path.html";
  const std::string_view cases[] = {
      kLine,
      // well-formed variants
      "h - - [10/Oct/1998:13:55:36 +0000] \"GET / HTTP/1.0\" 200 0",
      "h - - [10/Oct/1998:13:55:36 +0000] \"HEAD /a HTTP/1.0\" 304 -",
      "h - - [10/Oct/1998:13:55:36 +0000] \"POST /cgi-bin/x HTTP/1.0\" 500 1",
      "  h - - [10/Oct/1998:13:55:36 +0000] \"GET /pad HTTP/1.0\" 200 5  ",
      // quoted request line with extra spaces inside the quotes
      "h - - [10/Oct/1998:13:55:36 +0000] \"GET   /sp aced  HTTP/1.0\" 200 1",
      // malformed: truncations and missing delimiters
      "",
      " ",
      "h",
      "h - -",
      "h - - [10/Oct/1998:13:55:36 +0000]",
      "h - - [10/Oct/1998:13:55:36 +0000] \"GET",
      "h - - [10/Oct/1998:13:55:36 +0000] \"GET /a HTTP/1.0\"",
      "h - - [10/Oct/1998:13:55:36 +0000] \"GET /a HTTP/1.0\" abc 5",
      "h - - [10/Oct/1998:13:55:36 +0000] \"GET /a HTTP/1.0\" 2000 5",
      "h - - [not-a-date] \"GET /a HTTP/1.0\" 200 5",
      "h - - 10/Oct/1998:13:55:36 \"GET /a HTTP/1.0\" 200 5",
      "h - - [10/Oct/1998:13:55:36 +0000] GET /a HTTP/1.0 200 5",
      "h - - [10/Oct/1998:13:55:36 +0000] \"FROB /a HTTP/1.0\" 200 5",
      "h - - [10/Oct/1998:13:55:36 +0000] \"\" 200 5",
  };
  for (const auto line : cases) expect_parsers_agree(line);
  expect_parsers_agree("h - - [10/Oct/1998:13:55:36 +0000] \"GET " +
                       long_path + " HTTP/1.0\" 200 12345");
}

TEST(ParseClfFieldsDifferential, RandomizedMutations) {
  util::Rng rng(0xC1F);
  const std::string_view methods[] = {"GET", "POST", "HEAD", "FROB"};
  for (int round = 0; round < 3000; ++round) {
    // Compose a mostly-valid line with randomized pieces...
    std::string path = "/";
    const auto segments = rng.below(4);
    for (std::uint64_t s = 0; s <= segments; ++s) {
      path += "d" + std::to_string(rng.below(30));
      path += rng.chance(0.8) ? "/" : "";
    }
    if (rng.chance(0.1)) path += std::string(rng.below(400), 'q');
    std::string line = "host" + std::to_string(rng.below(9)) +
                       " - - [10/Oct/1998:13:55:36 +0000] \"" +
                       std::string(methods[rng.below(4)]) + " " + path +
                       " HTTP/1.0\" " + std::to_string(rng.below(1200)) +
                       " " + std::to_string(rng.below(100000));
    // ...then mutate it: truncate, damage a byte, or duplicate a chunk.
    const auto mutation = rng.below(5);
    if (mutation == 1 && !line.empty()) {
      line.resize(rng.below(line.size() + 1));
    } else if (mutation == 2 && !line.empty()) {
      const auto at = rng.below(line.size());
      line[at] = static_cast<char>(rng.below(256));
    } else if (mutation == 3) {
      const auto at = rng.below(line.size() + 1);
      line.insert(at, rng.chance(0.5) ? "\"" : "]");
    }
    expect_parsers_agree(line);
  }
}

}  // namespace
}  // namespace piggyweb::trace

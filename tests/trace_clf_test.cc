#include "trace/clf.h"

#include <sstream>

#include <gtest/gtest.h>

namespace piggyweb::trace {
namespace {

constexpr std::string_view kLine =
    "ppp-12.isp.net - - [10/Oct/1998:13:55:36 +0000] "
    "\"GET /dir/page.html HTTP/1.0\" 200 2326";

TEST(ClfDate, ParsesUtc) {
  std::int64_t out = 0;
  ASSERT_TRUE(parse_clf_date("10/Oct/1998:13:55:36 +0000", out));
  // 10 Oct 1998 = day 10509; 13:55:36 = 50136 s.
  EXPECT_EQ(out, 10509 * 86400 + 50136);
}

TEST(ClfDate, AppliesZoneOffset) {
  std::int64_t utc = 0, west = 0;
  ASSERT_TRUE(parse_clf_date("10/Oct/1998:13:55:36 +0000", utc));
  ASSERT_TRUE(parse_clf_date("10/Oct/1998:06:55:36 -0700", west));
  EXPECT_EQ(utc, west);
}

TEST(ClfDate, RejectsMalformed) {
  std::int64_t out = 0;
  EXPECT_FALSE(parse_clf_date("1998-10-10 13:55:36", out));
  EXPECT_FALSE(parse_clf_date("10/Foo/1998:13:55:36 +0000", out));
  EXPECT_FALSE(parse_clf_date("99/Oct/1998:13:55:36 +0000", out));
  EXPECT_FALSE(parse_clf_date("10/Oct/1998:25:55:36 +0000", out));
  EXPECT_FALSE(parse_clf_date("", out));
}

TEST(ClfDate, FormatParsesBack) {
  const std::int64_t ts = 10509 * 86400 + 50136;
  std::int64_t round = 0;
  ASSERT_TRUE(parse_clf_date(format_clf_date(ts), round));
  EXPECT_EQ(round, ts);
}

TEST(ClfLine, ParsesAllFields) {
  const auto entry = parse_clf_line(kLine);
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->host, "ppp-12.isp.net");
  EXPECT_EQ(entry->method, Method::kGet);
  EXPECT_EQ(entry->path, "/dir/page.html");
  EXPECT_EQ(entry->status, 200);
  EXPECT_EQ(entry->size, 2326u);
}

TEST(ClfLine, DashSizeMeansZero) {
  const auto entry = parse_clf_line(
      "h - - [10/Oct/1998:13:55:36 +0000] \"GET /x HTTP/1.0\" 304 -");
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->status, 304);
  EXPECT_EQ(entry->size, 0u);
}

TEST(ClfLine, NormalizesAbsoluteUrl) {
  const auto entry = parse_clf_line(
      "h - - [10/Oct/1998:13:55:36 +0000] "
      "\"GET http://www.foo.com/a/b.html HTTP/1.0\" 200 10");
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->path, "/a/b.html");
}

TEST(ClfLine, RejectsGarbage) {
  EXPECT_FALSE(parse_clf_line("").has_value());
  EXPECT_FALSE(parse_clf_line("not a log line").has_value());
  EXPECT_FALSE(parse_clf_line(
                   "h - - [bad date] \"GET /x HTTP/1.0\" 200 1")
                   .has_value());
  EXPECT_FALSE(parse_clf_line(
                   "h - - [10/Oct/1998:13:55:36 +0000] \"PUT /x HTTP/1.0\" "
                   "200 1")
                   .has_value());
  EXPECT_FALSE(parse_clf_line(
                   "h - - [10/Oct/1998:13:55:36 +0000] \"GET /x HTTP/1.0\" "
                   "abc 1")
                   .has_value());
}

TEST(ClfLine, RoundTripThroughFormat) {
  const auto entry = parse_clf_line(kLine);
  ASSERT_TRUE(entry.has_value());
  const auto again = parse_clf_line(format_clf_line(*entry));
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->host, entry->host);
  EXPECT_EQ(again->time.value, entry->time.value);
  EXPECT_EQ(again->path, entry->path);
  EXPECT_EQ(again->status, entry->status);
  EXPECT_EQ(again->size, entry->size);
}

TEST(Uncachable, MatchesPaperRules) {
  EXPECT_TRUE(is_uncachable_url("/cgi-bin/search"));
  EXPECT_TRUE(is_uncachable_url("/find?q=x"));
  EXPECT_FALSE(is_uncachable_url("/static/page.html"));
}

TEST(LoadClf, FiltersAndCounts) {
  std::istringstream in(
      "h1 - - [10/Oct/1998:13:55:36 +0000] \"GET /a.html HTTP/1.0\" 200 10\n"
      "h2 - - [10/Oct/1998:13:55:40 +0000] \"GET /cgi-bin/x HTTP/1.0\" 200 "
      "5\n"
      "garbage line\n"
      "h1 - - [10/Oct/1998:13:56:00 +0000] \"POST /b HTTP/1.0\" 200 7\n");
  Trace trace;
  ClfLoadOptions options;
  options.server_name = "svr";
  const auto result = load_clf(in, trace, options);
  EXPECT_EQ(result.parsed, 2u);
  EXPECT_EQ(result.skipped_filtered, 1u);  // the cgi line
  EXPECT_EQ(result.skipped_malformed, 1u);
  EXPECT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace.servers().str(trace.requests()[0].server), "svr");
}

TEST(LoadClf, DropPostOption) {
  std::istringstream in(
      "h1 - - [10/Oct/1998:13:55:36 +0000] \"POST /b HTTP/1.0\" 200 7\n");
  Trace trace;
  ClfLoadOptions options;
  options.drop_post = true;
  const auto result = load_clf(in, trace, options);
  EXPECT_EQ(result.parsed, 0u);
  EXPECT_EQ(result.skipped_filtered, 1u);
}

TEST(WriteClf, RoundTripsThroughLoad) {
  Trace original;
  original.add({875000000}, "c1", "svr", "/a/b.html", Method::kGet, 200, 99);
  original.add({875000100}, "c2", "svr", "/c.gif", Method::kGet, 304, 0);
  std::ostringstream out;
  write_clf(out, original);

  std::istringstream in(out.str());
  Trace loaded;
  ClfLoadOptions options;
  options.server_name = "svr";
  const auto result = load_clf(in, loaded, options);
  EXPECT_EQ(result.parsed, 2u);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded.requests()[0].time.value, 875000000);
  EXPECT_EQ(loaded.paths().str(loaded.requests()[0].path), "/a/b.html");
  EXPECT_EQ(loaded.requests()[1].status, 304);
}

}  // namespace
}  // namespace piggyweb::trace

#include "trace/record.h"

#include <gtest/gtest.h>

namespace piggyweb::trace {
namespace {

TEST(Method, NamesRoundTrip) {
  for (const auto m : {Method::kGet, Method::kPost, Method::kHead}) {
    Method parsed{};
    ASSERT_TRUE(parse_method(method_name(m), parsed));
    EXPECT_EQ(parsed, m);
  }
}

TEST(Method, RejectsUnknown) {
  Method m{};
  EXPECT_FALSE(parse_method("PUT", m));
  EXPECT_FALSE(parse_method("get", m));  // methods are case-sensitive
  EXPECT_FALSE(parse_method("", m));
}

TEST(ContentType, ClassifyHtml) {
  EXPECT_EQ(classify_path("/a/b.html"), ContentType::kHtml);
  EXPECT_EQ(classify_path("/a/b.htm"), ContentType::kHtml);
  EXPECT_EQ(classify_path("/a/B.HTML"), ContentType::kHtml);
  // Extensionless paths are treated as pages.
  EXPECT_EQ(classify_path("/a/b"), ContentType::kHtml);
  EXPECT_EQ(classify_path("/"), ContentType::kHtml);
}

TEST(ContentType, ClassifyImages) {
  EXPECT_EQ(classify_path("/img/logo.gif"), ContentType::kImage);
  EXPECT_EQ(classify_path("/img/photo.JPG"), ContentType::kImage);
  EXPECT_EQ(classify_path("/img/x.jpeg"), ContentType::kImage);
  EXPECT_EQ(classify_path("/img/x.png"), ContentType::kImage);
  EXPECT_EQ(classify_path("/img/x.xbm"), ContentType::kImage);
}

TEST(ContentType, ClassifyOther) {
  EXPECT_EQ(classify_path("/docs/paper.ps"), ContentType::kOther);
  EXPECT_EQ(classify_path("/dist/apache.tar.gz"), ContentType::kOther);
  EXPECT_EQ(classify_path("/docs/spec.pdf"), ContentType::kOther);
}

TEST(ContentType, Names) {
  EXPECT_EQ(content_type_name(ContentType::kHtml), "html");
  EXPECT_EQ(content_type_name(ContentType::kImage), "image");
  EXPECT_EQ(content_type_name(ContentType::kOther), "other");
}

TEST(Trace, AddInternsConsistently) {
  Trace trace;
  trace.add({100}, "client-1", "www.x.com", "/a.html");
  trace.add({200}, "client-2", "www.x.com", "/a.html");
  EXPECT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace.sources().size(), 2u);
  EXPECT_EQ(trace.servers().size(), 1u);
  EXPECT_EQ(trace.paths().size(), 1u);
  EXPECT_EQ(trace.requests()[0].path, trace.requests()[1].path);
  EXPECT_NE(trace.requests()[0].source, trace.requests()[1].source);
}

TEST(Trace, SortByTimeIsStable) {
  Trace trace;
  trace.add({300}, "c", "s", "/late.html");
  trace.add({100}, "c", "s", "/early.html");
  trace.add({100}, "c", "s", "/early2.html");
  trace.sort_by_time();
  EXPECT_EQ(trace.paths().str(trace.requests()[0].path), "/early.html");
  EXPECT_EQ(trace.paths().str(trace.requests()[1].path), "/early2.html");
  EXPECT_EQ(trace.paths().str(trace.requests()[2].path), "/late.html");
}

TEST(Trace, SpanOfEmptyAndSingleton) {
  Trace trace;
  EXPECT_EQ(trace.span(), 0);
  trace.add({42}, "c", "s", "/x");
  EXPECT_EQ(trace.span(), 0);
}

TEST(Trace, SpanCoversRange) {
  Trace trace;
  trace.add({100}, "c", "s", "/a");
  trace.add({700}, "c", "s", "/b");
  trace.sort_by_time();
  EXPECT_EQ(trace.span(), 600);
}

TEST(Trace, DefaultRequestFields) {
  Trace trace;
  trace.add({1}, "c", "s", "/r");
  const auto& r = trace.requests()[0];
  EXPECT_EQ(r.method, Method::kGet);
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.size, 0u);
  EXPECT_EQ(r.last_modified, -1);
}

}  // namespace
}  // namespace piggyweb::trace

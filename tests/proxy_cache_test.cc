#include "proxy/cache.h"

#include <string>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace piggyweb::proxy {
namespace {

CacheConfig config(std::uint64_t capacity = 10'000,
                   util::Seconds delta = 3600,
                   ReplacementPolicy policy = ReplacementPolicy::kLru) {
  CacheConfig c;
  c.capacity_bytes = capacity;
  c.freshness_interval = delta;
  c.policy = policy;
  return c;
}

CacheKey key(util::InternId path, util::InternId server = 0) {
  return {server, path};
}

TEST(ProxyCache, MissThenFreshHit) {
  ProxyCache cache(config());
  EXPECT_EQ(cache.lookup(key(1), {0}), LookupOutcome::kMiss);
  cache.insert(key(1), 100, /*lm=*/50, {0});
  EXPECT_EQ(cache.lookup(key(1), {10}), LookupOutcome::kFreshHit);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().fresh_hits, 1u);
}

TEST(ProxyCache, ExpiresAfterFreshnessInterval) {
  ProxyCache cache(config(10'000, /*delta=*/100));
  cache.insert(key(1), 100, 50, {0});
  EXPECT_EQ(cache.lookup(key(1), {99}), LookupOutcome::kFreshHit);
  EXPECT_EQ(cache.lookup(key(1), {100}), LookupOutcome::kStaleHit);
}

TEST(ProxyCache, RevalidateExtendsExpiration) {
  ProxyCache cache(config(10'000, 100));
  cache.insert(key(1), 100, 50, {0});
  EXPECT_EQ(cache.lookup(key(1), {150}), LookupOutcome::kStaleHit);
  cache.revalidate(key(1), {150});
  EXPECT_EQ(cache.lookup(key(1), {200}), LookupOutcome::kFreshHit);
}

TEST(ProxyCache, TracksUsedBytes) {
  ProxyCache cache(config());
  cache.insert(key(1), 300, 0, {0});
  cache.insert(key(2), 200, 0, {0});
  EXPECT_EQ(cache.used_bytes(), 500u);
  EXPECT_EQ(cache.entry_count(), 2u);
}

TEST(ProxyCache, ReinsertReplacesSize) {
  ProxyCache cache(config());
  cache.insert(key(1), 300, 0, {0});
  cache.insert(key(1), 100, 1, {5});
  EXPECT_EQ(cache.used_bytes(), 100u);
  EXPECT_EQ(cache.entry_count(), 1u);
  EXPECT_EQ(*cache.cached_last_modified(key(1)), 1);
}

TEST(ProxyCache, OversizedObjectNotCached) {
  ProxyCache cache(config(1000));
  cache.insert(key(1), 5000, 0, {0});
  EXPECT_FALSE(cache.contains(key(1)));
  EXPECT_EQ(cache.used_bytes(), 0u);
}

TEST(ProxyCache, LruEvictsLeastRecentlyUsed) {
  ProxyCache cache(config(300));
  cache.insert(key(1), 100, 0, {0});
  cache.insert(key(2), 100, 0, {1});
  cache.insert(key(3), 100, 0, {2});
  cache.lookup(key(1), {3});            // touch 1: LRU order now 2,3,1
  cache.insert(key(4), 100, 0, {4});    // evicts 2
  EXPECT_TRUE(cache.contains(key(1)));
  EXPECT_FALSE(cache.contains(key(2)));
  EXPECT_TRUE(cache.contains(key(3)));
  EXPECT_TRUE(cache.contains(key(4)));
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ProxyCache, SizePolicyEvictsLargestFirst) {
  ProxyCache cache(config(1000, 3600, ReplacementPolicy::kSize));
  cache.insert(key(1), 500, 0, {0});
  cache.insert(key(2), 100, 0, {1});
  cache.insert(key(3), 300, 0, {2});
  cache.insert(key(4), 400, 0, {3});  // must evict 500 (largest)
  EXPECT_FALSE(cache.contains(key(1)));
  EXPECT_TRUE(cache.contains(key(2)));
  EXPECT_TRUE(cache.contains(key(3)));
  EXPECT_TRUE(cache.contains(key(4)));
}

TEST(ProxyCache, GdSizeFavorsSmallObjects) {
  // With uniform cost, GD-Size credits small objects more (1/size), so a
  // large unreferenced object goes first.
  ProxyCache cache(config(1000, 3600, ReplacementPolicy::kGdSize));
  cache.insert(key(1), 800, 0, {0});
  cache.insert(key(2), 100, 0, {1});
  cache.insert(key(3), 500, 0, {2});  // overflow: 800 has the lowest H
  EXPECT_FALSE(cache.contains(key(1)));
  EXPECT_TRUE(cache.contains(key(2)));
  EXPECT_TRUE(cache.contains(key(3)));
}

TEST(ProxyCache, GdSizeInflationAgesEntries) {
  ProxyCache cache(config(1000, 3600, ReplacementPolicy::kGdSize));
  cache.insert(key(1), 100, 0, {0});
  // Fill and overflow repeatedly with small objects; the untouched early
  // entry should eventually age out despite its small size.
  for (util::InternId i = 2; i < 60; ++i) {
    cache.insert(key(i), 400, 0, {static_cast<util::Seconds>(i)});
    cache.lookup(key(i), {static_cast<util::Seconds>(i)});
  }
  EXPECT_FALSE(cache.contains(key(1)));
}

TEST(ProxyCache, PiggybackRefreshWhenCurrent) {
  ProxyCache cache(config(10'000, 100));
  cache.insert(key(1), 100, /*lm=*/50, {0});
  // Piggyback says the server's copy is still LM=50: free revalidation.
  EXPECT_EQ(cache.apply_piggyback(key(1), 50, {90}),
            ProxyCache::PiggybackEffect::kRefreshed);
  EXPECT_EQ(cache.lookup(key(1), {150}), LookupOutcome::kFreshHit);
  EXPECT_EQ(cache.stats().piggyback_refreshes, 1u);
}

TEST(ProxyCache, PiggybackInvalidatesNewerVersion) {
  ProxyCache cache(config());
  cache.insert(key(1), 100, /*lm=*/50, {0});
  EXPECT_EQ(cache.apply_piggyback(key(1), /*lm=*/60, {10}),
            ProxyCache::PiggybackEffect::kInvalidated);
  EXPECT_FALSE(cache.contains(key(1)));
  EXPECT_EQ(cache.stats().piggyback_invalidations, 1u);
}

TEST(ProxyCache, PiggybackForUncachedResource) {
  ProxyCache cache(config());
  EXPECT_EQ(cache.apply_piggyback(key(1), 50, {0}),
            ProxyCache::PiggybackEffect::kNotCached);
}

TEST(ProxyCache, LruPiggybackPolicyTreatsRefreshAsTouch) {
  ProxyCache cache(config(300, 3600, ReplacementPolicy::kLruPiggyback));
  cache.insert(key(1), 100, 10, {0});
  cache.insert(key(2), 100, 10, {1});
  cache.insert(key(3), 100, 10, {2});
  // Refresh 1 via piggyback: 2 becomes the LRU victim.
  cache.apply_piggyback(key(1), 10, {3});
  cache.insert(key(4), 100, 10, {4});
  EXPECT_TRUE(cache.contains(key(1)));
  EXPECT_FALSE(cache.contains(key(2)));
}

TEST(ProxyCache, PlainLruIgnoresPiggybackForOrdering) {
  ProxyCache cache(config(300, 3600, ReplacementPolicy::kLru));
  cache.insert(key(1), 100, 10, {0});
  cache.insert(key(2), 100, 10, {1});
  cache.insert(key(3), 100, 10, {2});
  cache.apply_piggyback(key(1), 10, {3});  // refresh but no touch
  cache.insert(key(4), 100, 10, {4});      // evicts 1 (still oldest)
  EXPECT_FALSE(cache.contains(key(1)));
  EXPECT_TRUE(cache.contains(key(2)));
}

TEST(ProxyCache, FreshnessOverridePerResource) {
  ProxyCache cache(config(10'000, /*delta=*/1000));
  cache.set_freshness_override(key(1), 10);
  cache.insert(key(1), 100, 0, {0});
  cache.insert(key(2), 100, 0, {0});
  EXPECT_EQ(cache.lookup(key(1), {20}), LookupOutcome::kStaleHit);
  EXPECT_EQ(cache.lookup(key(2), {20}), LookupOutcome::kFreshHit);
}

TEST(ProxyCache, ServerDistinguishesKeys) {
  ProxyCache cache(config());
  cache.insert(key(1, /*server=*/0), 100, 0, {0});
  EXPECT_FALSE(cache.contains(key(1, /*server=*/7)));
  EXPECT_TRUE(cache.contains(key(1, 0)));
}

TEST(ProxyCache, HitRateAccounting) {
  ProxyCache cache(config(10'000, 100));
  cache.lookup(key(1), {0});             // miss
  cache.insert(key(1), 100, 0, {0});
  cache.lookup(key(1), {10});            // fresh
  cache.lookup(key(1), {500});           // stale
  const auto& stats = cache.stats();
  EXPECT_EQ(stats.lookups, 3u);
  EXPECT_NEAR(stats.hit_rate(), 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(stats.fresh_hit_rate(), 1.0 / 3.0, 1e-9);
}

TEST(ProxyCache, ExpiringSoonOrdersByExpiry) {
  ProxyCache cache(config(10'000, /*delta=*/100));
  cache.insert(key(1), 10, 0, {0});    // expires 100
  cache.insert(key(2), 10, 0, {50});   // expires 150
  cache.insert(key(3), 10, 0, {500});  // expires 600
  const auto soon = cache.expiring_soon(0, {90}, /*horizon=*/100, 10);
  ASSERT_EQ(soon.size(), 2u);
  EXPECT_EQ(soon[0].key.path, 1u);
  EXPECT_EQ(soon[1].key.path, 2u);
}

TEST(ProxyCache, ExpiringSoonRespectsLimitAndServer) {
  ProxyCache cache(config(10'000, 100));
  for (util::InternId i = 0; i < 6; ++i) {
    cache.insert({i % 2, i}, 10, 0, {0});  // alternating servers
  }
  const auto soon = cache.expiring_soon(0, {200}, 100, 2);
  ASSERT_EQ(soon.size(), 2u);
  for (const auto& entry : soon) EXPECT_EQ(entry.key.server, 0u);
}

TEST(ProxyCache, ExpiringSoonTracksRevalidation) {
  ProxyCache cache(config(10'000, 100));
  cache.insert(key(1), 10, 0, {0});
  ASSERT_EQ(cache.expiring_soon(0, {90}, 50, 10).size(), 1u);
  cache.revalidate(key(1), {90});  // fresh until 190
  EXPECT_TRUE(cache.expiring_soon(0, {90}, 50, 10).empty());
  EXPECT_EQ(cache.expiring_soon(0, {150}, 50, 10).size(), 1u);
}

TEST(ProxyCache, ExpiringSoonDropsEvicted) {
  ProxyCache cache(config(/*capacity=*/20, 100));
  cache.insert(key(1), 10, 0, {0});
  cache.insert(key(2), 10, 0, {1});
  cache.insert(key(3), 10, 0, {2});  // evicts key 1 (LRU)
  const auto soon = cache.expiring_soon(0, {200}, 100, 10);
  ASSERT_EQ(soon.size(), 2u);
  for (const auto& entry : soon) EXPECT_NE(entry.key.path, 1u);
}

TEST(ProxyCache, PolicyNames) {
  EXPECT_STREQ(policy_name(ReplacementPolicy::kLru), "lru");
  EXPECT_STREQ(policy_name(ReplacementPolicy::kSize), "size");
  EXPECT_STREQ(policy_name(ReplacementPolicy::kGdSize), "gd-size");
  EXPECT_STREQ(policy_name(ReplacementPolicy::kLruPiggyback),
               "lru-piggyback");
  EXPECT_STREQ(policy_name(ReplacementPolicy::kGdSizeHint),
               "gd-size-hint");
}

TEST(ProxyCache, HintProtectsEntryUnderGdSizeHint) {
  // Two equal-size cold entries; the hinted one must outlive the other.
  ProxyCache cache(config(1000, 3600, ReplacementPolicy::kGdSizeHint));
  cache.insert(key(1), 400, 0, {0});
  cache.insert(key(2), 400, 0, {1});
  cache.set_hint(key(1), 0.9);
  cache.insert(key(3), 400, 0, {2});  // one of 1/2 must go
  EXPECT_TRUE(cache.contains(key(1)));
  EXPECT_FALSE(cache.contains(key(2)));
}

TEST(ProxyCache, HintIgnoredByPlainGdSize) {
  ProxyCache cache(config(1000, 3600, ReplacementPolicy::kGdSize));
  cache.insert(key(1), 400, 0, {0});
  cache.insert(key(2), 400, 0, {1});
  cache.set_hint(key(1), 0.9);  // stored but not credited
  cache.insert(key(3), 400, 0, {2});
  // Plain GD-Size breaks the tie by queue order: entry 1 (inserted
  // first at equal H) is evicted despite the hint.
  EXPECT_FALSE(cache.contains(key(1)));
}

TEST(ProxyCache, HintOnUncachedKeyIsNoop) {
  ProxyCache cache(config(1000, 3600, ReplacementPolicy::kGdSizeHint));
  cache.set_hint(key(77), 1.0);  // must not crash or create entries
  EXPECT_EQ(cache.entry_count(), 0u);
}

// Parameterized sweep: all policies keep the byte budget invariant.
class CachePolicyTest
    : public ::testing::TestWithParam<ReplacementPolicy> {};

TEST_P(CachePolicyTest, NeverExceedsCapacity) {
  ProxyCache cache(config(5000, 3600, GetParam()));
  std::uint64_t state = 7;
  for (int i = 0; i < 2000; ++i) {
    const auto r = util::splitmix64(state);
    const auto path = static_cast<util::InternId>(r % 200);
    const auto size = 50 + (r >> 8) % 900;
    const auto now = util::TimePoint{i};
    if (cache.lookup(key(path), now) == LookupOutcome::kMiss) {
      cache.insert(key(path), size, 0, now);
    }
    EXPECT_LE(cache.used_bytes(), 5000u);
  }
  EXPECT_GT(cache.stats().evictions, 0u);
}

TEST_P(CachePolicyTest, LookupAfterInsertAlwaysHits) {
  ProxyCache cache(config(100'000, 3600, GetParam()));
  for (util::InternId i = 0; i < 50; ++i) {
    cache.insert(key(i), 10, 0, {0});
    EXPECT_NE(cache.lookup(key(i), {1}), LookupOutcome::kMiss);
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, CachePolicyTest,
                         ::testing::Values(ReplacementPolicy::kLru,
                                           ReplacementPolicy::kSize,
                                           ReplacementPolicy::kGdSize,
                                           ReplacementPolicy::kLruPiggyback,
                                           ReplacementPolicy::kGdSizeHint),
                         [](const auto& param_info) {
                           std::string name = policy_name(param_info.param);
                           for (auto& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace piggyweb::proxy

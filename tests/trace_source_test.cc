// TraceSource: format-name parsing, auto-sniffing (synthetic: prefix,
// PIGGYTRC magic, CLF fallback), synthetic-spec validation, pinned
// formats, and the property the whole ingestion layer exists for — the
// same requests loaded from CLF text and from the binary container are
// field-identical with equal content fingerprints.
#include "trace/source.h"

#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "persist/codec.h"
#include "trace/binary.h"
#include "trace/clf.h"

namespace piggyweb {
namespace {

// A trace that CLF can represent losslessly: one server name (CLF logs
// don't name their server; the loader stamps --server-name on every
// line) and no Last-Modified values.
trace::Trace make_clf_trace() {
  trace::Trace t;
  t.add({100}, "10.0.0.1", "server", "/index.html", trace::Method::kGet, 200,
        1024);
  t.add({130}, "10.0.0.2", "server", "/img/logo.gif", trace::Method::kGet,
        200, 4096);
  t.add({160}, "10.0.0.1", "server", "/about.html", trace::Method::kHead,
        304, 0);
  return t;
}

class TraceSourceFiles : public ::testing::Test {
 protected:
  std::string path(const std::string& name) const {
    return ::testing::TempDir() + "trace_source_" + name;
  }

  std::string write_clf(const trace::Trace& t, const std::string& name) {
    const auto file = path(name);
    std::ofstream out(file);
    trace::write_clf(out, t);
    return file;
  }

  std::string write_binary(const trace::Trace& t, const std::string& name) {
    const auto file = path(name);
    std::string error;
    EXPECT_TRUE(persist::write_file_bytes(
        file, trace::serialize_binary_trace(t), error))
        << error;
    return file;
  }
};

TEST(TraceSourceNames, ParseAndPrintRoundTrip) {
  for (const auto* name : {"auto", "clf", "binary", "synthetic"}) {
    trace::TraceFormat format;
    ASSERT_TRUE(trace::parse_trace_format(name, format)) << name;
    if (format != trace::TraceFormat::kAuto) {
      EXPECT_EQ(trace::trace_format_name(format), name);
    }
  }
  trace::TraceFormat format;
  EXPECT_FALSE(trace::parse_trace_format("", format));
  EXPECT_FALSE(trace::parse_trace_format("text", format));
  EXPECT_FALSE(trace::parse_trace_format("CLF", format));
}

TEST(TraceSourceNames, MissingFileIsAnError) {
  trace::Trace out;
  trace::TraceLoadStats stats;
  std::string error;
  EXPECT_FALSE(trace::load_trace("/nonexistent/trace.log", {}, out, stats,
                                 error));
  EXPECT_FALSE(error.empty());
}

TEST(TraceSourceNames, SyntheticSpecValidation) {
  std::string error;
  trace::TraceSourceOptions options;
  // Unknown profile and malformed scales are open-time errors.
  EXPECT_EQ(trace::open_trace_source("synthetic:nope:1.0", options, error),
            nullptr);
  EXPECT_EQ(trace::open_trace_source("synthetic:aiusa:-1", options, error),
            nullptr);
  EXPECT_EQ(trace::open_trace_source("synthetic:aiusa:0", options, error),
            nullptr);
  EXPECT_EQ(trace::open_trace_source("synthetic:aiusa:abc", options, error),
            nullptr);
  // A good spec loads a deterministic, time-sorted workload.
  trace::Trace out;
  trace::TraceLoadStats stats;
  ASSERT_TRUE(
      trace::load_trace("synthetic:aiusa:0.01", options, out, stats, error))
      << error;
  EXPECT_EQ(stats.format, trace::TraceFormat::kSynthetic);
  EXPECT_GT(out.size(), 0u);
  for (std::size_t i = 1; i < out.size(); ++i) {
    EXPECT_LE(out.requests()[i - 1].time, out.requests()[i].time);
  }
  trace::Trace again;
  ASSERT_TRUE(trace::load_trace("synthetic:aiusa:0.01", options, again,
                                stats, error));
  EXPECT_EQ(trace::trace_content_fingerprint(out),
            trace::trace_content_fingerprint(again));
}

TEST_F(TraceSourceFiles, AutoSniffsClfAndBinary) {
  const auto t = make_clf_trace();
  const auto clf_file = write_clf(t, "sniff.log");
  const auto bin_file = write_binary(t, "sniff.trc");

  trace::TraceSourceOptions options;  // format = kAuto
  std::string error;
  trace::TraceLoadStats stats;
  trace::Trace from_clf;
  ASSERT_TRUE(trace::load_trace(clf_file, options, from_clf, stats, error))
      << error;
  EXPECT_EQ(stats.format, trace::TraceFormat::kClf);
  trace::Trace from_bin;
  ASSERT_TRUE(trace::load_trace(bin_file, options, from_bin, stats, error))
      << error;
  EXPECT_EQ(stats.format, trace::TraceFormat::kBinary);

  std::remove(clf_file.c_str());
  std::remove(bin_file.c_str());
}

TEST_F(TraceSourceFiles, ClfAndBinaryLoadsAreEquivalent) {
  const auto t = make_clf_trace();
  const auto clf_file = write_clf(t, "equiv.log");

  trace::TraceSourceOptions options;
  std::string error;
  trace::TraceLoadStats stats;
  trace::Trace from_clf;
  ASSERT_TRUE(trace::load_trace(clf_file, options, from_clf, stats, error))
      << error;
  EXPECT_EQ(stats.requests, t.size());

  // Binary is produced from the CLF-loaded trace, mirroring
  // piggyweb_convert; the two loads must then agree field for field.
  const auto bin_file = write_binary(from_clf, "equiv.trc");
  trace::Trace from_bin;
  ASSERT_TRUE(trace::load_trace(bin_file, options, from_bin, stats, error))
      << error;

  ASSERT_EQ(from_clf.size(), from_bin.size());
  for (std::size_t i = 0; i < from_clf.size(); ++i) {
    const auto& x = from_clf.requests()[i];
    const auto& y = from_bin.requests()[i];
    EXPECT_EQ(x.time, y.time);
    EXPECT_EQ(x.source, y.source);
    EXPECT_EQ(x.server, y.server);
    EXPECT_EQ(x.path, y.path);
    EXPECT_EQ(x.method, y.method);
    EXPECT_EQ(x.status, y.status);
    EXPECT_EQ(x.size, y.size);
    EXPECT_EQ(x.last_modified, y.last_modified);
  }
  EXPECT_EQ(trace::trace_content_fingerprint(from_clf),
            trace::trace_content_fingerprint(from_bin));

  std::remove(clf_file.c_str());
  std::remove(bin_file.c_str());
}

TEST_F(TraceSourceFiles, PinnedFormatOverridesSniffing) {
  const auto t = make_clf_trace();
  const auto bin_file = write_binary(t, "pinned.trc");

  // Pinned binary on a binary file: fine.
  trace::TraceSourceOptions options;
  options.format = trace::TraceFormat::kBinary;
  std::string error;
  trace::TraceLoadStats stats;
  trace::Trace out;
  ASSERT_TRUE(trace::load_trace(bin_file, options, out, stats, error))
      << error;
  EXPECT_EQ(out.size(), t.size());

  // Pinned CLF on a binary file: every "line" is garbage, so the load
  // yields an empty trace rather than misinterpreted requests.
  options.format = trace::TraceFormat::kClf;
  trace::Trace misread;
  if (trace::load_trace(bin_file, options, misread, stats, error)) {
    EXPECT_TRUE(misread.empty());
    EXPECT_GT(stats.skipped_malformed, 0u);
  }

  std::remove(bin_file.c_str());
}

}  // namespace
}  // namespace piggyweb

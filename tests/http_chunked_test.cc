#include "http/chunked.h"

#include <string>

#include <gtest/gtest.h>

namespace piggyweb::http {
namespace {

TEST(Chunked, EncodeEmptyBodyNoTrailers) {
  HeaderMap trailers;
  EXPECT_EQ(chunk_encode("", trailers), "0\r\n\r\n");
}

TEST(Chunked, EncodeSmallBody) {
  HeaderMap trailers;
  EXPECT_EQ(chunk_encode("hello", trailers), "5\r\nhello\r\n0\r\n\r\n");
}

TEST(Chunked, EncodeWithTrailer) {
  HeaderMap trailers;
  trailers.add("P-volume", "vid=7");
  EXPECT_EQ(chunk_encode("hi", trailers),
            "2\r\nhi\r\n0\r\nP-volume: vid=7\r\n\r\n");
}

TEST(Chunked, EncodeSplitsAtChunkSize) {
  HeaderMap trailers;
  const std::string body(10, 'x');
  const auto encoded = chunk_encode(body, trailers, 4);
  EXPECT_EQ(encoded, "4\r\nxxxx\r\n4\r\nxxxx\r\n2\r\nxx\r\n0\r\n\r\n");
}

TEST(Chunked, RoundTrip) {
  HeaderMap trailers;
  trailers.add("P-volume", "vid=3; e=\"/a 1 2\"");
  trailers.add("X-Extra", "yes");
  const std::string body = "The quick brown fox jumps over the lazy dog";
  const auto encoded = chunk_encode(body, trailers, 7);

  ChunkedDecode decoded;
  ASSERT_TRUE(chunk_decode(encoded, decoded));
  EXPECT_EQ(decoded.body, body);
  EXPECT_EQ(decoded.consumed, encoded.size());
  ASSERT_EQ(decoded.trailers.size(), 2u);
  EXPECT_EQ(*decoded.trailers.get("P-volume"), "vid=3; e=\"/a 1 2\"");
  EXPECT_EQ(*decoded.trailers.get("X-Extra"), "yes");
}

TEST(Chunked, RoundTripLargeBody) {
  HeaderMap trailers;
  std::string body;
  for (int i = 0; i < 10000; ++i) body += static_cast<char>('a' + i % 26);
  const auto encoded = chunk_encode(body, trailers);
  ChunkedDecode decoded;
  ASSERT_TRUE(chunk_decode(encoded, decoded));
  EXPECT_EQ(decoded.body, body);
}

TEST(Chunked, DecodeHexSizes) {
  ChunkedDecode decoded;
  ASSERT_TRUE(chunk_decode("a\r\n0123456789\r\n0\r\n\r\n", decoded));
  EXPECT_EQ(decoded.body, "0123456789");
}

TEST(Chunked, DecodeIgnoresChunkExtensions) {
  ChunkedDecode decoded;
  ASSERT_TRUE(chunk_decode("5;ext=1\r\nhello\r\n0\r\n\r\n", decoded));
  EXPECT_EQ(decoded.body, "hello");
}

TEST(Chunked, DecodeTracksConsumedWithSurplus) {
  const std::string encoded = "2\r\nhi\r\n0\r\n\r\nEXTRA BYTES";
  ChunkedDecode decoded;
  ASSERT_TRUE(chunk_decode(encoded, decoded));
  EXPECT_EQ(decoded.body, "hi");
  EXPECT_EQ(decoded.consumed, encoded.size() - 11);
}

TEST(Chunked, DecodeRejectsTruncatedChunk) {
  ChunkedDecode decoded;
  EXPECT_FALSE(chunk_decode("5\r\nhe", decoded));
  EXPECT_FALSE(chunk_decode("5\r\nhello", decoded));  // missing CRLF
  EXPECT_FALSE(chunk_decode("", decoded));
}

TEST(Chunked, DecodeRejectsMissingFinalChunk) {
  ChunkedDecode decoded;
  EXPECT_FALSE(chunk_decode("2\r\nhi\r\n", decoded));
}

TEST(Chunked, DecodeRejectsBadSizeLine) {
  ChunkedDecode decoded;
  EXPECT_FALSE(chunk_decode("zz\r\nhi\r\n0\r\n\r\n", decoded));
  EXPECT_FALSE(chunk_decode("\r\nhi\r\n0\r\n\r\n", decoded));
}

TEST(Chunked, DecodeRejectsMalformedTrailer) {
  ChunkedDecode decoded;
  EXPECT_FALSE(chunk_decode("0\r\nnot-a-header\r\n\r\n", decoded));
  EXPECT_FALSE(chunk_decode("0\r\nX: 1", decoded));  // no final CRLF
}

TEST(ChunkedStatus, DistinguishesIncompleteFromMalformed) {
  ChunkedDecode decoded;
  // Valid prefixes: more bytes could complete them.
  EXPECT_EQ(chunk_decode_status("5\r\nhe", decoded),
            ChunkedStatus::kIncomplete);
  EXPECT_EQ(chunk_decode_status("5\r\nhello", decoded),
            ChunkedStatus::kIncomplete);
  EXPECT_EQ(chunk_decode_status("2\r\nhi\r\n", decoded),
            ChunkedStatus::kIncomplete);
  EXPECT_EQ(chunk_decode_status("0\r\nX: 1", decoded),
            ChunkedStatus::kIncomplete);
  EXPECT_EQ(chunk_decode_status("", decoded), ChunkedStatus::kIncomplete);
  // Never valid, regardless of future bytes.
  EXPECT_EQ(chunk_decode_status("zz\r\nhi\r\n0\r\n\r\n", decoded),
            ChunkedStatus::kMalformed);
  EXPECT_EQ(chunk_decode_status("0\r\nnot-a-header\r\n\r\n", decoded),
            ChunkedStatus::kMalformed);
  EXPECT_EQ(chunk_decode_status("2\r\nhixx", decoded),
            ChunkedStatus::kMalformed);  // missing chunk CRLF
  // Complete.
  EXPECT_EQ(chunk_decode_status("2\r\nhi\r\n0\r\n\r\n", decoded),
            ChunkedStatus::kComplete);
}

TEST(Chunked, DecodeBodyWithCrlfInside) {
  HeaderMap trailers;
  const std::string body = "line1\r\nline2\r\n0\r\n";
  const auto encoded = chunk_encode(body, trailers, 5);
  ChunkedDecode decoded;
  ASSERT_TRUE(chunk_decode(encoded, decoded));
  EXPECT_EQ(decoded.body, body);
}

}  // namespace
}  // namespace piggyweb::http

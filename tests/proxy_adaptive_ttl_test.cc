#include "proxy/adaptive_ttl.h"

#include <gtest/gtest.h>

namespace piggyweb::proxy {
namespace {

AdaptiveTtlConfig config() {
  AdaptiveTtlConfig c;
  c.delta_factor = 0.5;
  c.min_delta = 60;
  c.max_delta = 86400;
  c.ewma_alpha = 0.3;
  return c;
}

TEST(AdaptiveTtl, FallbackUntilTwoDistinctModifications) {
  AdaptiveTtl ttl(config());
  const CacheKey key{0, 1};
  EXPECT_EQ(ttl.freshness_for(key, 999), 999);
  ttl.observe(key, 1000);
  EXPECT_EQ(ttl.freshness_for(key, 999), 999);  // one LM = no gap yet
}

TEST(AdaptiveTtl, EstimatesFromGap) {
  AdaptiveTtl ttl(config());
  const CacheKey key{0, 1};
  ttl.observe(key, 1000);
  ttl.observe(key, 3000);  // gap 2000 -> delta = 1000
  EXPECT_EQ(ttl.freshness_for(key, 999), 1000);
}

TEST(AdaptiveTtl, ClampsToMin) {
  AdaptiveTtl ttl(config());
  const CacheKey key{0, 1};
  ttl.observe(key, 1000);
  ttl.observe(key, 1010);  // gap 10 -> raw delta 5 -> clamp to 60
  EXPECT_EQ(ttl.freshness_for(key, 999), 60);
}

TEST(AdaptiveTtl, ClampsToMax) {
  AdaptiveTtl ttl(config());
  const CacheKey key{0, 1};
  ttl.observe(key, 1000);
  ttl.observe(key, 1000 + 30 * 86400);  // month gap -> clamp to a day
  EXPECT_EQ(ttl.freshness_for(key, 999), 86400);
}

TEST(AdaptiveTtl, RepeatedSameLmIgnored) {
  AdaptiveTtl ttl(config());
  const CacheKey key{0, 1};
  ttl.observe(key, 1000);
  ttl.observe(key, 1000);
  ttl.observe(key, 1000);
  EXPECT_EQ(ttl.freshness_for(key, 999), 999);
}

TEST(AdaptiveTtl, OlderLmIgnored) {
  AdaptiveTtl ttl(config());
  const CacheKey key{0, 1};
  ttl.observe(key, 1000);
  ttl.observe(key, 500);  // out-of-order piggyback info
  EXPECT_EQ(ttl.freshness_for(key, 999), 999);
}

TEST(AdaptiveTtl, NegativeLmIgnored) {
  AdaptiveTtl ttl(config());
  const CacheKey key{0, 1};
  ttl.observe(key, -1);
  EXPECT_EQ(ttl.tracked(), 0u);
}

TEST(AdaptiveTtl, EwmaSmoothsGaps) {
  AdaptiveTtl ttl(config());
  const CacheKey key{0, 1};
  ttl.observe(key, 0);
  ttl.observe(key, 1000);   // ewma = 1000
  ttl.observe(key, 11000);  // gap 10000; ewma = 0.3*10000 + 0.7*1000 = 3700
  EXPECT_EQ(ttl.freshness_for(key, 1), 1850);
}

TEST(AdaptiveTtl, PerResourceState) {
  AdaptiveTtl ttl(config());
  const CacheKey hot{0, 1}, cold{0, 2};
  ttl.observe(hot, 0);
  ttl.observe(hot, 200);    // delta 100
  ttl.observe(cold, 0);
  ttl.observe(cold, 20000); // delta 10000
  EXPECT_EQ(ttl.freshness_for(hot, 1), 100);
  EXPECT_EQ(ttl.freshness_for(cold, 1), 10000);
}

TEST(AdaptiveTtl, ApplyToCacheSetsOverride) {
  AdaptiveTtl ttl(config());
  CacheConfig cc;
  cc.capacity_bytes = 1000;
  cc.freshness_interval = 9999;
  ProxyCache cache(cc);
  const CacheKey key{0, 1};
  ttl.observe(key, 0);
  ttl.observe(key, 400);  // delta 200
  ttl.apply_to(cache, key);
  cache.insert(key, 10, 400, {0});
  EXPECT_EQ(cache.lookup(key, {100}), LookupOutcome::kFreshHit);
  EXPECT_EQ(cache.lookup(key, {250}), LookupOutcome::kStaleHit);
}

TEST(AdaptiveTtl, ApplyWithoutEstimateIsNoop) {
  AdaptiveTtl ttl(config());
  CacheConfig cc;
  cc.capacity_bytes = 1000;
  cc.freshness_interval = 500;
  ProxyCache cache(cc);
  const CacheKey key{0, 1};
  ttl.apply_to(cache, key);  // no estimate yet: default Δ remains
  cache.insert(key, 10, 0, {0});
  EXPECT_EQ(cache.lookup(key, {499}), LookupOutcome::kFreshHit);
}

}  // namespace
}  // namespace piggyweb::proxy

#include "util/date.h"

#include <gtest/gtest.h>

namespace piggyweb::util {
namespace {

TEST(CivilDate, Epoch) {
  EXPECT_EQ(days_from_civil(1970, 1, 1), 0);
}

TEST(CivilDate, KnownDates) {
  EXPECT_EQ(days_from_civil(1970, 1, 2), 1);
  EXPECT_EQ(days_from_civil(1969, 12, 31), -1);
  EXPECT_EQ(days_from_civil(2000, 1, 1), 10957);
  // The SIGCOMM'98 era: 1 Feb 1998.
  EXPECT_EQ(days_from_civil(1998, 2, 1), 10258);
}

TEST(CivilDate, RoundTripRange) {
  for (std::int64_t day = -40000; day <= 40000; day += 17) {
    std::int64_t y = 0;
    int m = 0, d = 0;
    civil_from_days(day, y, m, d);
    EXPECT_EQ(days_from_civil(y, m, d), day);
    EXPECT_GE(m, 1);
    EXPECT_LE(m, 12);
    EXPECT_GE(d, 1);
    EXPECT_LE(d, 31);
  }
}

TEST(CivilDate, LeapYears) {
  // 29 Feb 2000 exists (divisible by 400).
  const auto feb29 = days_from_civil(2000, 2, 29);
  std::int64_t y = 0;
  int m = 0, d = 0;
  civil_from_days(feb29, y, m, d);
  EXPECT_EQ(y, 2000);
  EXPECT_EQ(m, 2);
  EXPECT_EQ(d, 29);
  // 1900 was not a leap year: Feb 28 + 1 day = Mar 1.
  civil_from_days(days_from_civil(1900, 2, 28) + 1, y, m, d);
  EXPECT_EQ(m, 3);
  EXPECT_EQ(d, 1);
}

TEST(Weekday, KnownDays) {
  // 1 Jan 1970 was a Thursday (4).
  EXPECT_EQ(weekday_from_days(0), 4);
  // 6 Nov 1994 was a Sunday (0) — RFC 1123's canonical example.
  EXPECT_EQ(weekday_from_days(days_from_civil(1994, 11, 6)), 0);
  // 2 Sep 1998 (SIGCOMM'98 week) was a Wednesday (3).
  EXPECT_EQ(weekday_from_days(days_from_civil(1998, 9, 2)), 3);
}

TEST(Weekday, CyclesEverySeven) {
  const auto base = days_from_civil(1998, 2, 1);
  const auto wd = weekday_from_days(base);
  EXPECT_EQ(weekday_from_days(base + 7), wd);
  EXPECT_EQ(weekday_from_days(base + 14), wd);
  EXPECT_EQ(weekday_from_days(base + 1), (wd + 1) % 7);
}

}  // namespace
}  // namespace piggyweb::util

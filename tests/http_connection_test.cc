#include "http/connection.h"

#include <gtest/gtest.h>

#include "http/piggy_headers.h"

namespace piggyweb::http {
namespace {

Request get_request(const std::string& path) {
  Request request;
  request.target = path;
  request.headers.add("Host", "example.com");
  return request;
}

Response ok_response(const std::string& body) {
  Response response;
  response.body = body;
  response.headers.add("Content-Length", std::to_string(body.size()));
  return response;
}

TEST(MessageBuffer, EmptyBufferIsIncomplete) {
  MessageBuffer buffer;
  ParseError error;
  EXPECT_FALSE(buffer.try_parse_request(error).has_value());
  EXPECT_TRUE(error.incomplete);
}

TEST(MessageBuffer, PartialDeliveryWaitsThenParses) {
  MessageBuffer buffer;
  const auto wire = get_request("/a.html").serialize();
  ParseError error;
  // Feed one byte at a time; every prefix must report incomplete, never
  // malformed, until the last byte lands.
  for (std::size_t i = 0; i < wire.size() - 1; ++i) {
    buffer.append(wire.substr(i, 1));
    const auto parsed = buffer.try_parse_request(error);
    ASSERT_FALSE(parsed.has_value()) << "at byte " << i;
    ASSERT_TRUE(error.incomplete)
        << "at byte " << i << ": " << error.message;
  }
  buffer.append(wire.substr(wire.size() - 1));
  const auto parsed = buffer.try_parse_request(error);
  ASSERT_TRUE(parsed.has_value()) << error.message;
  EXPECT_EQ(parsed->target, "/a.html");
  EXPECT_TRUE(buffer.empty());
}

TEST(MessageBuffer, PartialChunkedResponseWaits) {
  Response response;
  response.chunked = true;
  response.headers.add("Transfer-Encoding", "chunked");
  response.body = "chunked payload body";
  response.trailers.add("P-volume", "vid=5");
  const auto wire = response.serialize();

  MessageBuffer buffer;
  ParseError error;
  buffer.append(std::string_view(wire).substr(0, wire.size() / 2));
  ASSERT_FALSE(buffer.try_parse_response(error).has_value());
  EXPECT_TRUE(error.incomplete) << error.message;
  buffer.append(std::string_view(wire).substr(wire.size() / 2));
  const auto parsed = buffer.try_parse_response(error);
  ASSERT_TRUE(parsed.has_value()) << error.message;
  EXPECT_EQ(parsed->body, "chunked payload body");
  EXPECT_EQ(*parsed->trailers.get("P-volume"), "vid=5");
}

TEST(MessageBuffer, MalformedIsNotIncomplete) {
  MessageBuffer buffer;
  buffer.append("BREW /coffee HTCPCP/1.0\r\n\r\n");
  ParseError error;
  EXPECT_FALSE(buffer.try_parse_request(error).has_value());
  EXPECT_FALSE(error.incomplete);
}

TEST(Connection, SingleExchange) {
  Connection connection;
  connection.send_request(get_request("/x.html"));

  ParseError error;
  const auto at_server = connection.receive_request(error);
  ASSERT_TRUE(at_server.has_value()) << error.message;
  EXPECT_EQ(at_server->target, "/x.html");

  connection.send_response(ok_response("hello"));
  const auto at_client = connection.receive_response(error);
  ASSERT_TRUE(at_client.has_value()) << error.message;
  EXPECT_EQ(at_client->body, "hello");
  EXPECT_EQ(connection.requests_sent(), 1u);
  EXPECT_EQ(connection.responses_sent(), 1u);
  EXPECT_GT(connection.bytes_to_server(), 0u);
  EXPECT_GT(connection.bytes_to_client(), 0u);
}

TEST(Connection, PipelinedRequestsKeepOrder) {
  Connection connection;
  for (int i = 0; i < 5; ++i) {
    connection.send_request(get_request("/r" + std::to_string(i)));
  }
  ParseError error;
  // The server drains all five in order, answering each.
  for (int i = 0; i < 5; ++i) {
    const auto request = connection.receive_request(error);
    ASSERT_TRUE(request.has_value()) << error.message;
    EXPECT_EQ(request->target, "/r" + std::to_string(i));
    connection.send_response(ok_response("body" + std::to_string(i)));
  }
  EXPECT_FALSE(connection.receive_request(error).has_value());
  EXPECT_TRUE(error.incomplete);
  // The client drains all five responses in order.
  for (int i = 0; i < 5; ++i) {
    const auto response = connection.receive_response(error);
    ASSERT_TRUE(response.has_value()) << error.message;
    EXPECT_EQ(response->body, "body" + std::to_string(i));
  }
  EXPECT_EQ(connection.pending_to_client(), 0u);
  EXPECT_EQ(connection.pending_to_server(), 0u);
}

TEST(Connection, PipelinedChunkedResponsesWithTrailers) {
  // Mixed plain/chunked responses on one persistent connection — the
  // embedded-images scenario from the paper's introduction.
  Connection connection;
  ParseError error;
  connection.send_request(get_request("/page.html"));
  connection.send_request(get_request("/img1.gif"));
  connection.send_request(get_request("/img2.gif"));

  util::InternTable paths;
  core::PiggybackMessage piggyback;
  piggyback.volume = 4;
  piggyback.elements.push_back({paths.intern("/img3.gif"), 100, 1000});

  int served = 0;
  while (const auto request = connection.receive_request(error)) {
    auto response = ok_response("body-of-" + request->target);
    if (served == 0) attach_pvolume(response, piggyback, paths);
    connection.send_response(response);
    ++served;
  }
  EXPECT_EQ(served, 3);

  util::InternTable proxy_paths;
  const auto first = connection.receive_response(error);
  ASSERT_TRUE(first.has_value()) << error.message;
  EXPECT_TRUE(first->chunked);
  const auto extracted = extract_pvolume(*first, proxy_paths);
  ASSERT_TRUE(extracted.has_value());
  EXPECT_EQ(extracted->volume, 4u);

  const auto second = connection.receive_response(error);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->body, "body-of-/img1.gif");
  const auto third = connection.receive_response(error);
  ASSERT_TRUE(third.has_value());
  EXPECT_EQ(third->body, "body-of-/img2.gif");
}

}  // namespace
}  // namespace piggyweb::http

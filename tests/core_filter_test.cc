#include "core/filter.h"

#include <gtest/gtest.h>

namespace piggyweb::core {
namespace {

// Fixed-table oracle for tests.
class FakeMeta final : public MetaOracle {
 public:
  void set(util::InternId resource, ResourceMeta meta) {
    table_[resource] = meta;
  }
  ResourceMeta lookup(util::InternId,
                      util::InternId resource) const override {
    const auto it = table_.find(resource);
    return it == table_.end() ? ResourceMeta{} : it->second;
  }

 private:
  std::unordered_map<util::InternId, ResourceMeta> table_;
};

VolumePrediction prediction_with(std::vector<util::InternId> resources,
                                 VolumeId volume = 1) {
  VolumePrediction p;
  p.volume = volume;
  p.resources = std::move(resources);
  return p;
}

VolumeRequest request_for(util::InternId path) {
  VolumeRequest r;
  r.server = 0;
  r.source = 0;
  r.path = path;
  r.time = {1000};
  return r;
}

TEST(ApplyFilter, PassesThroughByDefault) {
  FakeMeta meta;
  const auto message = apply_filter(prediction_with({10, 11, 12}),
                                    request_for(99), ProxyFilter{}, meta);
  EXPECT_EQ(message.volume, 1u);
  ASSERT_EQ(message.elements.size(), 3u);
  EXPECT_EQ(message.elements[0].resource, 10u);
}

TEST(ApplyFilter, FillsElementMetadata) {
  FakeMeta meta;
  meta.set(10, {.size = 2048,
                .last_modified = 875000000,
                .type = trace::ContentType::kImage,
                .access_count = 7});
  const auto message = apply_filter(prediction_with({10}), request_for(99),
                                    ProxyFilter{}, meta);
  ASSERT_EQ(message.elements.size(), 1u);
  EXPECT_EQ(message.elements[0].size, 2048u);
  EXPECT_EQ(message.elements[0].last_modified, 875000000);
}

TEST(ApplyFilter, DisabledFilterSuppresses) {
  FakeMeta meta;
  ProxyFilter filter;
  filter.enabled = false;
  const auto message = apply_filter(prediction_with({10}), request_for(99),
                                    filter, meta);
  EXPECT_TRUE(message.empty());
}

TEST(ApplyFilter, EmptyPredictionSuppresses) {
  FakeMeta meta;
  EXPECT_TRUE(
      apply_filter(VolumePrediction{}, request_for(99), ProxyFilter{}, meta)
          .empty());
}

TEST(ApplyFilter, RpvSuppressesMatchingVolume) {
  FakeMeta meta;
  ProxyFilter filter;
  filter.rpv = {3, 4};
  EXPECT_TRUE(apply_filter(prediction_with({10}, /*volume=*/3),
                           request_for(99), filter, meta)
                  .empty());
  EXPECT_FALSE(apply_filter(prediction_with({10}, /*volume=*/5),
                            request_for(99), filter, meta)
                   .empty());
}

TEST(ApplyFilter, NeverEchoesRequestedResource) {
  FakeMeta meta;
  const auto message = apply_filter(prediction_with({99, 10}),
                                    request_for(99), ProxyFilter{}, meta);
  ASSERT_EQ(message.elements.size(), 1u);
  EXPECT_EQ(message.elements[0].resource, 10u);
}

TEST(ApplyFilter, MaxElementsTruncatesBestFirst) {
  FakeMeta meta;
  ProxyFilter filter;
  filter.max_elements = 2;
  const auto message = apply_filter(prediction_with({10, 11, 12, 13}),
                                    request_for(99), filter, meta);
  ASSERT_EQ(message.elements.size(), 2u);
  EXPECT_EQ(message.elements[0].resource, 10u);
  EXPECT_EQ(message.elements[1].resource, 11u);
}

TEST(ApplyFilter, MaxElementsZeroSuppresses) {
  FakeMeta meta;
  ProxyFilter filter;
  filter.max_elements = 0;
  EXPECT_TRUE(apply_filter(prediction_with({10}), request_for(99), filter,
                           meta)
                  .empty());
}

TEST(ApplyFilter, ProbabilityThresholdFiltersElements) {
  FakeMeta meta;
  VolumePrediction p;
  p.volume = 1;
  p.resources = {10, 11, 12};
  p.probs = {0.9, 0.3, 0.15};
  ProxyFilter filter;
  filter.probability_threshold = 0.25;
  const auto message = apply_filter(p, request_for(99), filter, meta);
  ASSERT_EQ(message.elements.size(), 2u);
  EXPECT_EQ(message.elements[0].resource, 10u);
  EXPECT_EQ(message.elements[1].resource, 11u);
}

TEST(ApplyFilter, ProbabilityThresholdIgnoredWithoutProbs) {
  FakeMeta meta;
  ProxyFilter filter;
  filter.probability_threshold = 0.25;
  const auto message = apply_filter(prediction_with({10, 11}),
                                    request_for(99), filter, meta);
  EXPECT_EQ(message.elements.size(), 2u);
}

TEST(ApplyFilter, FillsElementProbabilities) {
  FakeMeta meta;
  VolumePrediction p;
  p.volume = 1;
  p.resources = {10, 11};
  p.probs = {0.9, 0.3};
  const auto message = apply_filter(p, request_for(99), ProxyFilter{}, meta);
  ASSERT_EQ(message.elements.size(), 2u);
  EXPECT_DOUBLE_EQ(message.elements[0].probability, 0.9);
  EXPECT_DOUBLE_EQ(message.elements[1].probability, 0.3);
}

TEST(ApplyFilter, NoProbsMeansZeroProbability) {
  FakeMeta meta;
  const auto message = apply_filter(prediction_with({10}), request_for(99),
                                    ProxyFilter{}, meta);
  ASSERT_EQ(message.elements.size(), 1u);
  EXPECT_DOUBLE_EQ(message.elements[0].probability, 0.0);
}

TEST(ApplyFilter, MaxSizeDropsLargeResources) {
  FakeMeta meta;
  meta.set(10, {.size = 100, .last_modified = 0,
                .type = trace::ContentType::kHtml, .access_count = 0});
  meta.set(11, {.size = 1'000'000, .last_modified = 0,
                .type = trace::ContentType::kHtml, .access_count = 0});
  ProxyFilter filter;
  filter.max_size = 1000;
  const auto message = apply_filter(prediction_with({10, 11}),
                                    request_for(99), filter, meta);
  ASSERT_EQ(message.elements.size(), 1u);
  EXPECT_EQ(message.elements[0].resource, 10u);
}

TEST(ApplyFilter, TypeFilterDropsImages) {
  // The §2.2 wireless-proxy scenario: no image piggybacks.
  FakeMeta meta;
  meta.set(10, {.size = 10, .last_modified = 0,
                .type = trace::ContentType::kImage, .access_count = 0});
  meta.set(11, {.size = 10, .last_modified = 0,
                .type = trace::ContentType::kHtml, .access_count = 0});
  ProxyFilter filter;
  filter.allow_image = false;
  const auto message = apply_filter(prediction_with({10, 11}),
                                    request_for(99), filter, meta);
  ASSERT_EQ(message.elements.size(), 1u);
  EXPECT_EQ(message.elements[0].resource, 11u);
}

TEST(ApplyFilter, MinAccessCountFilters) {
  FakeMeta meta;
  meta.set(10, {.size = 1, .last_modified = 0,
                .type = trace::ContentType::kHtml, .access_count = 3});
  meta.set(11, {.size = 1, .last_modified = 0,
                .type = trace::ContentType::kHtml, .access_count = 100});
  ProxyFilter filter;
  filter.min_access_count = 10;
  const auto message = apply_filter(prediction_with({10, 11}),
                                    request_for(99), filter, meta);
  ASSERT_EQ(message.elements.size(), 1u);
  EXPECT_EQ(message.elements[0].resource, 11u);
}

TEST(ApplyFilter, AllElementsFilteredMeansNoMessage) {
  FakeMeta meta;
  ProxyFilter filter;
  filter.min_access_count = 10;  // FakeMeta default count is 0
  const auto message = apply_filter(prediction_with({10, 11}),
                                    request_for(99), filter, meta);
  EXPECT_TRUE(message.empty());
  EXPECT_EQ(message.volume, kNoVolume);
}

TEST(ApplyFilter, TruncationAppliesAfterElementFilters) {
  // max_elements counts surviving elements, not candidates.
  FakeMeta meta;
  meta.set(10, {.size = 1, .last_modified = 0,
                .type = trace::ContentType::kHtml, .access_count = 0});
  meta.set(11, {.size = 1, .last_modified = 0,
                .type = trace::ContentType::kImage, .access_count = 0});
  meta.set(12, {.size = 1, .last_modified = 0,
                .type = trace::ContentType::kHtml, .access_count = 0});
  ProxyFilter filter;
  filter.allow_image = false;
  filter.max_elements = 2;
  const auto message = apply_filter(prediction_with({10, 11, 12}),
                                    request_for(99), filter, meta);
  ASSERT_EQ(message.elements.size(), 2u);
  EXPECT_EQ(message.elements[0].resource, 10u);
  EXPECT_EQ(message.elements[1].resource, 12u);
}

}  // namespace
}  // namespace piggyweb::core

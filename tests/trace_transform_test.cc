#include "trace/transform.h"

#include <gtest/gtest.h>

namespace piggyweb::trace {
namespace {

Trace sample_trace() {
  Trace t;
  t.add({0}, "c1", "s", "/a");
  t.add({100}, "c2", "s", "/b");
  t.add({200}, "c1", "s", "/a");
  t.add({300}, "c2", "s", "/c");
  t.add({400}, "c1", "s", "/a");
  t.sort_by_time();
  return t;
}

TEST(Transform, FilterKeepsInternIds) {
  const auto t = sample_trace();
  const auto filtered = filter_requests(
      t, [](const Request& r) { return r.time.value >= 200; });
  EXPECT_EQ(filtered.size(), 3u);
  // Same id space: ids resolve to the same strings.
  EXPECT_EQ(filtered.paths().size(), t.paths().size());
  EXPECT_EQ(filtered.paths().str(filtered.requests()[0].path), "/a");
  EXPECT_EQ(*filtered.paths().find("/c"), *t.paths().find("/c"));
}

TEST(Transform, SliceByTimeHalfOpen) {
  const auto t = sample_trace();
  const auto slice = slice_by_time(t, {100}, {300});
  ASSERT_EQ(slice.size(), 2u);
  EXPECT_EQ(slice.requests()[0].time.value, 100);
  EXPECT_EQ(slice.requests()[1].time.value, 200);
}

TEST(Transform, SplitAtFractionCoversEverything) {
  const auto t = sample_trace();
  const auto [train, test] = split_at_fraction(t, 0.5);
  EXPECT_EQ(train.size() + test.size(), t.size());
  EXPECT_GT(train.size(), 0u);
  EXPECT_GT(test.size(), 0u);
  // Every train request precedes every test request.
  EXPECT_LT(train.requests().back().time.value,
            test.requests().front().time.value);
}

TEST(Transform, SplitEmptyTrace) {
  Trace empty;
  const auto [train, test] = split_at_fraction(empty, 0.5);
  EXPECT_TRUE(train.empty());
  EXPECT_TRUE(test.empty());
}

TEST(Transform, FilterUnpopular) {
  const auto t = sample_trace();  // /a x3, /b x1, /c x1
  const auto popular = filter_unpopular(t, 2);
  EXPECT_EQ(popular.size(), 3u);
  for (const auto& r : popular.requests()) {
    EXPECT_EQ(popular.paths().str(r.path), "/a");
  }
}

TEST(Transform, FilterUnpopularKeepsEverythingAtOne) {
  const auto t = sample_trace();
  EXPECT_EQ(filter_unpopular(t, 1).size(), t.size());
}

TEST(Transform, FilterSource) {
  const auto t = sample_trace();
  const auto c1 = filter_source(t, *t.sources().find("c1"));
  EXPECT_EQ(c1.size(), 3u);
  for (const auto& r : c1.requests()) {
    EXPECT_EQ(c1.sources().str(r.source), "c1");
  }
}

TEST(Transform, VolumesTrainedOnSliceApplyToOther) {
  // The id-space guarantee that the train/test ablation depends on: a
  // path interned in the full trace has the same id in both halves.
  const auto t = sample_trace();
  const auto [train, test] = split_at_fraction(t, 0.5);
  const auto id_in_train = train.paths().find("/a");
  const auto id_in_test = test.paths().find("/a");
  ASSERT_TRUE(id_in_train.has_value());
  ASSERT_TRUE(id_in_test.has_value());
  EXPECT_EQ(*id_in_train, *id_in_test);
}

}  // namespace
}  // namespace piggyweb::trace

#include "server/volume_center.h"

#include <gtest/gtest.h>

namespace piggyweb::server {
namespace {

class VolumeCenterTest : public ::testing::Test {
 protected:
  VolumeCenterTest() : center_(make_config(), paths_) {}

  static volume::DirectoryVolumeConfig make_config() {
    volume::DirectoryVolumeConfig config;
    config.level = 1;
    return config;
  }

  core::PiggybackMessage observe(util::InternId server,
                                 std::string_view path, util::Seconds t,
                                 std::uint64_t size = 100,
                                 std::int64_t lm = 500) {
    core::ProxyFilter filter;
    return center_.observe(server, /*source=*/1, paths_.intern(path), {t},
                           size, lm, filter);
  }

  util::InternTable paths_;
  VolumeCenter center_;
};

TEST_F(VolumeCenterTest, FirstExchangeHasNothingToSay) {
  const auto message = observe(0, "/a/x.html", 0);
  EXPECT_TRUE(message.empty());
}

TEST_F(VolumeCenterTest, SecondExchangeInDirectoryPiggybacks) {
  observe(0, "/a/x.html", 0);
  const auto message = observe(0, "/a/y.html", 5);
  ASSERT_EQ(message.elements.size(), 1u);
  EXPECT_EQ(paths_.str(message.elements[0].resource), "/a/x.html");
  EXPECT_EQ(message.elements[0].size, 100u);
  EXPECT_EQ(message.elements[0].last_modified, 500);
}

TEST_F(VolumeCenterTest, ServersIsolated) {
  observe(0, "/a/x.html", 0);
  const auto cross = observe(7, "/a/y.html", 5);
  EXPECT_TRUE(cross.empty());  // server 7 never saw /a/x.html
  EXPECT_EQ(center_.stats().servers_tracked, 2u);
}

TEST_F(VolumeCenterTest, LearnsMetadataFromTraffic) {
  observe(0, "/a/x.gif", 0, /*size=*/2048, /*lm=*/700);
  const auto meta = center_.meta().lookup(0, *paths_.find("/a/x.gif"));
  EXPECT_EQ(meta.size, 2048u);
  EXPECT_EQ(meta.last_modified, 700);
  EXPECT_EQ(meta.type, trace::ContentType::kImage);
  EXPECT_EQ(meta.access_count, 1u);
}

TEST_F(VolumeCenterTest, MetadataTracksNewestLastModified) {
  observe(0, "/a/x.html", 0, 100, 700);
  observe(0, "/a/x.html", 10, 100, 600);  // older LM must not regress
  const auto meta = center_.meta().lookup(0, *paths_.find("/a/x.html"));
  EXPECT_EQ(meta.last_modified, 700);
  EXPECT_EQ(meta.access_count, 2u);
}

TEST_F(VolumeCenterTest, FilterAppliesToInjectedPiggyback) {
  observe(0, "/a/x.html", 0);
  observe(0, "/a/y.html", 5);
  core::ProxyFilter filter;
  filter.enabled = false;
  const auto suppressed = center_.observe(
      0, 1, paths_.intern("/a/z.html"), {10}, 100, 500, filter);
  EXPECT_TRUE(suppressed.empty());
}

TEST_F(VolumeCenterTest, StatsCountInjections) {
  observe(0, "/a/x.html", 0);
  observe(0, "/a/y.html", 5);
  observe(0, "/a/z.html", 8);
  const auto stats = center_.stats();
  EXPECT_EQ(stats.exchanges_observed, 3u);
  EXPECT_EQ(stats.piggybacks_injected, 2u);
  EXPECT_GE(stats.elements_injected, 3u);  // 1 then 2
}

TEST_F(VolumeCenterTest, MultiServerPiggybacksIndependently) {
  observe(0, "/a/x.html", 0);
  observe(7, "/a/p.html", 1);
  const auto m0 = observe(0, "/a/y.html", 5);
  const auto m7 = observe(7, "/a/q.html", 6);
  ASSERT_EQ(m0.elements.size(), 1u);
  ASSERT_EQ(m7.elements.size(), 1u);
  EXPECT_EQ(paths_.str(m0.elements[0].resource), "/a/x.html");
  EXPECT_EQ(paths_.str(m7.elements[0].resource), "/a/p.html");
}

}  // namespace
}  // namespace piggyweb::server

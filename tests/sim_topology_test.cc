// Structural tests for declarative topologies: validation, depth/leaf/root
// queries, and the uniform-tree preset generator.
#include <gtest/gtest.h>

#include "sim/topology.h"

namespace piggyweb {
namespace {

sim::UniformTreeSpec tree_spec(int depth, int fanout) {
  sim::UniformTreeSpec spec;
  spec.depth = depth;
  spec.fanout = fanout;
  spec.leaf_cache.capacity_bytes = 2ULL * 1024 * 1024;
  spec.root_cache.capacity_bytes = 32ULL * 1024 * 1024;
  return spec;
}

TEST(Topology, UniformTreeShapes) {
  // depth 1: a single origin-facing proxy that is both root and leaf.
  const auto single = sim::uniform_tree_topology(tree_spec(1, 4));
  EXPECT_EQ(single.nodes.size(), 1u);
  EXPECT_EQ(single.nodes[0].parent, -1);
  EXPECT_EQ(sim::leaf_indices(single), std::vector<int>{0});
  EXPECT_EQ(sim::root_indices(single), std::vector<int>{0});

  // depth 3, fanout 2: 1 + 2 + 4 nodes.
  const auto tree = sim::uniform_tree_topology(tree_spec(3, 2));
  sim::validate_topology(tree);
  ASSERT_EQ(tree.nodes.size(), 7u);
  EXPECT_EQ(sim::depth_of(tree, 0), 0);
  EXPECT_EQ(sim::root_indices(tree), std::vector<int>{0});
  const auto leaves = sim::leaf_indices(tree);
  ASSERT_EQ(leaves.size(), 4u);
  for (const int leaf : leaves) EXPECT_EQ(sim::depth_of(tree, leaf), 2);
  // Root faces the origins behind one aggregated source id.
  EXPECT_TRUE(tree.nodes[0].upstream_source.has_value());
  // Capacity interpolates from root down to leaves.
  EXPECT_EQ(tree.nodes[0].cache.capacity_bytes, 32ULL * 1024 * 1024);
  EXPECT_EQ(
      tree.nodes[static_cast<std::size_t>(leaves[0])].cache.capacity_bytes,
      2ULL * 1024 * 1024);
}

TEST(Topology, UniformTreeDepthFour) {
  const auto tree = sim::uniform_tree_topology(tree_spec(4, 3));
  sim::validate_topology(tree);
  EXPECT_EQ(tree.nodes.size(), 1u + 3u + 9u + 27u);
  EXPECT_EQ(sim::leaf_indices(tree).size(), 27u);
  // Inner levels interpolate strictly between the endpoint capacities.
  const auto mid = tree.nodes[1].cache.capacity_bytes;  // depth-1 node
  EXPECT_LT(mid, tree.nodes[0].cache.capacity_bytes);
  EXPECT_GT(mid, 2ULL * 1024 * 1024);
}

TEST(Topology, ForestWithTwoRoots) {
  sim::Topology forest;
  forest.nodes.resize(4);
  forest.nodes[0].parent = -1;
  forest.nodes[1].parent = -1;
  forest.nodes[2].parent = 0;
  forest.nodes[3].parent = 1;
  sim::validate_topology(forest);
  EXPECT_EQ(sim::root_indices(forest), (std::vector<int>{0, 1}));
  EXPECT_EQ(sim::leaf_indices(forest), (std::vector<int>{2, 3}));
  EXPECT_EQ(sim::depth_of(forest, 3), 1);
}

TEST(Topology, ValidateRejectsCycle) {
  sim::Topology bad;
  bad.nodes.resize(2);
  bad.nodes[0].parent = 1;
  bad.nodes[1].parent = 0;
  EXPECT_DEATH(sim::validate_topology(bad), "");
}

TEST(Topology, ValidateRejectsOutOfRangeParent) {
  sim::Topology bad;
  bad.nodes.resize(1);
  bad.nodes[0].parent = 5;
  EXPECT_DEATH(sim::validate_topology(bad), "");
}

}  // namespace
}  // namespace piggyweb

#include "util/intern.h"

#include <string>

#include <gtest/gtest.h>

namespace piggyweb::util {
namespace {

TEST(InternTable, DenseSequentialIds) {
  InternTable table;
  EXPECT_EQ(table.intern("a"), 0u);
  EXPECT_EQ(table.intern("b"), 1u);
  EXPECT_EQ(table.intern("c"), 2u);
  EXPECT_EQ(table.size(), 3u);
}

TEST(InternTable, InterningTwiceReturnsSameId) {
  InternTable table;
  const auto id = table.intern("/a/b.html");
  EXPECT_EQ(table.intern("/a/b.html"), id);
  EXPECT_EQ(table.size(), 1u);
}

TEST(InternTable, RoundTrip) {
  InternTable table;
  const auto id = table.intern("/products/index.html");
  EXPECT_EQ(table.str(id), "/products/index.html");
}

TEST(InternTable, FindMissing) {
  InternTable table;
  table.intern("present");
  EXPECT_FALSE(table.find("absent").has_value());
  ASSERT_TRUE(table.find("present").has_value());
  EXPECT_EQ(*table.find("present"), 0u);
}

TEST(InternTable, EmptyStringIsValid) {
  InternTable table;
  const auto id = table.intern("");
  EXPECT_EQ(table.str(id), "");
  EXPECT_TRUE(table.find("").has_value());
}

TEST(InternTable, StableViewsAcrossGrowth) {
  InternTable table;
  const auto id0 = table.intern("first");
  // Force plenty of growth; the string_view for id0 must stay valid
  // because views point into stable per-string storage.
  for (int i = 0; i < 10000; ++i) table.intern("s" + std::to_string(i));
  EXPECT_EQ(table.str(id0), "first");
  EXPECT_EQ(table.size(), 10001u);
}

TEST(InternTable, ManyDistinctStrings) {
  InternTable table;
  for (int i = 0; i < 5000; ++i) {
    EXPECT_EQ(table.intern("k" + std::to_string(i)),
              static_cast<InternId>(i));
  }
  for (int i = 0; i < 5000; ++i) {
    EXPECT_EQ(table.str(static_cast<InternId>(i)),
              "k" + std::to_string(i));
  }
}

TEST(InternTable, EmptyTable) {
  InternTable table;
  EXPECT_TRUE(table.empty());
  EXPECT_EQ(table.size(), 0u);
}

}  // namespace
}  // namespace piggyweb::util

// Streaming replay (trace/stream.h) and BinaryTraceReader::read_batch
// edge cases: empty containers, windows spanning end-of-trace, out-spans
// smaller/larger than the remainder, and the randomized differential the
// whole batch-cursor API rests on — streaming batches, concatenated in
// order, are exactly the materialized Trace. Plus the TraceView
// implementations themselves: window contents, string-table views,
// content fingerprints, open_trace_view backing selection, LimitedTraceView
// clamping, and the windowed CLF writer.
#include "trace/stream.h"

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "persist/codec.h"
#include "trace/binary.h"
#include "trace/clf.h"
#include "util/rng.h"

namespace piggyweb {
namespace {

trace::Trace make_trace() {
  trace::Trace t;
  t.add({100}, "10.0.0.1", "www.a.org", "/index.html", trace::Method::kGet,
        200, 1024, 90);
  t.add({105}, "10.0.0.2", "www.a.org", "/img/logo.gif", trace::Method::kGet,
        200, 4096);
  t.add({110}, "10.0.0.1", "www.b.org", "/form", trace::Method::kPost, 302,
        0, -1);
  t.add({120}, "10.0.0.3", "www.a.org", "/index.html", trace::Method::kHead,
        304, 0, 90);
  t.add({130}, "10.0.0.2", "www.b.org", "/data.bin", trace::Method::kGet,
        404, 17, 125);
  return t;
}

trace::Trace make_random_trace(std::uint64_t seed, std::size_t requests) {
  util::Rng rng(seed);
  trace::Trace t;
  std::int64_t now = 1000;
  for (std::size_t i = 0; i < requests; ++i) {
    now += static_cast<std::int64_t>(rng.below(30));
    const auto src = "10.0.0." + std::to_string(rng.below(12));
    const auto server = "www." + std::to_string(rng.below(3)) + ".org";
    const auto path = "/dir" + std::to_string(rng.below(5)) + "/file" +
                      std::to_string(rng.below(40)) + ".html";
    t.add({now}, src, server, path, trace::Method::kGet,
          static_cast<std::uint16_t>(200 + 100 * rng.below(3)),
          rng.below(10000), static_cast<std::int64_t>(rng.below(2000)) - 1);
  }
  return t;
}

void expect_request_eq(const trace::Request& x, const trace::Request& y,
                       std::size_t i) {
  EXPECT_EQ(x.time, y.time) << "request " << i;
  EXPECT_EQ(x.source, y.source) << "request " << i;
  EXPECT_EQ(x.server, y.server) << "request " << i;
  EXPECT_EQ(x.path, y.path) << "request " << i;
  EXPECT_EQ(x.method, y.method) << "request " << i;
  EXPECT_EQ(x.status, y.status) << "request " << i;
  EXPECT_EQ(x.size, y.size) << "request " << i;
  EXPECT_EQ(x.last_modified, y.last_modified) << "request " << i;
}

class TraceStreamFiles : public ::testing::Test {
 protected:
  std::string path(const std::string& name) const {
    return ::testing::TempDir() + "trace_stream_" + name;
  }

  std::string write_binary(const trace::Trace& t, const std::string& name) {
    const auto file = path(name);
    std::string error;
    EXPECT_TRUE(persist::write_file_bytes(
        file, trace::serialize_binary_trace(t), error))
        << error;
    return file;
  }
};

// ---------------------------------------------------------------------------
// read_batch edge cases

TEST(ReadBatch, EmptyTraceDecodesNothing) {
  const auto bytes = trace::serialize_binary_trace(trace::Trace{});
  std::string error;
  const auto reader = trace::BinaryTraceReader::open(bytes, error);
  ASSERT_TRUE(reader.has_value()) << error;
  EXPECT_EQ(reader->request_count(), 0u);
  std::vector<trace::Request> out(4);
  EXPECT_EQ(reader->read_batch(0, out), 0u);
  EXPECT_EQ(reader->read_batch(7, out), 0u);
}

TEST(ReadBatch, EmptyOutSpanDecodesNothing) {
  const auto bytes = trace::serialize_binary_trace(make_trace());
  std::string error;
  const auto reader = trace::BinaryTraceReader::open(bytes, error);
  ASSERT_TRUE(reader.has_value()) << error;
  EXPECT_EQ(reader->read_batch(0, {}), 0u);
}

TEST(ReadBatch, WindowSpanningEndOfTraceIsClamped) {
  const auto source = make_trace();  // 5 requests
  const auto bytes = trace::serialize_binary_trace(source);
  std::string error;
  const auto reader = trace::BinaryTraceReader::open(bytes, error);
  ASSERT_TRUE(reader.has_value()) << error;

  std::vector<trace::Request> out(5);
  // Begin inside, span larger than the remainder: decodes the tail only.
  EXPECT_EQ(reader->read_batch(3, out), 2u);
  expect_request_eq(out[0], source.requests()[3], 3);
  expect_request_eq(out[1], source.requests()[4], 4);
  // Begin exactly at the end, and past it: nothing.
  EXPECT_EQ(reader->read_batch(5, out), 0u);
  EXPECT_EQ(reader->read_batch(100, out), 0u);
}

TEST(ReadBatch, OutSpanSmallerThanRemainderFills) {
  const auto source = make_trace();
  const auto bytes = trace::serialize_binary_trace(source);
  std::string error;
  const auto reader = trace::BinaryTraceReader::open(bytes, error);
  ASSERT_TRUE(reader.has_value()) << error;

  std::vector<trace::Request> out(2);
  EXPECT_EQ(reader->read_batch(1, out), 2u);
  expect_request_eq(out[0], source.requests()[1], 1);
  expect_request_eq(out[1], source.requests()[2], 2);
}

TEST(ReadBatch, RandomBatchesConcatenateToMaterializedTrace) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const auto source = make_random_trace(seed, 257);
    const auto bytes = trace::serialize_binary_trace(source);
    std::string error;
    const auto reader = trace::BinaryTraceReader::open(bytes, error);
    ASSERT_TRUE(reader.has_value()) << error;

    trace::Trace materialized;
    ASSERT_TRUE(reader->load(materialized, error)) << error;
    ASSERT_EQ(materialized.size(), source.size());

    // Decode with a random batch-size schedule and concatenate.
    util::Rng rng(seed ^ 0xBA7C4);
    std::vector<trace::Request> got;
    std::vector<trace::Request> batch;
    std::size_t begin = 0;
    while (begin < reader->request_count()) {
      batch.assign(1 + rng.below(64), trace::Request{});
      const auto n = reader->read_batch(begin, batch);
      ASSERT_GT(n, 0u);
      got.insert(got.end(), batch.begin(),
                 batch.begin() + static_cast<std::ptrdiff_t>(n));
      begin += n;
    }
    ASSERT_EQ(got.size(), materialized.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      expect_request_eq(got[i], materialized.requests()[i], i);
    }
  }
}

// ---------------------------------------------------------------------------
// TraceView implementations

TEST(MaterializedView, WindowsAreSubspans) {
  const auto source = make_trace();
  trace::MaterializedTraceView view(source);
  EXPECT_EQ(view.request_count(), source.size());
  const auto window = view.window(1, 3);
  ASSERT_EQ(window.size(), 3u);
  EXPECT_EQ(window.data(), source.requests().data() + 1);
  EXPECT_EQ(view.content_fingerprint(),
            trace::trace_content_fingerprint(source));
  EXPECT_EQ(view.paths().size(), source.paths().size());
}

TEST_F(TraceStreamFiles, StreamingSourceMatchesMaterialized) {
  const auto source = make_random_trace(7, 100);
  const auto file = write_binary(source, "stream_match.trc");
  std::string error;
  auto streaming = trace::StreamingTraceSource::open(file, error);
  ASSERT_NE(streaming, nullptr) << error;

  EXPECT_EQ(streaming->request_count(), source.size());
  EXPECT_EQ(streaming->content_fingerprint(),
            trace::trace_content_fingerprint(source));

  // String tables resolve id-for-id against the source intern tables.
  ASSERT_EQ(streaming->paths().size(), source.paths().size());
  for (std::size_t id = 0; id < source.paths().size(); ++id) {
    EXPECT_EQ(streaming->paths().str(static_cast<util::InternId>(id)),
              source.paths().str(static_cast<util::InternId>(id)));
  }
  ASSERT_EQ(streaming->sources().size(), source.sources().size());
  ASSERT_EQ(streaming->servers().size(), source.servers().size());

  // Windows decode the same requests; the buffer is reused across calls.
  const auto w1 = streaming->window(0, 60);
  ASSERT_EQ(w1.size(), 60u);
  for (std::size_t i = 0; i < w1.size(); ++i) {
    expect_request_eq(w1[i], source.requests()[i], i);
  }
  const auto w2 = streaming->window(60, 40);
  ASSERT_EQ(w2.size(), 40u);
  for (std::size_t i = 0; i < w2.size(); ++i) {
    expect_request_eq(w2[i], source.requests()[60 + i], 60 + i);
  }
  // Revisiting an earlier window works (the cursor is random-access).
  const auto w3 = streaming->window(10, 5);
  ASSERT_EQ(w3.size(), 5u);
  expect_request_eq(w3[0], source.requests()[10], 10);
}

TEST_F(TraceStreamFiles, StreamingOpenRejectsCorruptContainer) {
  const auto source = make_trace();
  auto bytes = trace::serialize_binary_trace(source);
  bytes[bytes.size() / 2] ^= 0x40;  // flip a payload bit
  const auto file = path("corrupt.trc");
  std::string error;
  ASSERT_TRUE(persist::write_file_bytes(file, bytes, error)) << error;
  auto streaming = trace::StreamingTraceSource::open(file, error);
  EXPECT_EQ(streaming, nullptr);
  EXPECT_FALSE(error.empty());
}

TEST_F(TraceStreamFiles, OpenTraceViewStreamsBinary) {
  const auto source = make_trace();
  const auto file = write_binary(source, "view_binary.trc");
  trace::TraceLoadStats stats;
  std::string error;
  auto view = trace::open_trace_view(file, {}, stats, error);
  ASSERT_NE(view, nullptr) << error;
  EXPECT_EQ(stats.format, trace::TraceFormat::kBinary);
  EXPECT_EQ(stats.backing, trace::TraceBacking::kStream);
  EXPECT_EQ(stats.requests, source.size());
  EXPECT_EQ(view->request_count(), source.size());
  EXPECT_EQ(view->content_fingerprint(),
            trace::trace_content_fingerprint(source));
}

TEST_F(TraceStreamFiles, OpenTraceViewMaterializesClf) {
  const auto file = path("view_clf.log");
  {
    trace::Trace t;
    t.add({100}, "10.0.0.1", "server", "/index.html");
    t.add({130}, "10.0.0.2", "server", "/about.html");
    std::ofstream out(file);
    trace::write_clf(out, t);
  }
  trace::TraceLoadStats stats;
  std::string error;
  auto view = trace::open_trace_view(file, {}, stats, error);
  ASSERT_NE(view, nullptr) << error;
  EXPECT_EQ(stats.format, trace::TraceFormat::kClf);
  EXPECT_EQ(stats.backing, trace::TraceBacking::kMmap);
  EXPECT_EQ(view->request_count(), 2u);
}

TEST(OpenTraceView, SyntheticIsGenerated) {
  trace::TraceLoadStats stats;
  std::string error;
  auto view = trace::open_trace_view("synthetic:aiusa:0.01", {}, stats, error);
  ASSERT_NE(view, nullptr) << error;
  EXPECT_EQ(stats.backing, trace::TraceBacking::kGenerated);
  EXPECT_GT(view->request_count(), 0u);
}

TEST(LimitedView, ClampsAndDelegates) {
  const auto source = make_trace();
  trace::MaterializedTraceView inner(source);
  trace::LimitedTraceView limited(inner, 3);
  EXPECT_EQ(limited.request_count(), 3u);
  const auto window = limited.window(1, 2);
  ASSERT_EQ(window.size(), 2u);
  expect_request_eq(window[0], source.requests()[1], 1);
  EXPECT_EQ(limited.paths().size(), source.paths().size());

  // A limit past the end clamps to the inner count.
  trace::LimitedTraceView all(inner, 100);
  EXPECT_EQ(all.request_count(), source.size());
}

TEST_F(TraceStreamFiles, WindowedClfWriterMatchesTraceWriter) {
  const auto source = make_random_trace(11, 150);
  std::ostringstream from_trace;
  trace::write_clf(from_trace, source);

  const auto file = write_binary(source, "clf_writer.trc");
  std::string error;
  auto streaming = trace::StreamingTraceSource::open(file, error);
  ASSERT_NE(streaming, nullptr) << error;
  std::ostringstream from_view;
  trace::write_clf(from_view, *streaming);
  EXPECT_EQ(from_trace.str(), from_view.str());
}

}  // namespace
}  // namespace piggyweb

// Snapshot container codec: primitive round trips, container structure,
// and exhaustive rejection of malformed files — every truncation length,
// plus bit flips, duplicate sections, and trailing garbage. The reader
// must return a clean error for all of them, never crash.
#include "persist/codec.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <string>

#include "util/rng.h"

namespace piggyweb::persist {
namespace {

TEST(ByteCodec, PrimitiveRoundTrip) {
  ByteWriter out;
  out.u8(0xab);
  out.u16(0xbeef);
  out.u32(0xdeadbeef);
  out.u64(0x0123456789abcdefULL);
  out.i64(-42);
  out.i64(std::numeric_limits<std::int64_t>::min());
  out.f64(3.141592653589793);
  out.f64(-0.0);
  out.str("hello");
  out.str(std::string("nul\0byte", 8));
  out.str("");

  ByteReader in(out.bytes());
  EXPECT_EQ(in.u8(), 0xab);
  EXPECT_EQ(in.u16(), 0xbeef);
  EXPECT_EQ(in.u32(), 0xdeadbeefU);
  EXPECT_EQ(in.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(in.i64(), -42);
  EXPECT_EQ(in.i64(), std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(in.f64(), 3.141592653589793);
  const double negative_zero = in.f64();
  EXPECT_EQ(negative_zero, 0.0);
  EXPECT_TRUE(std::signbit(negative_zero));
  EXPECT_EQ(in.str(), "hello");
  EXPECT_EQ(in.str(), std::string_view("nul\0byte", 8));
  EXPECT_EQ(in.str(), "");
  EXPECT_TRUE(in.ok());
  EXPECT_TRUE(in.at_end());
}

TEST(ByteCodec, NanSurvivesBitExactly) {
  ByteWriter out;
  out.f64(std::numeric_limits<double>::quiet_NaN());
  ByteReader in(out.bytes());
  EXPECT_TRUE(std::isnan(in.f64()));
  EXPECT_TRUE(in.ok());
}

TEST(ByteCodec, ReadPastEndIsStickyFailure) {
  ByteWriter out;
  out.u16(7);
  ByteReader in(out.bytes());
  EXPECT_EQ(in.u64(), 0u);  // needs 8 bytes, only 2 present
  EXPECT_FALSE(in.ok());
  EXPECT_EQ(in.u8(), 0u);  // still failed
  EXPECT_FALSE(in.ok());
}

TEST(ByteCodec, FitsRejectsOversizedCounts) {
  ByteWriter out;
  out.u64(123);
  ByteReader in(out.bytes());
  EXPECT_TRUE(in.fits(1, 8));
  EXPECT_FALSE(in.fits(std::numeric_limits<std::uint64_t>::max(), 8));
  EXPECT_FALSE(in.ok());
}

std::string two_section_file() {
  SnapshotWriter writer;
  ByteWriter a;
  a.u64(1);
  a.str("alpha");
  writer.add_section("alpha", a.take());
  ByteWriter b;
  b.u64(2);
  writer.add_section("beta", b.take());
  return writer.finish();
}

TEST(SnapshotContainer, RoundTrip) {
  const auto file = two_section_file();
  EXPECT_EQ(file.substr(0, 8), kSnapshotMagic);
  std::string error;
  const auto reader = SnapshotReader::parse(file, error);
  ASSERT_TRUE(reader.has_value()) << error;
  ASSERT_EQ(reader->sections().size(), 2u);
  const auto* alpha = reader->find("alpha");
  ASSERT_NE(alpha, nullptr);
  ByteReader in(alpha->payload);
  EXPECT_EQ(in.u64(), 1u);
  EXPECT_EQ(in.str(), "alpha");
  EXPECT_TRUE(in.ok() && in.at_end());
  EXPECT_NE(reader->find("beta"), nullptr);
  EXPECT_EQ(reader->find("gamma"), nullptr);
}

TEST(SnapshotContainer, EmptySectionListIsValid) {
  const auto file = SnapshotWriter().finish();
  std::string error;
  const auto reader = SnapshotReader::parse(file, error);
  ASSERT_TRUE(reader.has_value()) << error;
  EXPECT_TRUE(reader->sections().empty());
}

TEST(SnapshotContainer, EveryTruncationIsRejected) {
  const auto file = two_section_file();
  for (std::size_t len = 0; len < file.size(); ++len) {
    std::string error;
    EXPECT_FALSE(SnapshotReader::parse(file.substr(0, len), error).has_value())
        << "accepted truncation to " << len << " bytes";
    EXPECT_FALSE(error.empty());
  }
}

TEST(SnapshotContainer, EverySingleBitFlipIsRejected) {
  const auto file = two_section_file();
  for (std::size_t byte = 0; byte < file.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      auto corrupt = file;
      corrupt[byte] = static_cast<char>(corrupt[byte] ^ (1 << bit));
      std::string error;
      EXPECT_FALSE(SnapshotReader::parse(corrupt, error).has_value())
          << "accepted flip of byte " << byte << " bit " << bit;
    }
  }
}

TEST(SnapshotContainer, TrailingGarbageIsRejected) {
  auto file = two_section_file();
  file += '\0';
  std::string error;
  EXPECT_FALSE(SnapshotReader::parse(file, error).has_value());
}

TEST(SnapshotContainer, WrongMagicAndVersionAreRejected) {
  auto bad_magic = two_section_file();
  bad_magic[0] = 'X';
  std::string error;
  EXPECT_FALSE(SnapshotReader::parse(bad_magic, error).has_value());

  // Bump the version field and re-fix the footer so only the version is
  // wrong — the reader must reject on version, not checksum.
  auto bad_version = two_section_file();
  bad_version[8] = 2;
  bad_version.resize(bad_version.size() - 8);
  ByteWriter footer;
  footer.u64(snapshot_checksum(bad_version));
  bad_version += footer.bytes();
  EXPECT_FALSE(SnapshotReader::parse(bad_version, error).has_value());
  EXPECT_NE(error.find("version"), std::string::npos) << error;
}

TEST(SnapshotContainer, DuplicateSectionIsRejected) {
  // Hand-build a file with two sections of the same name (the writer
  // refuses, so splice the body and re-checksum).
  ByteWriter body;
  body.u32(kSnapshotVersion);
  body.u32(2);
  for (int i = 0; i < 2; ++i) {
    ByteWriter payload;
    payload.u64(static_cast<std::uint64_t>(i));
    const auto bytes = payload.take();
    body.u16(3);
    // name
    body.u8('d');
    body.u8('u');
    body.u8('p');
    body.u64(bytes.size());
    body.u64(snapshot_checksum(bytes));
    for (const char c : bytes) body.u8(static_cast<std::uint8_t>(c));
  }
  std::string file(kSnapshotMagic);
  file += body.bytes();
  ByteWriter footer;
  footer.u64(snapshot_checksum(file));
  file += footer.bytes();

  std::string error;
  EXPECT_FALSE(SnapshotReader::parse(file, error).has_value());
  EXPECT_NE(error.find("duplicate"), std::string::npos) << error;
}

TEST(SnapshotContainer, RandomBytesNeverParse) {
  util::Rng rng(0x5eed0c0dec);
  for (int trial = 0; trial < 200; ++trial) {
    std::string junk(rng.below(512), '\0');
    for (auto& c : junk) c = static_cast<char>(rng.below(256));
    std::string error;
    // Random bytes parsing successfully would need a forged 64-bit
    // footer; treat any acceptance as failure.
    EXPECT_FALSE(SnapshotReader::parse(junk, error).has_value());
  }
}

TEST(SnapshotChecksum, HexFormat) {
  EXPECT_EQ(checksum_hex(0), "0x0000000000000000");
  EXPECT_EQ(checksum_hex(0xdeadbeef12345678ULL), "0xdeadbeef12345678");
}

TEST(SnapshotFiles, WriteReadRoundTrip) {
  const auto file = two_section_file();
  const std::string path = "codec_test_roundtrip.snap";
  std::string error;
  ASSERT_TRUE(write_file_bytes(path, file, error)) << error;
  const auto back = read_file_bytes(path, error);
  ASSERT_TRUE(back.has_value()) << error;
  EXPECT_EQ(*back, file);
  std::remove(path.c_str());
}

TEST(SnapshotFiles, MissingFileReportsError) {
  std::string error;
  EXPECT_FALSE(read_file_bytes("does_not_exist.snap", error).has_value());
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace piggyweb::persist

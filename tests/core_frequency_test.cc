#include "core/frequency.h"

#include <gtest/gtest.h>

namespace piggyweb::core {
namespace {

TEST(AlwaysEnable, AlwaysTrue) {
  AlwaysEnable policy;
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(policy.should_enable(1, {i}));
  }
  EXPECT_STREQ(policy.name(), "always");
}

TEST(RandomEnable, ZeroNeverEnables) {
  RandomEnable policy(0.0, 42);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(policy.should_enable(1, {i}));
}

TEST(RandomEnable, OneAlwaysEnables) {
  RandomEnable policy(1.0, 42);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(policy.should_enable(1, {i}));
}

TEST(RandomEnable, RateApproximatelyHonored) {
  RandomEnable policy(0.25, 7);
  int enabled = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) enabled += policy.should_enable(1, {i});
  EXPECT_NEAR(static_cast<double>(enabled) / kN, 0.25, 0.02);
}

TEST(MinIntervalEnable, FirstRequestEnabled) {
  MinIntervalEnable policy(60);
  EXPECT_TRUE(policy.should_enable(1, {0}));
}

TEST(MinIntervalEnable, SuppressesWithinInterval) {
  MinIntervalEnable policy(60);
  policy.on_piggyback(1, {100});
  EXPECT_FALSE(policy.should_enable(1, {130}));
  EXPECT_FALSE(policy.should_enable(1, {159}));
  EXPECT_TRUE(policy.should_enable(1, {160}));  // >= interval
}

TEST(MinIntervalEnable, PerServerState) {
  MinIntervalEnable policy(60);
  policy.on_piggyback(1, {100});
  EXPECT_FALSE(policy.should_enable(1, {110}));
  EXPECT_TRUE(policy.should_enable(2, {110}));  // other server unaffected
}

TEST(MinIntervalEnable, OnlyPiggybacksArm) {
  // should_enable alone must not arm the timer — only observed piggybacks
  // do (otherwise a burst of suppressed requests would stay suppressed
  // forever).
  MinIntervalEnable policy(60);
  EXPECT_TRUE(policy.should_enable(1, {0}));
  EXPECT_TRUE(policy.should_enable(1, {1}));
  policy.on_piggyback(1, {1});
  EXPECT_FALSE(policy.should_enable(1, {2}));
}

}  // namespace
}  // namespace piggyweb::core

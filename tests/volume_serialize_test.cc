#include "volume/serialize.h"

#include <sstream>

#include <gtest/gtest.h>

#include "volume/pair_counter.h"

namespace piggyweb::volume {
namespace {

ProbabilityVolumeSet sample_set(util::InternTable& paths) {
  ProbabilityVolumeSet set;
  set.add_volume(paths.intern("/a/page.html"),
                 {{paths.intern("/a/img.gif"), 0.875, 0.5},
                  {paths.intern("/a/next.html"), 0.25, 0.1}});
  set.add_volume(paths.intern("/b/doc.pdf"),
                 {{paths.intern("/b/toc.html"), 1.0, 1.0}});
  return set;
}

TEST(VolumeSerialize, SaveProducesHeaderAndVolumes) {
  util::InternTable paths;
  const auto set = sample_set(paths);
  std::ostringstream out;
  save_volume_set(out, set, paths);
  const auto text = out.str();
  EXPECT_EQ(text.rfind("piggyweb-volumes 1\n", 0), 0u);
  EXPECT_NE(text.find("volume /a/page.html 2"), std::string::npos);
  EXPECT_NE(text.find("volume /b/doc.pdf 1"), std::string::npos);
  EXPECT_NE(text.find("/a/img.gif 0.875 0.5"), std::string::npos);
}

TEST(VolumeSerialize, RoundTripPreservesEntries) {
  util::InternTable paths;
  const auto original = sample_set(paths);
  std::ostringstream out;
  save_volume_set(out, original, paths);

  std::istringstream in(out.str());
  util::InternTable loaded_paths;
  std::string error;
  const auto loaded = load_volume_set(in, loaded_paths, error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->volume_count(), original.volume_count());

  const auto page = loaded_paths.find("/a/page.html");
  ASSERT_TRUE(page.has_value());
  const auto* entries = loaded->volume_of(*page);
  ASSERT_NE(entries, nullptr);
  ASSERT_EQ(entries->size(), 2u);
  EXPECT_EQ(loaded_paths.str((*entries)[0].resource), "/a/img.gif");
  EXPECT_DOUBLE_EQ((*entries)[0].probability, 0.875);
  EXPECT_DOUBLE_EQ((*entries)[0].effectiveness, 0.5);
  EXPECT_DOUBLE_EQ((*entries)[1].probability, 0.25);
}

TEST(VolumeSerialize, DeterministicOutput) {
  util::InternTable paths;
  const auto set = sample_set(paths);
  std::ostringstream a, b;
  save_volume_set(a, set, paths);
  save_volume_set(b, set, paths);
  EXPECT_EQ(a.str(), b.str());
}

TEST(VolumeSerialize, RoundTripOfBuiltVolumes) {
  // Build from a real trace, round-trip, and compare per-resource
  // entries (ids may be renumbered; contents must survive).
  trace::Trace t;
  for (int i = 0; i < 10; ++i) {
    const auto base = static_cast<util::Seconds>(i * 10000);
    t.add({base}, "c1", "server", "/page.html");
    t.add({base + 5}, "c1", "server", "/img.gif");
    if (i % 2 == 0) t.add({base + 8}, "c1", "server", "/other.html");
  }
  t.sort_by_time();
  PairCounterConfig pcc;
  const auto counts = PairCounterBuilder(pcc).build(t);
  ProbabilityVolumeConfig pvc;
  pvc.probability_threshold = 0.2;
  auto built = build_probability_volumes(t, counts, pvc);

  std::ostringstream out;
  save_volume_set(out, built, t.paths());
  std::istringstream in(out.str());
  util::InternTable loaded_paths;
  std::string error;
  const auto loaded = load_volume_set(in, loaded_paths, error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->volume_count(), built.volume_count());
  for (const auto& [r, entries] : built.volumes()) {
    const auto loaded_id = loaded_paths.find(t.paths().str(r));
    ASSERT_TRUE(loaded_id.has_value());
    const auto* loaded_entries = loaded->volume_of(*loaded_id);
    ASSERT_NE(loaded_entries, nullptr);
    ASSERT_EQ(loaded_entries->size(), entries.size());
    for (std::size_t i = 0; i < entries.size(); ++i) {
      EXPECT_EQ(loaded_paths.str((*loaded_entries)[i].resource),
                t.paths().str(entries[i].resource));
      EXPECT_NEAR((*loaded_entries)[i].probability,
                  entries[i].probability, 1e-9);
    }
  }
}

TEST(VolumeSerialize, LoadRejectsBadHeader) {
  util::InternTable paths;
  std::string error;
  std::istringstream empty("");
  EXPECT_FALSE(load_volume_set(empty, paths, error).has_value());
  std::istringstream wrong("not-volumes 1\n");
  EXPECT_FALSE(load_volume_set(wrong, paths, error).has_value());
  std::istringstream version("piggyweb-volumes 99\n");
  EXPECT_FALSE(load_volume_set(version, paths, error).has_value());
}

TEST(VolumeSerialize, LoadRejectsMalformedBody) {
  util::InternTable paths;
  std::string error;
  std::istringstream bad_count(
      "piggyweb-volumes 1\nvolume /a x\n");
  EXPECT_FALSE(load_volume_set(bad_count, paths, error).has_value());
  std::istringstream truncated(
      "piggyweb-volumes 1\nvolume /a 2\n/b 0.5 0.5\n");
  EXPECT_FALSE(load_volume_set(truncated, paths, error).has_value());
  std::istringstream bad_prob(
      "piggyweb-volumes 1\nvolume /a 1\n/b 1.5 0.5\n");
  EXPECT_FALSE(load_volume_set(bad_prob, paths, error).has_value());
  std::istringstream not_volume(
      "piggyweb-volumes 1\nnonsense line here\n");
  EXPECT_FALSE(load_volume_set(not_volume, paths, error).has_value());
}

TEST(VolumeSerialize, LoadToleratesBlankLinesBetweenVolumes) {
  util::InternTable paths;
  std::string error;
  std::istringstream in(
      "piggyweb-volumes 1\n\nvolume /a 1\n/b 0.5 0.25\n\n");
  const auto loaded = load_volume_set(in, paths, error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->volume_count(), 1u);
}

}  // namespace
}  // namespace piggyweb::volume

// LogHistogram: bucket edge geometry, underflow/overflow routing,
// percentile error bounds, and the merge algebra (associative,
// shard-count-invariant) the registry's per-shard accumulation relies on.
#include "obs/log_histogram.h"

#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "obs/json.h"
#include "obs/registry.h"

namespace piggyweb::obs {
namespace {

TEST(LogHistogram, EmptyReportsZeros) {
  LogHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.percentile(0.5), 0.0);
  EXPECT_EQ(h.percentile(1.0), 0.0);
}

TEST(LogHistogram, EdgesAreMonotoneAndAnchored) {
  LogHistogram h(1e-6, 1e2, 8);
  ASSERT_GE(h.bucket_count(), 1u);
  EXPECT_EQ(h.edge(0), 1e-6);
  EXPECT_EQ(h.edge(h.bucket_count()), 1e2);
  for (std::size_t i = 0; i < h.bucket_count(); ++i) {
    EXPECT_LT(h.edge(i), h.edge(i + 1)) << "edge " << i;
  }
  // 8 decades at 8 buckets per decade.
  EXPECT_EQ(h.bucket_count(), 64u);
}

TEST(LogHistogram, SingleSampleIsItsOwnPercentile) {
  LogHistogram h;
  h.record(0.01);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 0.01);
  EXPECT_EQ(h.max(), 0.01);
  // The bucket upper edge is clamped to the observed max, so every
  // quantile of a singleton distribution is the sample itself.
  EXPECT_EQ(h.percentile(0.0), 0.01);
  EXPECT_EQ(h.percentile(0.5), 0.01);
  EXPECT_EQ(h.percentile(1.0), 0.01);
}

TEST(LogHistogram, BoundaryValuesRouteToTheRightBuckets) {
  LogHistogram h(1e-3, 1.0, 4);
  h.record(1e-3);                          // exactly lo: first interior
  h.record(std::nextafter(1e-3, 0.0));     // just below lo: underflow
  h.record(1.0);                           // exactly hi: overflow
  h.record(0.0);                           // underflow
  h.record(-5.0);                          // underflow
  h.record(123.0);                         // overflow
  const auto counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), h.bucket_count() + 2);
  EXPECT_EQ(counts.front(), 3u);  // underflow
  EXPECT_EQ(counts[1], 1u);       // first interior bucket
  EXPECT_EQ(counts.back(), 2u);   // overflow
  EXPECT_EQ(h.count(), 6u);
}

TEST(LogHistogram, NanDoesNotDisturbMinMax) {
  LogHistogram h;
  h.record(0.5);
  h.record(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.min(), 0.5);
  EXPECT_EQ(h.max(), 0.5);
}

TEST(LogHistogram, EverySampleLandsInItsBucket) {
  LogHistogram h(1e-6, 1e2, 8);
  // Sweep values across the whole range, including points at and around
  // every edge; each must land in a bucket whose [lower, upper) span
  // contains it.
  std::vector<double> samples;
  for (std::size_t i = 0; i <= h.bucket_count(); ++i) {
    const double e = h.edge(i);
    samples.push_back(e);
    samples.push_back(std::nextafter(e, 0.0));
    samples.push_back(std::nextafter(e, 1e9));
  }
  for (const double x : samples) {
    LogHistogram one(1e-6, 1e2, 8);
    one.record(x);
    const auto counts = one.bucket_counts();
    std::size_t slot = 0;
    for (; slot < counts.size(); ++slot) {
      if (counts[slot] != 0) break;
    }
    ASSERT_LT(slot, counts.size());
    if (slot == 0) {
      EXPECT_LT(x, one.lo()) << x;
    } else if (slot == counts.size() - 1) {
      EXPECT_GE(x, one.hi()) << x;
    } else {
      EXPECT_GE(x, one.edge(slot - 1)) << x;
      EXPECT_LT(x, one.edge(slot)) << x;
    }
  }
}

TEST(LogHistogram, PercentilesAreOrderedAndBucketAccurate) {
  LogHistogram h;
  // 1000 samples spread linearly over [1 ms, 1 s]: exact median 0.5005.
  for (int i = 1; i <= 1000; ++i) {
    h.record(static_cast<double>(i) / 1000.0);
  }
  const double p50 = h.percentile(0.50);
  const double p90 = h.percentile(0.90);
  const double p99 = h.percentile(0.99);
  const double p999 = h.percentile(0.999);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_LE(p99, p999);
  EXPECT_LE(p999, h.max());
  // Upper-edge convention: each quantile is >= the exact order statistic
  // and within one bucket width (10^(1/8) ~ 1.334x) above it.
  const double step = std::pow(10.0, 1.0 / 8.0) * 1.001;  // + float slack
  EXPECT_GE(p50, 0.500);
  EXPECT_LE(p50, 0.500 * step);
  EXPECT_GE(p99, 0.990);
  EXPECT_LE(p99, 0.990 * step);
  EXPECT_EQ(h.percentile(1.0), h.max());
}

TEST(LogHistogram, OverflowPercentileReportsMax) {
  LogHistogram h(1e-3, 1.0, 4);
  for (int i = 0; i < 100; ++i) h.record(50.0);
  h.record(123.0);
  EXPECT_EQ(h.percentile(0.5), 123.0);
  EXPECT_EQ(h.max(), 123.0);
}

TEST(LogHistogram, MergeMatchesSingleStream) {
  LogHistogram a, b, all;
  for (int i = 1; i <= 500; ++i) {
    const double x = 1e-5 * static_cast<double>(i * i);
    (i % 2 == 0 ? a : b).record(x);
    all.record(x);
  }
  a.merge_from(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_EQ(a.bucket_counts(), all.bucket_counts());
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
  EXPECT_NEAR(a.sum(), all.sum(), 1e-9 * all.sum());
  for (const double q : {0.0, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_EQ(a.percentile(q), all.percentile(q)) << "q " << q;
  }
}

TEST(LogHistogram, MergeIsAssociativeOnBuckets) {
  const auto fill = [](LogHistogram& h, int salt) {
    for (int i = 0; i < 200; ++i) {
      h.record(1e-6 * static_cast<double>((i * 37 + salt * 101) % 100000));
    }
  };
  LogHistogram left_a, left_b, left_c;
  fill(left_a, 1);
  fill(left_b, 2);
  fill(left_c, 3);
  // (a + b) + c
  left_a.merge_from(left_b);
  left_a.merge_from(left_c);

  LogHistogram right_a, right_b, right_c;
  fill(right_a, 1);
  fill(right_b, 2);
  fill(right_c, 3);
  // a + (b + c)
  right_b.merge_from(right_c);
  right_a.merge_from(right_b);

  EXPECT_EQ(left_a.bucket_counts(), right_a.bucket_counts());
  EXPECT_EQ(left_a.count(), right_a.count());
  EXPECT_EQ(left_a.min(), right_a.min());
  EXPECT_EQ(left_a.max(), right_a.max());
  for (const double q : {0.5, 0.9, 0.99}) {
    EXPECT_EQ(left_a.percentile(q), right_a.percentile(q)) << "q " << q;
  }
}

TEST(LogHistogram, ShardCountInvariance) {
  // The same sample stream split round-robin over k shards and merged
  // must produce identical buckets and percentiles for every k.
  std::vector<double> samples;
  for (int i = 0; i < 1000; ++i) {
    samples.push_back(1e-6 * static_cast<double>((i * 7919) % 1000000));
  }
  std::vector<std::uint64_t> reference_buckets;
  double reference_p99 = 0;
  for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
    std::vector<std::unique_ptr<LogHistogram>> shard(shards);
    for (auto& s : shard) s = std::make_unique<LogHistogram>();
    for (std::size_t i = 0; i < samples.size(); ++i) {
      shard[i % shards]->record(samples[i]);
    }
    LogHistogram merged;
    for (const auto& s : shard) merged.merge_from(*s);
    if (shards == 1) {
      reference_buckets = merged.bucket_counts();
      reference_p99 = merged.percentile(0.99);
      continue;
    }
    EXPECT_EQ(merged.bucket_counts(), reference_buckets) << shards;
    EXPECT_EQ(merged.percentile(0.99), reference_p99) << shards;
  }
}

TEST(LogHistogram, RegistrySnapshotCarriesPercentiles) {
  Registry registry;
  auto& h = registry.log_histogram("queue.seconds");
  for (int i = 1; i <= 100; ++i) {
    h.record(static_cast<double>(i) * 1e-4);
  }
  const auto snapshot = registry.snapshot();
  const auto* histograms = snapshot.find("histograms");
  ASSERT_NE(histograms, nullptr);
  ASSERT_EQ(histograms->items().size(), 1u);
  const auto& entry = histograms->items()[0];
  EXPECT_EQ(entry.find("name")->string(), "queue.seconds");
  EXPECT_EQ(entry.find("scale")->string(), "log");
  EXPECT_EQ(entry.find("count")->number(), 100.0);
  EXPECT_FALSE(entry.find("deterministic")->boolean());
  for (const char* field : {"p50", "p90", "p99", "p999", "min", "max"}) {
    ASSERT_NE(entry.find(field), nullptr) << field;
    EXPECT_GT(entry.find(field)->number(), 0.0) << field;
  }
}

TEST(LogHistogram, RegistryMergeAddsBuckets) {
  Registry a, b;
  a.log_histogram("h").record(0.5);
  b.log_histogram("h").record(0.25);
  b.log_histogram("h").record(0.5);
  a.merge_from(b);
  EXPECT_EQ(a.log_histogram("h").count(), 3u);
  EXPECT_EQ(a.log_histogram("h").min(), 0.25);
  EXPECT_EQ(a.log_histogram("h").max(), 0.5);
}

}  // namespace
}  // namespace piggyweb::obs

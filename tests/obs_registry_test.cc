#include "obs/registry.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/json.h"

namespace piggyweb::obs {
namespace {

TEST(Registry, GetOrCreateReturnsSameMetric) {
  Registry registry;
  auto& a = registry.counter("x");
  auto& b = registry.counter("x");
  EXPECT_EQ(&a, &b);
  a.add(2);
  b.add(3);
  EXPECT_EQ(a.value(), 5u);
  EXPECT_EQ(registry.metric_count(), 1u);
}

TEST(Registry, GaugeSetMaxIsAWatermark) {
  Registry registry;
  auto& gauge = registry.gauge("depth");
  gauge.set_max(3);
  gauge.set_max(1);
  gauge.set_max(7);
  EXPECT_EQ(gauge.value(), 7.0);
}

TEST(Registry, SnapshotSortsByNameAndCarriesDeterministicBit) {
  Registry registry;
  registry.counter("zeta").add(1);
  registry.counter("alpha", /*deterministic=*/false).add(2);
  const auto snapshot = registry.snapshot();
  const auto* counters = snapshot.find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_EQ(counters->items().size(), 2u);
  EXPECT_EQ(counters->items()[0].find("name")->string(), "alpha");
  EXPECT_EQ(counters->items()[0].find("deterministic")->boolean(), false);
  EXPECT_EQ(counters->items()[1].find("name")->string(), "zeta");
  EXPECT_EQ(counters->items()[1].find("deterministic")->boolean(), true);
}

TEST(Registry, IdenticalContentSerializesIdenticalBytes) {
  // Registration order differs; snapshot bytes must not.
  Registry a;
  a.counter("one").add(1);
  a.gauge("two").set(2);
  Registry b;
  b.gauge("two").set(2);
  b.counter("one").add(1);
  EXPECT_EQ(a.to_json(), b.to_json());
}

TEST(Registry, HistogramBucketEdges) {
  Registry registry;
  auto& h = registry.histogram("h", 0.0, 1.0, 4);
  h.add(-0.5);   // underflow
  h.add(0.0);    // first bucket [0, 0.25)
  h.add(0.25);   // second bucket edge -> [0.25, 0.5)
  h.add(0.999);  // last bucket
  h.add(1.0);    // hi is exclusive -> overflow
  h.add(42.0);   // overflow
  const auto buckets = h.snapshot_buckets();
  ASSERT_EQ(buckets.items().size(), 6u);  // underflow + 4 + overflow
  EXPECT_EQ(buckets.items()[0].number(), 1);  // underflow
  EXPECT_EQ(buckets.items()[1].number(), 1);  // [0, 0.25)
  EXPECT_EQ(buckets.items()[2].number(), 1);  // [0.25, 0.5)
  EXPECT_EQ(buckets.items()[3].number(), 0);  // [0.5, 0.75)
  EXPECT_EQ(buckets.items()[4].number(), 1);  // [0.75, 1)
  EXPECT_EQ(buckets.items()[5].number(), 2);  // overflow
  EXPECT_EQ(h.stats().count(), 6u);
}

// Build the per-shard registry a worker with the given seed would produce.
void fill_shard(Registry& registry, std::uint64_t seed) {
  registry.counter("events").add(seed + 1);
  registry.gauge("watermark").set_max(static_cast<double>(seed * 3 % 7));
  auto& h = registry.histogram("latency", 0.0, 1.0, 10);
  h.add(static_cast<double>(seed % 10) / 10.0);
}

TEST(Registry, MergeIsAssociative) {
  // ((a + b) + c) and (a + (b + c)) must snapshot identically.
  Registry a1, b1, c1;
  fill_shard(a1, 0);
  fill_shard(b1, 1);
  fill_shard(c1, 2);
  a1.merge_from(b1);
  a1.merge_from(c1);

  Registry a2, b2, c2;
  fill_shard(a2, 0);
  fill_shard(b2, 1);
  fill_shard(c2, 2);
  b2.merge_from(c2);
  a2.merge_from(b2);

  EXPECT_EQ(a1.to_json(), a2.to_json());
}

TEST(Registry, MergeTotalsIndependentOfShardCount) {
  // The same work split across 1, 2, or 4 shard registries and merged in
  // shard order must produce identical snapshots — the property behind
  // "registry snapshots bit-identical across --threads=N".
  const std::uint64_t kWork = 12;
  std::string baseline;
  for (const std::size_t shards : {1u, 2u, 4u}) {
    std::vector<std::unique_ptr<Registry>> parts;
    for (std::size_t s = 0; s < shards; ++s) {
      parts.push_back(std::make_unique<Registry>());
    }
    for (std::uint64_t item = 0; item < kWork; ++item) {
      fill_shard(*parts[item % shards], item);
    }
    Registry total;
    for (const auto& part : parts) total.merge_from(*part);
    const auto snapshot = total.to_json();
    if (baseline.empty()) {
      baseline = snapshot;
    } else {
      EXPECT_EQ(snapshot, baseline) << "shards=" << shards;
    }
  }
}

TEST(Registry, PrometheusExposition) {
  Registry registry;
  registry.counter("eval.requests").add(10);
  registry.gauge("pool.depth").set(3);
  registry.histogram("task.seconds", 0.0, 1.0, 2).add(0.4);
  const auto text = registry.to_prometheus();
  EXPECT_NE(text.find("eval_requests 10"), std::string::npos);
  EXPECT_NE(text.find("pool_depth 3"), std::string::npos);
  EXPECT_NE(text.find("task_seconds_count 1"), std::string::npos);
  EXPECT_NE(text.find("task_seconds_bucket"), std::string::npos);
}

TEST(Registry, GlobalPointerDefaultsToNull) {
  EXPECT_EQ(global_metrics(), nullptr);
  Registry registry;
  set_global_metrics(&registry);
  EXPECT_EQ(global_metrics(), &registry);
  set_global_metrics(nullptr);
  EXPECT_EQ(global_metrics(), nullptr);
}

}  // namespace
}  // namespace piggyweb::obs

#include "obs/json.h"

#include <gtest/gtest.h>

namespace piggyweb::obs {
namespace {

TEST(Json, TypesAndAccessors) {
  EXPECT_TRUE(Json().is_null());
  EXPECT_TRUE(Json(true).is_bool());
  EXPECT_TRUE(Json(1.5).is_number());
  EXPECT_TRUE(Json("hi").is_string());
  EXPECT_TRUE(Json::array().is_array());
  EXPECT_TRUE(Json::object().is_object());
  EXPECT_EQ(Json(true).boolean(), true);
  EXPECT_EQ(Json(1.5).number(), 1.5);
  EXPECT_EQ(Json("hi").string(), "hi");
}

TEST(Json, CompactDump) {
  auto doc = Json::object();
  doc.set("a", 1);
  doc.set("b", Json::array());
  doc.set("c", "x");
  EXPECT_EQ(doc.dump(0), R"({"a":1,"b":[],"c":"x"})");
}

TEST(Json, IntegersPrintWithoutDecimalPoint) {
  EXPECT_EQ(Json(std::int64_t{42}).dump(0), "42");
  EXPECT_EQ(Json(std::uint64_t{0}).dump(0), "0");
  EXPECT_EQ(Json(-7).dump(0), "-7");
  EXPECT_EQ(Json(2.5).dump(0), "2.5");
}

TEST(Json, ObjectsKeepInsertionOrderAndOverwriteInPlace) {
  auto doc = Json::object();
  doc.set("z", 1);
  doc.set("a", 2);
  doc.set("z", 3);  // overwrite: value updates, position stays
  EXPECT_EQ(doc.dump(0), R"({"z":3,"a":2})");
}

TEST(Json, StringEscapes) {
  EXPECT_EQ(Json("a\"b\\c\n\t").dump(0), R"("a\"b\\c\n\t")");
  // Control characters take the \u00XX form.
  EXPECT_EQ(Json(std::string("\x01")).dump(0), "\"\\u0001\"");
}

TEST(Json, ParseRoundTrip) {
  const char* text =
      R"({"s":"A\n","n":-2.5,"i":7,"b":true,"nil":null,"a":[1,2,[3]]})";
  const auto parsed = parse_json(text);
  ASSERT_TRUE(parsed.has_value());
  // Dump-parse-dump is a fixed point.
  EXPECT_EQ(parse_json(parsed->dump(2))->dump(0), parsed->dump(0));
  EXPECT_EQ(parsed->find("s")->string(), "A\n");
  EXPECT_EQ(parsed->find("i")->number(), 7);
  ASSERT_NE(parsed->find("a"), nullptr);
  EXPECT_EQ(parsed->find("a")->items().size(), 3u);
}

TEST(Json, ParseErrors) {
  std::string error;
  EXPECT_FALSE(parse_json("", &error).has_value());
  EXPECT_FALSE(parse_json("{", &error).has_value());
  EXPECT_FALSE(parse_json("[1,]", &error).has_value());
  EXPECT_FALSE(parse_json("\"unterminated", &error).has_value());
  EXPECT_FALSE(parse_json("01", &error).has_value());
  EXPECT_FALSE(parse_json("{} trailing", &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(Json, Equality) {
  auto a = Json::object();
  a.set("k", 1);
  auto b = Json::object();
  b.set("k", 1);
  EXPECT_TRUE(a == b);
  b.set("k", 2);
  EXPECT_FALSE(a == b);
}

TEST(Json, IndentedDumpParsesBack) {
  auto doc = Json::object();
  auto inner = Json::array();
  inner.push_back(1);
  inner.push_back("two");
  doc.set("list", std::move(inner));
  const auto pretty = doc.dump(2);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  EXPECT_EQ(parse_json(pretty)->dump(0), doc.dump(0));
}

}  // namespace
}  // namespace piggyweb::obs

#include "volume/pair_counter.h"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "trace/record.h"
#include "util/rng.h"
#include "volume/sharded_pair_counter.h"

namespace piggyweb::volume {
namespace {

// Build a small trace from (time, source, path) triples.
trace::Trace make_trace(
    std::initializer_list<std::tuple<util::Seconds, const char*,
                                     const char*>> events) {
  trace::Trace t;
  for (const auto& [time, source, path] : events) {
    t.add({time}, source, "server", path);
  }
  t.sort_by_time();
  return t;
}

PairCounterConfig exact(util::Seconds window = 300) {
  PairCounterConfig config;
  config.window = window;
  return config;
}

TEST(PairCounter, CountsFollowerWithinWindow) {
  const auto t = make_trace({{0, "c1", "/a"}, {10, "c1", "/b"}});
  const auto counts = PairCounterBuilder(exact()).build(t);
  const auto a = *t.paths().find("/a");
  const auto b = *t.paths().find("/b");
  EXPECT_EQ(counts.pair_count(a, b), 1u);
  EXPECT_EQ(counts.pair_count(b, a), 0u);  // direction matters
  EXPECT_DOUBLE_EQ(counts.probability(a, b), 1.0);
}

TEST(PairCounter, IgnoresFollowerOutsideWindow) {
  const auto t = make_trace({{0, "c1", "/a"}, {301, "c1", "/b"}});
  const auto counts = PairCounterBuilder(exact(300)).build(t);
  EXPECT_EQ(counts.pair_count(*t.paths().find("/a"), *t.paths().find("/b")),
            0u);
}

TEST(PairCounter, WindowBoundaryInclusive) {
  const auto t = make_trace({{0, "c1", "/a"}, {300, "c1", "/b"}});
  const auto counts = PairCounterBuilder(exact(300)).build(t);
  EXPECT_EQ(counts.pair_count(*t.paths().find("/a"), *t.paths().find("/b")),
            1u);
}

TEST(PairCounter, DifferentSourcesDoNotPair) {
  const auto t = make_trace({{0, "c1", "/a"}, {10, "c2", "/b"}});
  const auto counts = PairCounterBuilder(exact()).build(t);
  EXPECT_EQ(counts.counter_count(), 0u);
}

TEST(PairCounter, ProbabilityIsFractionOfROccurrences) {
  // /a occurs 4 times; /b follows twice -> p(b|a) = 0.5.
  const auto t = make_trace({{0, "c1", "/a"},
                             {10, "c1", "/b"},
                             {1000, "c1", "/a"},
                             {1010, "c1", "/b"},
                             {2000, "c1", "/a"},
                             {3000, "c1", "/a"}});
  const auto counts = PairCounterBuilder(exact()).build(t);
  const auto a = *t.paths().find("/a");
  const auto b = *t.paths().find("/b");
  EXPECT_EQ(counts.occurrences(a), 4u);
  EXPECT_DOUBLE_EQ(counts.probability(a, b), 0.5);
}

TEST(PairCounter, DistinctSuccessorsCountedOncePerOccurrence) {
  // /a followed by /b twice within one window: one co-occurrence.
  const auto t = make_trace(
      {{0, "c1", "/a"}, {10, "c1", "/b"}, {20, "c1", "/b"}});
  const auto counts = PairCounterBuilder(exact()).build(t);
  EXPECT_EQ(counts.pair_count(*t.paths().find("/a"), *t.paths().find("/b")),
            1u);
}

TEST(PairCounter, SelfPairsAllowed) {
  // Repeat access within the window: /a implies /a (the paper observed
  // ~1% of resources in their own volumes).
  const auto t = make_trace({{0, "c1", "/a"}, {10, "c1", "/a"}});
  const auto counts = PairCounterBuilder(exact()).build(t);
  const auto a = *t.paths().find("/a");
  EXPECT_EQ(counts.pair_count(a, a), 1u);
}

TEST(PairCounter, MinResourceCountDropsUnpopular) {
  const auto t = make_trace({{0, "c1", "/rare"},
                             {10, "c1", "/pop"},
                             {1000, "c2", "/pop"},
                             {2000, "c3", "/pop"}});
  const auto counts = PairCounterBuilder(exact()).build(t, 3);
  EXPECT_EQ(counts.occurrences(*t.paths().find("/rare")), 0u);
  EXPECT_EQ(counts.occurrences(*t.paths().find("/pop")), 3u);
  EXPECT_EQ(counts.counter_count(), 0u);  // the pair involved /rare
}

TEST(PairCounter, PrefixRestrictionDropsCrossDirectoryPairs) {
  auto config = exact();
  config.restrict_prefix_level = 1;
  const auto t = make_trace(
      {{0, "c1", "/a/x.html"}, {5, "c1", "/a/y.html"}, {10, "c1", "/b/z.html"}});
  const auto counts = PairCounterBuilder(config).build(t);
  const auto ax = *t.paths().find("/a/x.html");
  const auto ay = *t.paths().find("/a/y.html");
  const auto bz = *t.paths().find("/b/z.html");
  EXPECT_EQ(counts.pair_count(ax, ay), 1u);
  EXPECT_EQ(counts.pair_count(ax, bz), 0u);
  EXPECT_EQ(counts.pair_count(ay, bz), 0u);
}

TEST(PairCounter, InterleavedSourcesStaySeparate) {
  const auto t = make_trace({{0, "c1", "/a"},
                             {1, "c2", "/x"},
                             {2, "c1", "/b"},
                             {3, "c2", "/y"}});
  const auto counts = PairCounterBuilder(exact()).build(t);
  const auto a = *t.paths().find("/a");
  const auto b = *t.paths().find("/b");
  const auto x = *t.paths().find("/x");
  const auto y = *t.paths().find("/y");
  EXPECT_EQ(counts.pair_count(a, b), 1u);
  EXPECT_EQ(counts.pair_count(x, y), 1u);
  EXPECT_EQ(counts.pair_count(a, x), 0u);
  EXPECT_EQ(counts.pair_count(a, y), 0u);
}

TEST(PairCounter, AllProbabilitiesMatchesCounters) {
  const auto t = make_trace({{0, "c1", "/a"},
                             {10, "c1", "/b"},
                             {20, "c1", "/c"}});
  const auto counts = PairCounterBuilder(exact()).build(t);
  // Pairs: a->b, a->c, b->c.
  const auto probs = counts.all_probabilities();
  EXPECT_EQ(probs.size(), 3u);
  for (const auto p : probs) EXPECT_DOUBLE_EQ(p, 1.0);
}

TEST(PairCounter, SampledCountersAreSubsetOfExact) {
  // Build a bigger trace with repeated sessions.
  trace::Trace t;
  for (int session = 0; session < 200; ++session) {
    const auto base = static_cast<util::Seconds>(session * 1000);
    const auto client = "c" + std::to_string(session % 20);
    t.add({base}, client, "server", "/page.html");
    t.add({base + 5}, client, "server", "/img1.gif");
    t.add({base + 6}, client, "server", "/img2.gif");
  }
  t.sort_by_time();

  const auto exact_counts = PairCounterBuilder(exact()).build(t);

  auto sampled_config = exact();
  sampled_config.sample_counters = true;
  sampled_config.sample_threshold = 0.2;
  sampled_config.sample_k = 2.0;
  const auto sampled_counts = PairCounterBuilder(sampled_config).build(t);

  EXPECT_LE(sampled_counts.counter_count(), exact_counts.counter_count());
  // The dominant pair (page -> img1) must still be found, with a
  // probability estimate near the exact 1.0.
  const auto page = *t.paths().find("/page.html");
  const auto img1 = *t.paths().find("/img1.gif");
  EXPECT_DOUBLE_EQ(exact_counts.probability(page, img1), 1.0);
  EXPECT_GT(sampled_counts.probability(page, img1), 0.8);
}

TEST(PairCounter, SampledEstimateUnbiasedForFrequentPair) {
  // p(b|a) = 0.5 exactly; the sampled estimator (counting from counter
  // creation) should land near 0.5, not near 0.
  trace::Trace t;
  for (int i = 0; i < 500; ++i) {
    const auto base = static_cast<util::Seconds>(i * 1000);
    t.add({base}, "c1", "server", "/a");
    if (i % 2 == 0) t.add({base + 5}, "c1", "server", "/b");
  }
  t.sort_by_time();
  auto config = exact();
  config.sample_counters = true;
  config.sample_threshold = 0.2;
  const auto counts = PairCounterBuilder(config).build(t);
  const auto a = *t.paths().find("/a");
  const auto b = *t.paths().find("/b");
  EXPECT_NEAR(counts.probability(a, b), 0.5, 0.15);
}

TEST(PairCounter, EmptyTrace) {
  trace::Trace t;
  const auto counts = PairCounterBuilder(exact()).build(t);
  EXPECT_EQ(counts.counter_count(), 0u);
  EXPECT_TRUE(counts.all_probabilities().empty());
}

// ---------------------------------------------------------------------------
// PairObservations: the streaming training path must reproduce the Trace
// builds exactly, regardless of how the request stream is cut into windows.

trace::Trace make_random_pair_trace(std::uint64_t seed, std::size_t n) {
  util::Rng rng(seed);
  trace::Trace t;
  util::Seconds now = 0;
  for (std::size_t i = 0; i < n; ++i) {
    now += static_cast<util::Seconds>(rng.below(120));
    t.add({now}, "c" + std::to_string(rng.below(8)), "server",
          "/d" + std::to_string(rng.below(3)) + "/p" +
              std::to_string(rng.below(25)));
  }
  t.sort_by_time();
  return t;
}

void expect_counts_equal(const PairCounts& a, const PairCounts& b) {
  EXPECT_EQ(a.resource_occurrences(), b.resource_occurrences());
  ASSERT_EQ(a.counter_count(), b.counter_count());
  for (const auto& [key, pc] : a.pairs()) {
    const auto r = static_cast<util::InternId>(key >> 32);
    const auto s = static_cast<util::InternId>(key & 0xffffffffu);
    EXPECT_EQ(b.pair_count(r, s), pc.count) << "r " << r << " s " << s;
    EXPECT_DOUBLE_EQ(b.probability(r, s), a.probability(r, s))
        << "r " << r << " s " << s;
  }
}

PairObservations observe_whole(const trace::Trace& t) {
  PairObservations obs;
  obs.observe_window(t.requests());
  return obs;
}

TEST(PairObservations, ObservationBuildMatchesTraceBuild) {
  const auto t = make_random_pair_trace(31, 400);
  auto config = exact();
  config.restrict_prefix_level = 1;
  const auto from_trace = PairCounterBuilder(config).build(t, 2);
  const auto obs = observe_whole(t);
  const auto from_obs =
      PairCounterBuilder(config).build(obs, t.paths(), 2);
  expect_counts_equal(from_trace, from_obs);
}

TEST(PairObservations, WindowPartitionInvariance) {
  const auto t = make_random_pair_trace(32, 500);
  const auto whole = observe_whole(t);
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    util::Rng rng(seed);
    PairObservations pieces;
    std::size_t base = 0;
    const auto requests = std::span<const trace::Request>(t.requests());
    while (base < requests.size()) {
      const auto n =
          std::min<std::size_t>(1 + rng.below(64), requests.size() - base);
      pieces.observe_window(requests.subspan(base, n));
      base += n;
    }
    // Same builds from both logs, exact and sampled.
    for (const bool sampled : {false, true}) {
      auto config = exact();
      config.sample_counters = sampled;
      expect_counts_equal(
          PairCounterBuilder(config).build(whole, t.paths()),
          PairCounterBuilder(config).build(pieces, t.paths()));
    }
  }
}

TEST(PairObservations, SampledObservationBuildMatchesTraceBuild) {
  // The sampler draws from one RNG stream; the observation build must
  // visit candidates in exactly the serial trace order to reproduce it.
  const auto t = make_random_pair_trace(33, 600);
  auto config = exact();
  config.sample_counters = true;
  config.sample_threshold = 0.2;
  const auto from_trace = PairCounterBuilder(config).build(t);
  const auto from_obs =
      PairCounterBuilder(config).build(observe_whole(t), t.paths());
  expect_counts_equal(from_trace, from_obs);
}

TEST(PairObservations, ParallelObservationBuildMatchesSerial) {
  const auto t = make_random_pair_trace(34, 500);
  const auto obs = observe_whole(t);
  const auto serial = PairCounterBuilder(exact()).build(obs, t.paths());
  for (const std::size_t threads : {1u, 2u, 4u}) {
    ParallelPairCounterBuilder builder(exact(), threads);
    expect_counts_equal(serial, builder.build(obs, t.paths()));
  }
}

TEST(ShardedTable, AddPairsMatchesPerKeyAdds) {
  util::Rng rng(0xADD);
  ShardedPairCounterTable batched(8);
  ShardedPairCounterTable per_key(8);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> entries;
  for (int round = 0; round < 50; ++round) {
    entries.clear();
    const auto n = rng.below(40);
    for (std::uint64_t i = 0; i < n; ++i) {
      // A small key space forces duplicate keys within one batch.
      entries.emplace_back(rng.below(64), 1 + rng.below(3));
    }
    batched.add_pairs(entries);
    for (const auto& [key, delta] : entries) {
      per_key.add_pair_key(key, delta);
    }
  }
  auto a = batched.pair_entries();
  auto b = per_key.pair_entries();
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

TEST(ShardedTable, AddPairsEmptyIsANoOp) {
  ShardedPairCounterTable table(4);
  table.add_pairs({});
  EXPECT_EQ(table.counter_count(), 0u);
}

}  // namespace
}  // namespace piggyweb::volume

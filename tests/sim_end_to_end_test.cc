#include "sim/end_to_end.h"

#include <gtest/gtest.h>

#include "trace/profiles.h"

namespace piggyweb::sim {
namespace {

const trace::SyntheticWorkload& shared_workload() {
  static const trace::SyntheticWorkload workload = [] {
    auto profile = trace::aiusa_profile(0.05);
    return trace::generate(profile);
  }();
  return workload;
}

EndToEndConfig base_config() {
  EndToEndConfig config;
  config.cache.capacity_bytes = 16ULL * 1024 * 1024;
  config.cache.freshness_interval = 2 * util::kHour;
  config.base_filter.max_elements = 20;
  config.volumes.level = 1;
  return config;
}

TEST(EndToEnd, ProcessesWholeTrace) {
  EndToEndSimulator sim(shared_workload(), base_config());
  const auto result = sim.run();
  EXPECT_EQ(result.client_requests, shared_workload().trace.size());
  EXPECT_GT(result.cache.lookups, 0u);
  EXPECT_GT(result.server_contacts, 0u);
  EXPECT_LE(result.server_contacts, result.client_requests);
}

TEST(EndToEnd, CacheAbsorbsTraffic) {
  EndToEndSimulator sim(shared_workload(), base_config());
  const auto result = sim.run();
  // Fresh hits never contact the server.
  EXPECT_EQ(result.client_requests,
            result.server_contacts + result.cache.fresh_hits);
  EXPECT_GT(result.cache.hit_rate(), 0.1);
}

TEST(EndToEnd, PiggybackingProducesCoherencyWork) {
  auto config = base_config();
  config.enable_coherency = true;
  EndToEndSimulator sim(shared_workload(), config);
  const auto result = sim.run();
  EXPECT_GT(result.center.piggybacks_injected, 0u);
  EXPECT_GT(result.coherency.piggybacks_processed, 0u);
  EXPECT_GT(result.coherency.refreshed + result.coherency.not_cached, 0u);
  EXPECT_GT(result.piggyback_bytes, 0u);
}

TEST(EndToEnd, BaselineHasNoPiggybackTraffic) {
  auto config = base_config();
  config.piggybacking = false;
  EndToEndSimulator sim(shared_workload(), config);
  const auto result = sim.run();
  EXPECT_EQ(result.center.piggybacks_injected, 0u);
  EXPECT_EQ(result.piggyback_bytes, 0u);
  EXPECT_EQ(result.coherency.piggybacks_processed, 0u);
}

TEST(EndToEnd, CoherencyReducesStaleServes) {
  auto baseline_config = base_config();
  baseline_config.piggybacking = false;
  EndToEndSimulator baseline(shared_workload(), baseline_config);
  const auto base_result = baseline.run();

  auto piggy_config = base_config();
  piggy_config.enable_coherency = true;
  EndToEndSimulator piggy(shared_workload(), piggy_config);
  const auto piggy_result = piggy.run();

  // Piggyback coherency serves many more requests from fresh cache
  // entries, so compare staleness per fresh hit: the rate must not rise
  // (invalidation drops changed copies a priori; refreshes only extend
  // entries verified current at refresh time).
  EXPECT_LE(piggy_result.stale_rate(), base_result.stale_rate() + 1e-4);
  EXPECT_GT(piggy_result.cache.fresh_hits, base_result.cache.fresh_hits);
}

TEST(EndToEnd, PrefetchingFindsUsefulWork) {
  auto config = base_config();
  config.enable_prefetch = true;
  config.prefetch.max_resource_bytes = 64 * 1024;
  config.prefetch.budget_bytes_per_piggyback = 256 * 1024;
  EndToEndSimulator sim(shared_workload(), config);
  const auto result = sim.run();
  EXPECT_GT(result.prefetch.issued, 0u);
  EXPECT_GT(result.prefetch.useful, 0u);
}

TEST(EndToEnd, PrefetchingRaisesHitRate) {
  EndToEndSimulator plain(shared_workload(), base_config());
  const auto plain_result = plain.run();

  auto config = base_config();
  config.enable_prefetch = true;
  EndToEndSimulator prefetching(shared_workload(), config);
  const auto prefetch_result = prefetching.run();

  EXPECT_GE(prefetch_result.cache.fresh_hit_rate(),
            plain_result.cache.fresh_hit_rate());
}

TEST(EndToEnd, AdaptiveTtlRuns) {
  auto config = base_config();
  config.enable_adaptive_ttl = true;
  EndToEndSimulator sim(shared_workload(), config);
  const auto result = sim.run();
  EXPECT_EQ(result.client_requests, shared_workload().trace.size());
}

TEST(EndToEnd, PcvValidatesInBulk) {
  auto config = base_config();
  config.enable_pcv = true;
  config.pcv.batch = 10;
  config.pcv.horizon = 600;
  EndToEndSimulator sim(shared_workload(), config);
  const auto result = sim.run();
  EXPECT_GT(result.pcv.batches_sent, 0u);
  EXPECT_GT(result.pcv.freshened, 0u);
}

TEST(EndToEnd, PcvCutsValidationTraffic) {
  EndToEndSimulator plain(shared_workload(), base_config());
  const auto base_result = plain.run();

  auto config = base_config();
  config.enable_pcv = true;
  EndToEndSimulator with_pcv(shared_workload(), config);
  const auto pcv_result = with_pcv.run();

  // Bulk validation pre-freshens entries, so fewer client requests land
  // on stale cache entries and trigger If-Modified-Since exchanges.
  EXPECT_LT(pcv_result.validations, base_result.validations);
  EXPECT_GE(pcv_result.cache.fresh_hit_rate(),
            base_result.cache.fresh_hit_rate());
}

TEST(EndToEnd, PcvOffByDefault) {
  EndToEndSimulator sim(shared_workload(), base_config());
  const auto result = sim.run();
  EXPECT_EQ(result.pcv.batches_sent, 0u);
}

TEST(EndToEnd, PersistentConnectionsReused) {
  EndToEndSimulator sim(shared_workload(), base_config());
  const auto result = sim.run();
  EXPECT_GT(result.connections.reused, 0u);
  EXPECT_GT(result.connections.reuse_fraction(), 0.05);
}

TEST(EndToEnd, LatencyAccumulates) {
  EndToEndSimulator sim(shared_workload(), base_config());
  const auto result = sim.run();
  EXPECT_GT(result.user_latency_sum, 0.0);
  EXPECT_GT(result.mean_user_latency(), 0.0);
  EXPECT_GT(result.total_packets, result.server_contacts);
}

TEST(EndToEnd, RpvBoundsPiggybackTraffic) {
  auto no_rpv = base_config();
  no_rpv.use_rpv = false;
  EndToEndSimulator without(shared_workload(), no_rpv);
  const auto result_without = without.run();

  auto with_rpv = base_config();
  with_rpv.use_rpv = true;
  with_rpv.rpv.timeout = 60;
  EndToEndSimulator with(shared_workload(), with_rpv);
  const auto result_with = with.run();

  EXPECT_LT(result_with.piggyback_bytes, result_without.piggyback_bytes);
}

TEST(EndToEnd, MinIntervalBoundsPiggybackTraffic) {
  auto throttled = base_config();
  throttled.min_piggyback_interval = 60;
  EndToEndSimulator with(shared_workload(), throttled);
  const auto result_throttled = with.run();

  EndToEndSimulator without(shared_workload(), base_config());
  const auto result_plain = without.run();
  EXPECT_LT(result_throttled.center.piggybacks_injected,
            result_plain.center.piggybacks_injected);
}

}  // namespace
}  // namespace piggyweb::sim

#include "sim/ground_truth.h"

#include <gtest/gtest.h>

#include "trace/profiles.h"

namespace piggyweb::sim {
namespace {

class GroundTruthTest : public ::testing::Test {
 protected:
  GroundTruthTest()
      : workload_(trace::generate(trace::aiusa_profile(0.02))) {
    const auto& servers = workload_.trace.servers();
    sites_.assign(servers.size(), nullptr);
    for (std::uint32_t id = 0; id < servers.size(); ++id) {
      sites_[id] = workload_.site_for(servers.str(id));
    }
  }

  trace::SyntheticWorkload workload_;
  std::vector<const trace::SiteModel*> sites_;
};

TEST_F(GroundTruthTest, ReportsSiteSizeAndType) {
  GroundTruthMeta meta(workload_, sites_);
  const auto& req = workload_.trace.requests().front();
  meta.set_now(req.time);
  const auto looked = meta.lookup(req.server, req.path);
  const auto* site = sites_[req.server];
  const auto idx =
      site->index_of(workload_.trace.paths().str(req.path));
  ASSERT_LT(idx, site->size());
  EXPECT_EQ(looked.size, site->resource(idx).size);
  EXPECT_EQ(looked.type, site->resource(idx).type);
  EXPECT_EQ(looked.last_modified,
            site->last_modified(idx, req.time).value);
}

TEST_F(GroundTruthTest, LastModifiedTracksNow) {
  GroundTruthMeta meta(workload_, sites_);
  // Find a resource with at least one change.
  const auto* site = sites_[workload_.trace.requests().front().server];
  auto idx = static_cast<std::uint32_t>(site->size());
  for (std::uint32_t i = 0; i < site->size(); ++i) {
    if (!site->resource(i).changes.empty()) {
      idx = i;
      break;
    }
  }
  if (idx >= site->size()) GTEST_SKIP() << "no changing resource";
  const auto change = site->resource(idx).changes.front();
  // Resolve the trace path id for this resource.
  const auto path_id =
      workload_.trace.paths().find(site->resource(idx).path);
  ASSERT_TRUE(path_id.has_value());
  const auto server_id = workload_.trace.requests().front().server;

  meta.set_now({change.value - 1});
  const auto before = meta.lookup(server_id, *path_id).last_modified;
  meta.set_now(change);
  const auto after = meta.lookup(server_id, *path_id).last_modified;
  EXPECT_LT(before, after);
  EXPECT_EQ(after, change.value);
}

TEST_F(GroundTruthTest, CountsAccesses) {
  GroundTruthMeta meta(workload_, sites_);
  const auto& req = workload_.trace.requests().front();
  EXPECT_EQ(meta.lookup(req.server, req.path).access_count, 0u);
  meta.note_access(req.server, req.path);
  meta.note_access(req.server, req.path);
  EXPECT_EQ(meta.lookup(req.server, req.path).access_count, 2u);
}

TEST_F(GroundTruthTest, UnknownServerOrPathIsEmpty) {
  GroundTruthMeta meta(workload_, sites_);
  EXPECT_EQ(meta.lookup(9999, 0).size, 0u);
  const auto& req = workload_.trace.requests().front();
  const auto bogus =
      const_cast<trace::Trace&>(workload_.trace).paths().intern(
          "/definitely/not/a/site/path.html");
  EXPECT_EQ(meta.lookup(req.server, bogus).size, 0u);
}

}  // namespace
}  // namespace piggyweb::sim

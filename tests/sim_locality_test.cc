#include "sim/locality.h"

#include <gtest/gtest.h>

#include "trace/profiles.h"

namespace piggyweb::sim {
namespace {

trace::Trace make_trace(
    std::initializer_list<std::tuple<util::Seconds, const char*,
                                     const char*, const char*>> events) {
  trace::Trace t;
  for (const auto& [time, source, server, path] : events) {
    t.add({time}, source, server, path);
  }
  t.sort_by_time();
  return t;
}

TEST(Locality, SeenBeforeFraction) {
  const auto t = make_trace({{0, "c1", "s1", "/a/x.html"},
                             {10, "c2", "s1", "/a/y.html"},
                             {20, "c1", "s2", "/a/z.html"}});
  // Level 1: prefixes (s1,/a) twice, (s2,/a) once.
  const auto result = directory_locality(t, 1);
  EXPECT_EQ(result.requests, 3u);
  EXPECT_EQ(result.seen_before, 1u);
  EXPECT_NEAR(result.seen_before_fraction, 1.0 / 3.0, 1e-9);
}

TEST(Locality, LevelZeroGroupsByServer) {
  const auto t = make_trace({{0, "c1", "s1", "/a/x.html"},
                             {10, "c2", "s1", "/b/y.html"},
                             {20, "c1", "s2", "/c/z.html"}});
  const auto result = directory_locality(t, 0);
  EXPECT_EQ(result.seen_before, 1u);  // second s1 request
}

TEST(Locality, CrossClientCounts) {
  // "98.5% of requests access a server that has been accessed before,
  // perhaps by a different client."
  const auto t = make_trace({{0, "c1", "s1", "/a/x.html"},
                             {5, "c2", "s1", "/a/x.html"}});
  const auto result = directory_locality(t, 1);
  EXPECT_EQ(result.seen_before, 1u);
}

TEST(Locality, InterarrivalMedian) {
  const auto t = make_trace({{0, "c1", "s1", "/a/x.html"},
                             {10, "c1", "s1", "/a/y.html"},
                             {40, "c1", "s1", "/a/z.html"}});
  const auto result = directory_locality(t, 1);
  // Gaps: 10 and 30 -> median 20.
  EXPECT_DOUBLE_EQ(result.median_interarrival, 20.0);
  EXPECT_DOUBLE_EQ(result.mean_interarrival, 20.0);
}

TEST(Locality, InterarrivalMeasuredFromLastOccurrence) {
  const auto t = make_trace({{0, "c1", "s1", "/a/x.html"},
                             {100, "c1", "s1", "/a/y.html"},
                             {110, "c1", "s1", "/a/z.html"}});
  const auto result = directory_locality(t, 1);
  // Gaps: 100 (0->100) and 10 (100->110), not 110.
  EXPECT_DOUBLE_EQ(result.median_interarrival, 55.0);
}

TEST(Locality, ExcludeImagesOption) {
  const auto t = make_trace({{0, "c1", "s1", "/a/x.html"},
                             {1, "c1", "s1", "/a/pic.gif"},
                             {2, "c1", "s1", "/a/y.html"}});
  LocalityOptions options;
  options.exclude_images = true;
  const auto result = directory_locality(t, 1, options);
  EXPECT_EQ(result.requests, 2u);
  EXPECT_DOUBLE_EQ(result.median_interarrival, 2.0);  // 0 -> 2
}

TEST(Locality, CdfEvaluatedAtRequestedPoints) {
  const auto t = make_trace({{0, "c1", "s1", "/a/x.html"},
                             {3, "c1", "s1", "/a/y.html"},
                             {103, "c1", "s1", "/a/z.html"}});
  LocalityOptions options;
  options.cdf_points = {5.0, 200.0};
  const auto result = directory_locality(t, 1, options);
  ASSERT_EQ(result.cdf_values.size(), 2u);
  EXPECT_DOUBLE_EQ(result.cdf_values[0], 0.5);  // gap 3 <= 5; gap 100 not
  EXPECT_DOUBLE_EQ(result.cdf_values[1], 1.0);
}

TEST(Locality, DeeperLevelsSeeLessLocality) {
  // On a client-trace profile: seen-before fraction must fall (weakly)
  // with deeper prefixes, and median interarrival must rise — Figure 1(a).
  const auto workload = trace::generate(trace::att_client_profile(0.01));
  double prev_fraction = 1.1;
  for (int level = 0; level <= 4; ++level) {
    const auto result = directory_locality(workload.trace, level);
    EXPECT_LE(result.seen_before_fraction, prev_fraction + 1e-9)
        << "level " << level;
    prev_fraction = result.seen_before_fraction;
  }
}

TEST(Locality, EmptyTrace) {
  trace::Trace t;
  const auto result = directory_locality(t, 1);
  EXPECT_EQ(result.requests, 0u);
  EXPECT_DOUBLE_EQ(result.seen_before_fraction, 0.0);
  EXPECT_TRUE(result.cdf_values.empty());
}

}  // namespace
}  // namespace piggyweb::sim

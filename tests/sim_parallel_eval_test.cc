// Determinism property tests for the parallel sharded evaluation engine:
// for every synthetic log profile and a spread of filter configurations,
// ParallelEvaluator at 1/2/4/8 threads must produce an EvalResult that is
// byte-identical to the serial PredictionEvaluator, and the rendered
// metric report must match character for character. Runs under the tsan
// ctest label (-DPIGGYWEB_SANITIZE=thread + `ctest -L tsan`).
#include "sim/parallel_eval.h"

#include <cstring>
#include <string>
#include <thread>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "server/meta.h"
#include "sim/prediction_eval.h"
#include "sim/report.h"
#include "trace/profiles.h"
#include "util/rng.h"
#include "volume/directory.h"
#include "volume/pair_counter.h"
#include "volume/probability.h"
#include "volume/sharded_pair_counter.h"

namespace piggyweb {
namespace {

// Every profile the synthetic generator knows, at scales small enough to
// keep the whole suite within seconds.
std::vector<trace::LogProfile> tiny_profiles() {
  return {trace::aiusa_profile(0.03),      trace::apache_profile(0.002),
          trace::sun_profile(0.0005),     trace::marimba_profile(0.025),
          trace::att_client_profile(0.005),
          trace::digital_client_profile(0.002)};
}

void expect_identical(const sim::EvalResult& serial,
                      const sim::EvalResult& parallel,
                      const std::string& label) {
  // Field comparisons first for readable failures...
  EXPECT_EQ(serial.requests, parallel.requests) << label;
  EXPECT_EQ(serial.predicted_requests, parallel.predicted_requests) << label;
  EXPECT_EQ(serial.piggyback_messages, parallel.piggyback_messages) << label;
  EXPECT_EQ(serial.piggyback_elements, parallel.piggyback_elements) << label;
  EXPECT_EQ(serial.predictions_made, parallel.predictions_made) << label;
  EXPECT_EQ(serial.predictions_true, parallel.predictions_true) << label;
  EXPECT_EQ(serial.prev_occurrence_within_horizon,
            parallel.prev_occurrence_within_horizon)
      << label;
  EXPECT_EQ(serial.prev_occurrence_within_window,
            parallel.prev_occurrence_within_window)
      << label;
  EXPECT_EQ(serial.updated_by_piggyback, parallel.updated_by_piggyback)
      << label;
  // ...then the headline guarantee: byte identity and identical reports.
  static_assert(std::is_trivially_copyable_v<sim::EvalResult>);
  EXPECT_EQ(std::memcmp(&serial, &parallel, sizeof serial), 0) << label;
  EXPECT_EQ(sim::render_eval_report(serial),
            sim::render_eval_report(parallel))
      << label;
}

// The paper's §3.2 configuration with every dynamic control turned on:
// RPV suppression, frequency control, and an access filter.
sim::EvalConfig full_controls_config() {
  sim::EvalConfig config;
  config.filter.max_elements = 20;
  config.filter.min_access_count = 3;
  config.use_rpv = true;
  config.rpv.timeout = 30;
  config.min_piggyback_interval = 15;
  return config;
}

// Heavy access filter + longer window, no RPV (the other §3.2.2 corner).
sim::EvalConfig access_filter_config() {
  sim::EvalConfig config;
  config.prediction_window = 900;
  config.filter.max_elements = 8;
  config.filter.min_access_count = 10;
  return config;
}

sim::EvalResult run_serial_directory(const trace::SyntheticWorkload& w,
                                     const sim::EvalConfig& config,
                                     int level) {
  volume::DirectoryVolumeConfig dvc;
  dvc.level = level;
  volume::DirectoryVolumes volumes(dvc);
  volumes.bind_paths(w.trace.paths());
  server::TraceMetaOracle meta(w.trace);
  return sim::PredictionEvaluator(config).run(w.trace, volumes, meta);
}

sim::EvalResult run_parallel_directory(const trace::SyntheticWorkload& w,
                                       const sim::EvalConfig& config,
                                       int level,
                                       const sim::ParallelEvalConfig& par,
                                       sim::ParallelEvalStats* stats =
                                           nullptr) {
  volume::DirectoryVolumeConfig dvc;
  dvc.level = level;
  const auto spec = sim::shard_directory_volumes(dvc, w.trace);
  server::TraceMetaOracle meta(w.trace);
  return sim::ParallelEvaluator(config, par).run(w.trace, spec, meta, stats);
}

TEST(ParallelEvalDeterminism, DirectoryAllProfilesAllThreadCounts) {
  const auto config = full_controls_config();
  for (const auto& profile : tiny_profiles()) {
    const auto workload = trace::generate(profile);
    ASSERT_GT(workload.trace.size(), 100u) << profile.name;
    const auto serial = run_serial_directory(workload, config, 1);
    for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
      sim::ParallelEvalConfig par;
      par.threads = threads;
      const auto parallel =
          run_parallel_directory(workload, config, 1, par);
      expect_identical(serial, parallel,
                       profile.name + " threads=" +
                           std::to_string(threads));
    }
  }
}

TEST(ParallelEvalDeterminism, DirectoryAccessFilterConfig) {
  const auto config = access_filter_config();
  for (const auto& profile :
       {trace::aiusa_profile(0.03), trace::sun_profile(0.0005)}) {
    const auto workload = trace::generate(profile);
    for (const int level : {0, 2}) {
      const auto serial = run_serial_directory(workload, config, level);
      for (const std::size_t threads : {2u, 8u}) {
        sim::ParallelEvalConfig par;
        par.threads = threads;
        const auto parallel =
            run_parallel_directory(workload, config, level, par);
        expect_identical(serial, parallel,
                         profile.name + " level=" + std::to_string(level) +
                             " threads=" + std::to_string(threads));
      }
    }
  }
}

TEST(ParallelEvalDeterminism, ChunkBoundariesAndAsymmetricShards) {
  const auto config = full_controls_config();
  const auto workload = trace::generate(trace::aiusa_profile(0.03));
  const auto serial = run_serial_directory(workload, config, 1);
  // Tiny chunks force many stage-1/stage-2 handoffs; shard counts that
  // differ from the thread count exercise the queueing paths.
  sim::ParallelEvalConfig par;
  par.threads = 2;
  par.provider_shards = 3;
  par.source_shards = 5;
  par.chunk_requests = 64;
  const auto parallel = run_parallel_directory(workload, config, 1, par);
  expect_identical(serial, parallel, "chunk=64 pshards=3 sshards=5");
}

TEST(ParallelEvalDeterminism, StatsReportShardingAndVolumeTotals) {
  const auto workload = trace::generate(trace::marimba_profile(0.025));
  const sim::EvalConfig config;  // defaults: static filter only

  volume::DirectoryVolumeConfig dvc;
  volume::DirectoryVolumes serial_volumes(dvc);
  serial_volumes.bind_paths(workload.trace.paths());
  server::TraceMetaOracle meta(workload.trace);
  const auto serial =
      sim::PredictionEvaluator(config).run(workload.trace, serial_volumes,
                                           meta);

  sim::ParallelEvalConfig par;
  par.threads = 4;
  sim::ParallelEvalStats stats;
  const auto parallel =
      run_parallel_directory(workload, config, dvc.level, par, &stats);
  expect_identical(serial, parallel, "stats run");
  EXPECT_EQ(stats.threads, 4u);
  EXPECT_EQ(stats.provider_shards, 4u);
  EXPECT_EQ(stats.source_shards, 4u);
  // Sharded providers partition the same volume key space.
  EXPECT_EQ(stats.volume_count, serial_volumes.volume_count());
}

TEST(ParallelEvalDeterminism, ProbabilityVolumesAllThreadCounts) {
  for (const auto& profile :
       {trace::aiusa_profile(0.03), trace::sun_profile(0.0005)}) {
    const auto workload = trace::generate(profile);
    volume::PairCounterConfig pcc;
    const auto counts =
        volume::PairCounterBuilder(pcc).build(workload.trace, 5);
    volume::ProbabilityVolumeConfig pvc;
    pvc.probability_threshold = 0.2;
    pvc.effectiveness_threshold = 0.1;
    const auto set =
        volume::build_probability_volumes(workload.trace, counts, pvc);

    auto config = full_controls_config();
    config.filter.min_access_count = 0;  // exercised by directory tests

    server::TraceMetaOracle meta(workload.trace);
    volume::ProbabilityVolumes provider(&set, pvc.max_candidates);
    const auto serial = sim::PredictionEvaluator(config).run(
        workload.trace, provider, meta);

    const auto spec =
        sim::shard_probability_volumes(&set, pvc.max_candidates);
    for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
      sim::ParallelEvalConfig par;
      par.threads = threads;
      const auto parallel =
          sim::ParallelEvaluator(config, par).run(workload.trace, spec,
                                                  meta);
      expect_identical(serial, parallel,
                       profile.name + " probability threads=" +
                           std::to_string(threads));
    }
  }
}

// Concurrency stress for the sharded counter table: hammer it from several
// real threads, then check the merged counts equal a serial replay of the
// same operations. Sums are commutative, so any interleaving must land on
// the same totals — and TSan checks the locking while this runs.
TEST(ShardedPairCounterConcurrency, InterleavedUpdatesMatchSerialReplay) {
  constexpr std::size_t kThreads = 4;
  constexpr int kOpsPerThread = 20'000;
  constexpr std::uint32_t kIdSpace = 47;

  volume::ShardedPairCounterTable table(8);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([t, &table] {
      util::Rng rng(0xC0FFEE + t);
      for (int op = 0; op < kOpsPerThread; ++op) {
        const auto r = static_cast<util::InternId>(rng.below(kIdSpace));
        const auto s = static_cast<util::InternId>(rng.below(kIdSpace));
        table.add_pair(r, s);
        table.add_occurrence(r);
      }
    });
  }
  for (auto& worker : workers) worker.join();

  // Serial replay with the same per-thread seeds.
  std::unordered_map<std::uint64_t, std::uint64_t> pairs;
  std::unordered_map<util::InternId, std::uint64_t> occurrences;
  for (std::size_t t = 0; t < kThreads; ++t) {
    util::Rng rng(0xC0FFEE + t);
    for (int op = 0; op < kOpsPerThread; ++op) {
      const auto r = static_cast<util::InternId>(rng.below(kIdSpace));
      const auto s = static_cast<util::InternId>(rng.below(kIdSpace));
      ++pairs[(static_cast<std::uint64_t>(r) << 32) | s];
      ++occurrences[r];
    }
  }

  for (std::uint32_t r = 0; r < kIdSpace; ++r) {
    const auto occ_it = occurrences.find(r);
    ASSERT_EQ(table.occurrences(r),
              occ_it == occurrences.end() ? 0 : occ_it->second)
        << "r=" << r;
    for (std::uint32_t s = 0; s < kIdSpace; ++s) {
      const auto key = (static_cast<std::uint64_t>(r) << 32) | s;
      const auto it = pairs.find(key);
      ASSERT_EQ(table.pair_count(r, s), it == pairs.end() ? 0 : it->second)
          << "r=" << r << " s=" << s;
    }
  }
  EXPECT_EQ(table.counter_count(), pairs.size());
}

}  // namespace
}  // namespace piggyweb

#include "core/wire_size.h"

#include <string>

#include <gtest/gtest.h>

namespace piggyweb::core {
namespace {

TEST(PiggybackBytes, EmptyMessageIsFree) {
  util::InternTable paths;
  EXPECT_EQ(piggyback_bytes({}, paths), 0u);
}

TEST(PiggybackBytes, PaperArithmetic) {
  // §2.3: a ~50-byte URL plus 8-byte Last-Modified and 8-byte size gives
  // ~66 bytes per element; 6 elements + the 2-byte volume id ≈ 398 bytes.
  util::InternTable paths;
  PiggybackMessage message;
  message.volume = 1;
  const std::string url50(50, 'u');
  for (int i = 0; i < 6; ++i) {
    message.elements.push_back(
        {paths.intern(url50 + std::to_string(i)), 1000, 875000000});
  }
  // Each URL here is 51 bytes -> 2 + 6*(51+16) = 404.
  EXPECT_EQ(piggyback_bytes(message, paths), 2u + 6u * (51u + 16u));
}

TEST(PiggybackBytes, SumsUrlLengths) {
  util::InternTable paths;
  PiggybackMessage message;
  message.volume = 0;
  message.elements.push_back({paths.intern("/ab"), 1, 1});   // 3 + 16
  message.elements.push_back({paths.intern("/cdef"), 1, 1}); // 5 + 16
  EXPECT_EQ(piggyback_bytes(message, paths), 2u + 19u + 21u);
}

TEST(PacketsFor, Boundaries) {
  constexpr std::uint64_t kPayload = kMtuBytes - kTcpIpHeaderBytes;  // 1460
  EXPECT_EQ(packets_for(0), 1u);
  EXPECT_EQ(packets_for(1), 1u);
  EXPECT_EQ(packets_for(kPayload), 1u);
  EXPECT_EQ(packets_for(kPayload + 1), 2u);
  EXPECT_EQ(packets_for(10 * kPayload), 10u);
}

TEST(WireCost, SmallPiggybackOftenFitsInLastPacket) {
  // A 1530-byte response (the paper's median) occupies 2 packets with
  // 1390 bytes of slack — a 398-byte piggyback adds no packet.
  util::InternTable paths;
  PiggybackMessage message;
  message.volume = 1;
  const std::string url50(50, 'u');
  for (int i = 0; i < 6; ++i) {
    message.elements.push_back(
        {paths.intern(url50 + std::to_string(i)), 1000, 875000000});
  }
  const auto cost = piggyback_wire_cost(1530, message, paths);
  EXPECT_GT(cost.bytes, 390u);
  EXPECT_EQ(cost.extra_packets, 0u);
}

TEST(WireCost, LargePiggybackCanAddAPacket) {
  util::InternTable paths;
  PiggybackMessage message;
  message.volume = 1;
  const std::string url(100, 'u');
  for (int i = 0; i < 30; ++i) {
    message.elements.push_back(
        {paths.intern(url + std::to_string(i)), 1, 1});
  }
  // ~3.5 KB of piggyback on a response that exactly fills its packets.
  const auto cost = piggyback_wire_cost(1460 * 2, message, paths);
  EXPECT_GE(cost.extra_packets, 2u);
}

TEST(WireCost, EmptyMessageCostsNothing) {
  util::InternTable paths;
  const auto cost = piggyback_wire_cost(5000, {}, paths);
  EXPECT_EQ(cost.bytes, 0u);
  EXPECT_EQ(cost.extra_packets, 0u);
}

}  // namespace
}  // namespace piggyweb::core

// Analytical steady-state oracles vs the real cache.
//
// Che's approximation gives a closed-form steady-state hit ratio for an
// LRU cache under the independent reference model. These tests (a) pin
// the oracle's own mathematical properties — monotonicity, bounds, the
// perfect-LFU ceiling — and (b) drive the production proxy::ProxyCache
// over long seeded Zipf request streams and require the measured hit
// ratio to land within a small tolerance of the prediction. A simulator
// bug that skews replacement order (a misplaced touch, a wrong victim)
// moves the measured ratio well outside the tolerance.
#include "sim/steady_state.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "proxy/cache.h"
#include "util/rng.h"

namespace piggyweb {
namespace {

// Measured steady-state hit ratio of the production cache under an IRM
// Zipf stream: unit-size objects, never-expiring entries, hits counted
// after a warm-up long enough to reach steady state.
double simulate_lru_hit_ratio(std::size_t catalog, double skew,
                              std::uint64_t capacity, std::uint64_t seed) {
  proxy::CacheConfig config;
  config.capacity_bytes = capacity;  // unit sizes: capacity in objects
  config.freshness_interval = std::int64_t{1} << 40;
  config.policy = proxy::ReplacementPolicy::kLru;
  proxy::ProxyCache cache(config);

  util::Rng rng(seed);
  const util::ZipfSampler zipf(catalog, skew);
  const std::size_t warmup = 100'000;
  const std::size_t measured = 400'000;
  std::uint64_t hits = 0;
  util::TimePoint now{0};
  for (std::size_t i = 0; i < warmup + measured; ++i) {
    const auto rank = zipf(rng);
    const proxy::CacheKey key{1, static_cast<util::InternId>(rank)};
    if (cache.lookup(key, now) == proxy::LookupOutcome::kMiss) {
      cache.insert(key, 1, /*last_modified=*/0, now);
    } else if (i >= warmup) {
      ++hits;
    }
    now = now + 1;
  }
  return static_cast<double>(hits) / static_cast<double>(measured);
}

std::vector<double> zipf_pmf(std::size_t catalog, double skew) {
  const util::ZipfSampler zipf(catalog, skew);
  std::vector<double> pmf(catalog);
  for (std::size_t rank = 0; rank < catalog; ++rank) {
    pmf[rank] = zipf.pmf(rank);
  }
  return pmf;
}

// Sampling noise over 400k requests is well under a point; the
// approximation error dominates. 0.03 absolute keeps the test meaningful
// (a replacement-order bug shifts the ratio by far more) without flaking.
constexpr double kTolerance = 0.03;

TEST(SteadyStateOracle, MatchesLruSimulationZipf08Small) {
  const double predicted = sim::zipf_lru_hit_ratio(2000, 0.8, 50);
  const double measured = simulate_lru_hit_ratio(2000, 0.8, 50, 0xabcdef01);
  EXPECT_NEAR(predicted, measured, kTolerance);
}

TEST(SteadyStateOracle, MatchesLruSimulationZipf08Large) {
  const double predicted = sim::zipf_lru_hit_ratio(2000, 0.8, 200);
  const double measured = simulate_lru_hit_ratio(2000, 0.8, 200, 0x12345678);
  EXPECT_NEAR(predicted, measured, kTolerance);
}

TEST(SteadyStateOracle, MatchesLruSimulationZipf10Small) {
  const double predicted = sim::zipf_lru_hit_ratio(2000, 1.0, 50);
  const double measured = simulate_lru_hit_ratio(2000, 1.0, 50, 0x5eed5eed);
  EXPECT_NEAR(predicted, measured, kTolerance);
}

TEST(SteadyStateOracle, MatchesLruSimulationZipf10Large) {
  const double predicted = sim::zipf_lru_hit_ratio(2000, 1.0, 200);
  const double measured = simulate_lru_hit_ratio(2000, 1.0, 200, 0x0badf00d);
  EXPECT_NEAR(predicted, measured, kTolerance);
}

TEST(SteadyStateOracle, HitRatioIsWithinBounds) {
  for (const double skew : {0.6, 0.8, 1.0, 1.2}) {
    for (const double capacity : {1.0, 10.0, 100.0, 1000.0}) {
      const double h = sim::zipf_lru_hit_ratio(2000, skew, capacity);
      EXPECT_GT(h, 0.0) << "skew " << skew << " capacity " << capacity;
      EXPECT_LT(h, 1.0) << "skew " << skew << " capacity " << capacity;
    }
  }
}

TEST(SteadyStateOracle, HitRatioIncreasesWithCapacity) {
  double previous = 0;
  for (const double capacity : {5.0, 20.0, 80.0, 320.0, 1280.0}) {
    const double h = sim::zipf_lru_hit_ratio(2000, 0.8, capacity);
    EXPECT_GT(h, previous) << "capacity " << capacity;
    previous = h;
  }
}

TEST(SteadyStateOracle, HitRatioIncreasesWithSkew) {
  // More concentrated popularity -> a fixed-size cache covers more mass.
  double previous = 0;
  for (const double skew : {0.2, 0.5, 0.8, 1.1, 1.4}) {
    const double h = sim::zipf_lru_hit_ratio(2000, skew, 100);
    EXPECT_GT(h, previous) << "skew " << skew;
    previous = h;
  }
}

TEST(SteadyStateOracle, FullCapacityIsCertainHit) {
  EXPECT_DOUBLE_EQ(sim::zipf_lru_hit_ratio(500, 0.8, 500), 1.0);
  EXPECT_DOUBLE_EQ(sim::zipf_lru_hit_ratio(500, 0.8, 900), 1.0);
}

TEST(SteadyStateOracle, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(sim::lru_zipf_steady_state({}, 10), 0.0);
  const std::vector<double> pmf = {0.5, 0.5};
  EXPECT_DOUBLE_EQ(sim::lru_zipf_steady_state(pmf, 0), 0.0);
  EXPECT_DOUBLE_EQ(sim::lru_zipf_steady_state(pmf, 2), 1.0);
}

TEST(SteadyStateOracle, LfuIsUpperBoundOnLru) {
  for (const double skew : {0.6, 0.9, 1.2}) {
    const auto pmf = zipf_pmf(2000, skew);
    for (const double capacity : {10.0, 50.0, 250.0}) {
      const double lru = sim::lru_zipf_steady_state(pmf, capacity);
      const double lfu = sim::lfu_zipf_steady_state(pmf, capacity);
      EXPECT_GE(lfu, lru) << "skew " << skew << " capacity " << capacity;
    }
  }
}

TEST(SteadyStateOracle, LfuIsTopCapacityMass) {
  // Zipf pmf is already sorted descending, so perfect LFU pins the first
  // C ranks.
  const auto pmf = zipf_pmf(100, 1.0);
  double expected = 0;
  for (std::size_t rank = 0; rank < 10; ++rank) expected += pmf[rank];
  EXPECT_NEAR(sim::lfu_zipf_steady_state(pmf, 10), expected, 1e-12);
}

TEST(SteadyStateOracle, CharacteristicTimeGrowsWithCapacity) {
  const auto pmf = zipf_pmf(2000, 0.8);
  const double t_small = sim::lru_characteristic_time(pmf, 50);
  const double t_large = sim::lru_characteristic_time(pmf, 500);
  EXPECT_GT(t_small, 0.0);
  EXPECT_GT(t_large, t_small);
}

TEST(SteadyStateOracle, CharacteristicTimeSolvesTheFixedPoint) {
  const auto pmf = zipf_pmf(1000, 0.9);
  const double capacity = 120;
  const double t = sim::lru_characteristic_time(pmf, capacity);
  double distinct = 0;
  for (const double p : pmf) distinct += 1 - std::exp(-p * t);
  EXPECT_NEAR(distinct, capacity, 1e-6);
}

}  // namespace
}  // namespace piggyweb

#include "proxy/filter_policy.h"

#include <gtest/gtest.h>

namespace piggyweb::proxy {
namespace {

FilterPolicyConfig base_config() {
  FilterPolicyConfig config;
  config.base.max_elements = 10;
  config.rpv.timeout = 60;
  config.rpv.max_entries = 8;
  return config;
}

TEST(FilterPolicy, BasePreferencesCarried) {
  FilterPolicy policy(base_config(), std::make_unique<core::AlwaysEnable>());
  const auto filter = policy.filter_for(/*server=*/1, {0});
  EXPECT_TRUE(filter.enabled);
  EXPECT_EQ(filter.max_elements, 10u);
  EXPECT_TRUE(filter.rpv.empty());
}

TEST(FilterPolicy, RpvAccumulatesPerServer) {
  FilterPolicy policy(base_config(), std::make_unique<core::AlwaysEnable>());
  policy.on_piggyback(1, /*volume=*/5, {100});
  policy.on_piggyback(1, /*volume=*/6, {110});
  policy.on_piggyback(2, /*volume=*/7, {110});

  const auto f1 = policy.filter_for(1, {120});
  ASSERT_EQ(f1.rpv.size(), 2u);
  EXPECT_EQ(f1.rpv[0], 5u);
  EXPECT_EQ(f1.rpv[1], 6u);

  const auto f2 = policy.filter_for(2, {120});
  ASSERT_EQ(f2.rpv.size(), 1u);
  EXPECT_EQ(f2.rpv[0], 7u);
}

TEST(FilterPolicy, RpvEntriesExpire) {
  FilterPolicy policy(base_config(), std::make_unique<core::AlwaysEnable>());
  policy.on_piggyback(1, 5, {100});
  EXPECT_FALSE(policy.filter_for(1, {150}).rpv.empty());
  EXPECT_TRUE(policy.filter_for(1, {161}).rpv.empty());
}

TEST(FilterPolicy, UseRpvOffSendsNoList) {
  auto config = base_config();
  config.use_rpv = false;
  FilterPolicy policy(config, std::make_unique<core::AlwaysEnable>());
  policy.on_piggyback(1, 5, {100});
  EXPECT_TRUE(policy.filter_for(1, {110}).rpv.empty());
}

TEST(FilterPolicy, MinIntervalFrequencyControl) {
  FilterPolicy policy(base_config(),
                      std::make_unique<core::MinIntervalEnable>(60));
  EXPECT_TRUE(policy.filter_for(1, {100}).enabled);
  policy.on_piggyback(1, 5, {100});
  EXPECT_FALSE(policy.filter_for(1, {130}).enabled);
  EXPECT_TRUE(policy.filter_for(1, {160}).enabled);
  // Another server is unaffected.
  EXPECT_TRUE(policy.filter_for(2, {130}).enabled);
}

TEST(FilterPolicy, DisabledFilterKeepsBasePrefsIrrelevant) {
  FilterPolicy policy(base_config(),
                      std::make_unique<core::MinIntervalEnable>(60));
  policy.on_piggyback(1, 5, {100});
  const auto filter = policy.filter_for(1, {110});
  EXPECT_FALSE(filter.enabled);
  // A disabled filter must not leak the RPV list (it is pointless there).
  EXPECT_TRUE(filter.rpv.empty());
}

}  // namespace
}  // namespace piggyweb::proxy

#include "sim/report.h"

#include <sstream>

#include <gtest/gtest.h>

namespace piggyweb::sim {
namespace {

TEST(Table, AlignsColumns) {
  Table table({"name", "value"});
  table.row({"short", "1"});
  table.row({"much-longer-name", "22"});
  std::ostringstream os;
  table.print(os);
  const auto text = os.str();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("much-longer-name"), std::string::npos);
  // Every line has the same width header/underline treatment.
  EXPECT_NE(text.find("----"), std::string::npos);
}

TEST(Table, PadsShortRows) {
  Table table({"a", "b", "c"});
  table.row({"only-one"});
  std::ostringstream os;
  table.print(os);
  EXPECT_NE(os.str().find("only-one"), std::string::npos);
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
  EXPECT_EQ(Table::num(-1.5, 1), "-1.5");
}

TEST(Table, PctFormatting) {
  EXPECT_EQ(Table::pct(0.123, 1), "12.3%");
  EXPECT_EQ(Table::pct(1.0, 0), "100%");
}

TEST(Table, CountFormatting) {
  EXPECT_EQ(Table::count(0), "0");
  EXPECT_EQ(Table::count(1234567), "1234567");
}

TEST(Table, EmptyTableStillPrintsHeader) {
  Table table({"col"});
  std::ostringstream os;
  table.print(os);
  EXPECT_NE(os.str().find("col"), std::string::npos);
}

}  // namespace
}  // namespace piggyweb::sim

#include "sim/report.h"

#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "obs/json.h"
#include "sim/prediction_eval.h"

namespace piggyweb::sim {
namespace {

EvalResult sample_result() {
  EvalResult result;
  result.requests = 1000;
  result.predicted_requests = 640;
  result.piggyback_messages = 250;
  result.piggyback_elements = 2000;
  result.predictions_made = 800;
  result.predictions_true = 600;
  result.prev_occurrence_within_horizon = 400;
  result.prev_occurrence_within_window = 120;
  result.updated_by_piggyback = 80;
  return result;
}

TEST(Table, AlignsColumns) {
  Table table({"name", "value"});
  table.row({"short", "1"});
  table.row({"much-longer-name", "22"});
  std::ostringstream os;
  table.print(os);
  const auto text = os.str();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("much-longer-name"), std::string::npos);
  // Every line has the same width header/underline treatment.
  EXPECT_NE(text.find("----"), std::string::npos);
}

TEST(Table, PadsShortRows) {
  Table table({"a", "b", "c"});
  table.row({"only-one"});
  std::ostringstream os;
  table.print(os);
  EXPECT_NE(os.str().find("only-one"), std::string::npos);
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
  EXPECT_EQ(Table::num(-1.5, 1), "-1.5");
}

TEST(Table, PctFormatting) {
  EXPECT_EQ(Table::pct(0.123, 1), "12.3%");
  EXPECT_EQ(Table::pct(1.0, 0), "100%");
}

TEST(Table, CountFormatting) {
  EXPECT_EQ(Table::count(0), "0");
  EXPECT_EQ(Table::count(1234567), "1234567");
}

TEST(Table, EmptyTableStillPrintsHeader) {
  Table table({"col"});
  std::ostringstream os;
  table.print(os);
  EXPECT_NE(os.str().find("col"), std::string::npos);
}

TEST(EvalReport, FieldTableIsTheSingleSourceOfTruth) {
  const auto result = sample_result();
  const auto fields = eval_report_fields(result);
  ASSERT_EQ(fields.size(), 7u);
  // Every field label appears in the text rendering, in order.
  const auto text = render_eval_report(result);
  std::size_t cursor = 0;
  for (const auto& field : fields) {
    const auto at = text.find(field.label, cursor);
    ASSERT_NE(at, std::string::npos) << field.label;
    cursor = at;
  }
}

TEST(EvalReport, JsonCarriesEveryFieldWithMatchingValue) {
  const auto result = sample_result();
  const auto parsed = obs::parse_json(render_eval_report_json(result));
  ASSERT_TRUE(parsed.has_value());
  const auto fields = eval_report_fields(result);
  ASSERT_EQ(parsed->members().size(), fields.size());
  for (const auto& field : fields) {
    const auto* value = parsed->find(field.key);
    ASSERT_NE(value, nullptr) << field.key;
    EXPECT_DOUBLE_EQ(value->number(), field.value) << field.key;
  }
}

TEST(EvalReport, JsonCountsAreIntegers) {
  const auto parsed = obs::parse_json(render_eval_report_json(sample_result()));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->find("requests")->dump(0), "1000");
  EXPECT_EQ(parsed->find("piggyback_messages")->dump(0), "250");
}

TEST(EvalReport, KnownValuesRenderInBothFormats) {
  const auto result = sample_result();
  const auto text = render_eval_report(result);
  // recall = 640/1000, precision = 600/800, avg size = 2000/250.
  EXPECT_NE(text.find("64.0%"), std::string::npos);
  EXPECT_NE(text.find("75.0%"), std::string::npos);
  EXPECT_NE(text.find("8.00"), std::string::npos);
  const auto parsed = obs::parse_json(render_eval_report_json(result));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_DOUBLE_EQ(parsed->find("fraction_predicted")->number(), 0.64);
  EXPECT_DOUBLE_EQ(parsed->find("avg_piggyback_size")->number(), 8.0);
}

}  // namespace
}  // namespace piggyweb::sim

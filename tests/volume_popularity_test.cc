#include "volume/popularity.h"

#include <gtest/gtest.h>

namespace piggyweb::volume {
namespace {

// A scripted primary provider for testing the decorator.
class ScriptedProvider final : public core::VolumeProvider {
 public:
  core::VolumePrediction next;
  core::VolumePrediction on_request(const core::VolumeRequest&) override {
    return next;
  }
  std::size_t volume_count() const override { return 1; }
  const char* scheme_name() const override { return "scripted"; }
};

core::VolumeRequest request_for(util::InternId path) {
  core::VolumeRequest r;
  r.path = path;
  r.time = {0};
  return r;
}

class PopularityTest : public ::testing::Test {
 protected:
  PopularityTest() : provider_(make_config(), primary_) {}

  static PopularityVolumeConfig make_config() {
    PopularityVolumeConfig config;
    config.top_n = 3;
    config.min_primary = 1;
    return config;
  }

  void warm(std::initializer_list<std::pair<util::InternId, int>> counts) {
    primary_.next = {};  // empty primary while warming
    for (const auto& [resource, n] : counts) {
      for (int i = 0; i < n; ++i) {
        provider_.on_request(request_for(resource));
      }
    }
  }

  ScriptedProvider primary_;
  PopularityVolumes provider_;
};

TEST_F(PopularityTest, TracksTopN) {
  warm({{1, 5}, {2, 3}, {3, 7}, {4, 1}, {5, 2}});
  const auto top = provider_.popular();
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0], 3u);  // 7 accesses
  EXPECT_EQ(top[1], 1u);  // 5
  // Third slot holds one of the lower-count resources.
}

TEST_F(PopularityTest, TopsUpEmptyPrimary) {
  warm({{1, 5}, {2, 3}, {3, 7}});
  primary_.next = {};  // nothing from the primary
  const auto prediction = provider_.on_request(request_for(99));
  EXPECT_EQ(prediction.volume, core::kMaxWireVolumeId);
  EXPECT_GE(prediction.resources.size(), 3u);
}

TEST_F(PopularityTest, LeavesRichPrimaryAlone) {
  warm({{1, 5}, {2, 3}});
  primary_.next.volume = 7;
  primary_.next.resources = {42};
  const auto prediction = provider_.on_request(request_for(99));
  EXPECT_EQ(prediction.volume, 7u);
  ASSERT_EQ(prediction.resources.size(), 1u);
  EXPECT_EQ(prediction.resources[0], 42u);
}

TEST_F(PopularityTest, NeverSuggestsRequestedResource) {
  warm({{1, 5}, {2, 3}, {3, 7}});
  primary_.next = {};
  const auto prediction = provider_.on_request(request_for(3));
  for (const auto res : prediction.resources) EXPECT_NE(res, 3u);
}

TEST_F(PopularityTest, NoDuplicatesWhenToppingUp) {
  warm({{1, 5}, {2, 3}, {3, 7}});
  PopularityVolumeConfig config;
  config.top_n = 3;
  config.min_primary = 5;  // always top up
  ScriptedProvider primary;
  PopularityVolumes provider(config, primary);
  for (int i = 0; i < 4; ++i) provider.on_request(request_for(1));
  for (int i = 0; i < 2; ++i) provider.on_request(request_for(2));
  primary.next.volume = 7;
  primary.next.resources = {1};  // popular resource already present
  const auto prediction = provider.on_request(request_for(99));
  int count1 = 0;
  for (const auto res : prediction.resources) count1 += (res == 1u);
  EXPECT_EQ(count1, 1);
}

TEST_F(PopularityTest, PopularityShiftsOverTime) {
  warm({{1, 10}});
  EXPECT_EQ(provider_.popular()[0], 1u);
  warm({{2, 20}});
  EXPECT_EQ(provider_.popular()[0], 2u);
}

TEST_F(PopularityTest, VolumeCountIncludesPopularVolume) {
  EXPECT_EQ(provider_.volume_count(), 2u);  // scripted (1) + popular
  EXPECT_STREQ(provider_.scheme_name(), "popularity-topped");
}

}  // namespace
}  // namespace piggyweb::volume

// ThreadPool + fork-join helper tests. These run under the tsan ctest
// label: build with -DPIGGYWEB_SANITIZE=thread and `ctest -L tsan` to
// check the synchronisation, not just the results.
#include "util/thread_pool.h"

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "util/parallel.h"

namespace piggyweb::util {
namespace {

TEST(ThreadPool, RunsEveryPostedTaskExactlyOnce) {
  std::atomic<int> runs{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 1000; ++i) {
      pool.post([&runs] { runs.fetch_add(1, std::memory_order_relaxed); });
    }
    // Destructor drains the queue before joining.
  }
  EXPECT_EQ(runs.load(), 1000);
}

TEST(ThreadPool, ClampsToAtLeastOneWorker) {
  std::atomic<bool> ran{false};
  {
    ThreadPool pool(0);
    EXPECT_EQ(pool.thread_count(), 1u);
    pool.post([&ran] { ran = true; });
  }
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, HardwareThreadsIsPositive) {
  EXPECT_GE(ThreadPool::hardware_threads(), 1u);
}

TEST(ParallelShards, CoversEveryShardExactlyOnce) {
  for (const std::size_t threads : {1u, 2u, 4u}) {
    ThreadPool pool(threads);
    for (const std::size_t shards : {0u, 1u, 3u, 16u, 100u}) {
      std::vector<std::atomic<int>> hits(shards);
      parallel_shards(pool, shards, [&hits](std::size_t s) {
        hits[s].fetch_add(1, std::memory_order_relaxed);
      });
      for (std::size_t s = 0; s < shards; ++s) {
        EXPECT_EQ(hits[s].load(), 1) << "shard " << s;
      }
    }
  }
}

TEST(ParallelShards, IsABarrier) {
  ThreadPool pool(4);
  // Writes made inside the fork must be visible, without synchronisation,
  // after the join returns.
  std::vector<std::uint64_t> out(64, 0);
  parallel_shards(pool, out.size(),
                  [&out](std::size_t s) { out[s] = s * s; });
  for (std::size_t s = 0; s < out.size(); ++s) {
    ASSERT_EQ(out[s], s * s);
  }
}

TEST(ParallelShards, RethrowsTaskException) {
  ThreadPool pool(3);
  EXPECT_THROW(parallel_shards(pool, 8,
                               [](std::size_t s) {
                                 if (s == 5) {
                                   throw std::runtime_error("shard 5");
                                 }
                               }),
               std::runtime_error);
  // The pool must still be usable after a failed fork-join.
  std::atomic<int> runs{0};
  parallel_shards(pool, 4, [&runs](std::size_t) { ++runs; });
  EXPECT_EQ(runs.load(), 4);
}

TEST(ParallelRanges, PartitionsExactly) {
  for (const std::size_t threads : {1u, 2u, 5u}) {
    ThreadPool pool(threads);
    for (const std::size_t n : {0u, 1u, 7u, 64u, 1000u}) {
      std::vector<std::atomic<int>> hits(n);
      parallel_ranges(pool, n, [&hits](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          hits[i].fetch_add(1, std::memory_order_relaxed);
        }
      });
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "n " << n << " index " << i;
      }
    }
  }
}

TEST(ParallelRanges, SumMatchesSerial) {
  ThreadPool pool(4);
  std::vector<std::uint64_t> values(10'000);
  std::iota(values.begin(), values.end(), 1);
  // One partial slot per shard index keeps the merge deterministic.
  std::vector<std::uint64_t> partial(values.size(), 0);
  parallel_ranges(pool, values.size(),
                  [&](std::size_t begin, std::size_t end) {
                    std::uint64_t sum = 0;
                    for (std::size_t i = begin; i < end; ++i) {
                      sum += values[i];
                    }
                    partial[begin] = sum;
                  });
  const auto total =
      std::accumulate(partial.begin(), partial.end(), std::uint64_t{0});
  EXPECT_EQ(total, 10'000ull * 10'001ull / 2);
}

TEST(ParallelShards, ManyRoundsReuseOnePool) {
  ThreadPool pool(4);
  std::atomic<std::uint64_t> total{0};
  for (int round = 0; round < 200; ++round) {
    parallel_shards(pool, 8, [&total](std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 1600u);
}

}  // namespace
}  // namespace piggyweb::util

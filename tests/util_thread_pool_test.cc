// ThreadPool + fork-join helper tests. These run under the tsan ctest
// label: build with -DPIGGYWEB_SANITIZE=thread and `ctest -L tsan` to
// check the synchronisation, not just the results.
#include "util/thread_pool.h"

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "obs/pool_metrics.h"
#include "obs/registry.h"
#include "util/parallel.h"

namespace piggyweb::util {
namespace {

TEST(ThreadPool, RunsEveryPostedTaskExactlyOnce) {
  std::atomic<int> runs{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 1000; ++i) {
      pool.post([&runs] { runs.fetch_add(1, std::memory_order_relaxed); });
    }
    // Destructor drains the queue before joining.
  }
  EXPECT_EQ(runs.load(), 1000);
}

TEST(ThreadPool, ClampsToAtLeastOneWorker) {
  std::atomic<bool> ran{false};
  {
    ThreadPool pool(0);
    EXPECT_EQ(pool.thread_count(), 1u);
    pool.post([&ran] { ran = true; });
  }
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, HardwareThreadsIsPositive) {
  EXPECT_GE(ThreadPool::hardware_threads(), 1u);
}

TEST(ParallelShards, CoversEveryShardExactlyOnce) {
  for (const std::size_t threads : {1u, 2u, 4u}) {
    ThreadPool pool(threads);
    for (const std::size_t shards : {0u, 1u, 3u, 16u, 100u}) {
      std::vector<std::atomic<int>> hits(shards);
      parallel_shards(pool, shards, [&hits](std::size_t s) {
        hits[s].fetch_add(1, std::memory_order_relaxed);
      });
      for (std::size_t s = 0; s < shards; ++s) {
        EXPECT_EQ(hits[s].load(), 1) << "shard " << s;
      }
    }
  }
}

TEST(ParallelShards, IsABarrier) {
  ThreadPool pool(4);
  // Writes made inside the fork must be visible, without synchronisation,
  // after the join returns.
  std::vector<std::uint64_t> out(64, 0);
  parallel_shards(pool, out.size(),
                  [&out](std::size_t s) { out[s] = s * s; });
  for (std::size_t s = 0; s < out.size(); ++s) {
    ASSERT_EQ(out[s], s * s);
  }
}

TEST(ParallelShards, RethrowsTaskException) {
  ThreadPool pool(3);
  EXPECT_THROW(parallel_shards(pool, 8,
                               [](std::size_t s) {
                                 if (s == 5) {
                                   throw std::runtime_error("shard 5");
                                 }
                               }),
               std::runtime_error);
  // The pool must still be usable after a failed fork-join.
  std::atomic<int> runs{0};
  parallel_shards(pool, 4, [&runs](std::size_t) { ++runs; });
  EXPECT_EQ(runs.load(), 4);
}

TEST(ParallelRanges, PartitionsExactly) {
  for (const std::size_t threads : {1u, 2u, 5u}) {
    ThreadPool pool(threads);
    for (const std::size_t n : {0u, 1u, 7u, 64u, 1000u}) {
      std::vector<std::atomic<int>> hits(n);
      parallel_ranges(pool, n, [&hits](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          hits[i].fetch_add(1, std::memory_order_relaxed);
        }
      });
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "n " << n << " index " << i;
      }
    }
  }
}

TEST(ParallelRanges, SumMatchesSerial) {
  ThreadPool pool(4);
  std::vector<std::uint64_t> values(10'000);
  std::iota(values.begin(), values.end(), 1);
  // One partial slot per shard index keeps the merge deterministic.
  std::vector<std::uint64_t> partial(values.size(), 0);
  parallel_ranges(pool, values.size(),
                  [&](std::size_t begin, std::size_t end) {
                    std::uint64_t sum = 0;
                    for (std::size_t i = begin; i < end; ++i) {
                      sum += values[i];
                    }
                    partial[begin] = sum;
                  });
  const auto total =
      std::accumulate(partial.begin(), partial.end(), std::uint64_t{0});
  EXPECT_EQ(total, 10'000ull * 10'001ull / 2);
}

class CountingObserver : public ThreadPoolObserver {
 public:
  void on_post(std::size_t queue_depth) override {
    posts.fetch_add(1, std::memory_order_relaxed);
    // High-watermark under a race-free CAS loop.
    auto seen = max_depth.load(std::memory_order_relaxed);
    while (queue_depth > seen &&
           !max_depth.compare_exchange_weak(seen, queue_depth)) {
    }
  }
  void on_task_complete(double run_seconds) override {
    completions.fetch_add(1, std::memory_order_relaxed);
    if (run_seconds >= 0) nonnegative.fetch_add(1, std::memory_order_relaxed);
  }
  void on_dequeue(double queue_seconds, bool handoff) override {
    dequeues.fetch_add(1, std::memory_order_relaxed);
    if (queue_seconds >= 0) {
      nonnegative_queue.fetch_add(1, std::memory_order_relaxed);
    }
    if (handoff) handoffs.fetch_add(1, std::memory_order_relaxed);
  }
  void on_worker_idle(double idle_seconds) override {
    if (idle_seconds >= 0) idles.fetch_add(1, std::memory_order_relaxed);
  }

  std::atomic<std::uint64_t> posts{0};
  std::atomic<std::uint64_t> completions{0};
  std::atomic<std::uint64_t> nonnegative{0};
  std::atomic<std::uint64_t> dequeues{0};
  std::atomic<std::uint64_t> nonnegative_queue{0};
  std::atomic<std::uint64_t> handoffs{0};
  std::atomic<std::uint64_t> idles{0};
  std::atomic<std::size_t> max_depth{0};
};

TEST(ThreadPoolObserver, SeesEveryPostAndCompletion) {
  CountingObserver observer;
  {
    ThreadPool pool(4, &observer);
    for (int i = 0; i < 500; ++i) {
      pool.post([] {});
    }
  }
  EXPECT_EQ(observer.posts.load(), 500u);
  EXPECT_EQ(observer.completions.load(), 500u);
  // Task wall times are monotone-clock differences: never negative.
  EXPECT_EQ(observer.nonnegative.load(), 500u);
  EXPECT_GE(observer.max_depth.load(), 1u);
  // Every task is dequeued exactly once, with a non-negative queue wait.
  EXPECT_EQ(observer.dequeues.load(), 500u);
  EXPECT_EQ(observer.nonnegative_queue.load(), 500u);
  // Handoffs (dequeues after an actual condvar sleep) are a subset of
  // dequeues, and each one reports its idle interval.
  EXPECT_LE(observer.handoffs.load(), 500u);
  EXPECT_EQ(observer.idles.load(), observer.handoffs.load());
}

TEST(ThreadPoolObserver, NullObserverIsTheDefaultPath) {
  // No observer attached: the pool must not time tasks or call hooks.
  std::atomic<int> runs{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      pool.post([&runs] { runs.fetch_add(1, std::memory_order_relaxed); });
    }
  }
  EXPECT_EQ(runs.load(), 100);
}

TEST(ThreadPoolMetrics, PopulatesRegistry) {
  obs::Registry registry;
  {
    obs::ThreadPoolMetrics metrics(registry, "test.pool");
    ThreadPool pool(3, &metrics);
    parallel_shards(pool, 64, [](std::size_t) {});
  }
  EXPECT_EQ(registry.counter("test.pool.tasks",
                             /*deterministic=*/false)
                .value(),
            64u);
  EXPECT_GE(registry
                .gauge("test.pool.queue_depth_max",
                       /*deterministic=*/false)
                .value(),
            1.0);
  const auto& task_seconds =
      registry.log_histogram("test.pool.task_seconds");
  EXPECT_EQ(task_seconds.count(), 64u);
  EXPECT_GE(task_seconds.min(), 0.0);
  // Every dequeue records a queue latency; handoffs are a subset of
  // dequeues (only the ones where the worker actually slept).
  const auto& queue_seconds =
      registry.log_histogram("test.pool.queue_seconds");
  EXPECT_EQ(queue_seconds.count(), 64u);
  EXPECT_GE(queue_seconds.min(), 0.0);
  EXPECT_LE(registry.counter("test.pool.handoffs",
                             /*deterministic=*/false)
                .value(),
            64u);
  // Idle time is recorded once per handoff.
  EXPECT_EQ(registry.log_histogram("test.pool.idle_seconds").count(),
            registry.counter("test.pool.handoffs",
                             /*deterministic=*/false)
                .value());
}

TEST(ThreadPoolMetrics, MakePoolMetricsNullRegistry) {
  EXPECT_EQ(obs::make_pool_metrics(nullptr, "x"), nullptr);
  obs::Registry registry;
  const auto metrics = obs::make_pool_metrics(&registry, "y");
  ASSERT_NE(metrics, nullptr);
  metrics->on_task_complete(0.01);
  EXPECT_EQ(
      registry.counter("y.tasks", /*deterministic=*/false).value(), 1u);
}

TEST(ParallelShards, ManyRoundsReuseOnePool) {
  ThreadPool pool(4);
  std::atomic<std::uint64_t> total{0};
  for (int round = 0; round < 200; ++round) {
    parallel_shards(pool, 8, [&total](std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 1600u);
}

TEST(PostBatch, RunsEveryTaskExactlyOnce) {
  std::vector<std::atomic<int>> hits(256);
  {
    ThreadPool pool(4);
    std::vector<std::function<void()>> tasks;
    tasks.reserve(hits.size());
    for (std::size_t i = 0; i < hits.size(); ++i) {
      tasks.emplace_back([&hits, i] {
        hits[i].fetch_add(1, std::memory_order_relaxed);
      });
    }
    pool.post_batch(tasks);
  }
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "task " << i;
  }
}

TEST(PostBatch, EmptyBatchIsANoOp) {
  ThreadPool pool(2);
  std::vector<std::function<void()>> none;
  pool.post_batch(none);
  EXPECT_EQ(pool.queue_depth(), 0u);
  // The pool stays usable after the no-op.
  std::atomic<int> runs{0};
  parallel_shards(pool, 4, [&runs](std::size_t) { ++runs; });
  EXPECT_EQ(runs.load(), 4);
}

TEST(PostBatch, SingleTaskBatch) {
  std::atomic<int> runs{0};
  {
    ThreadPool pool(2);
    std::vector<std::function<void()>> tasks;
    tasks.emplace_back([&runs] { ++runs; });
    pool.post_batch(tasks);
  }
  EXPECT_EQ(runs.load(), 1);
}

TEST(PostBatch, ObserverSeesEveryTaskOnceAtBatchDepth) {
  CountingObserver observer;
  {
    ThreadPool pool(4, &observer);
    std::vector<std::function<void()>> tasks(100, [] {});
    pool.post_batch(tasks);
  }
  EXPECT_EQ(observer.posts.load(), 100u);
  EXPECT_EQ(observer.completions.load(), 100u);
  EXPECT_EQ(observer.dequeues.load(), 100u);
  EXPECT_EQ(observer.nonnegative_queue.load(), 100u);
  // The whole batch becomes visible under one lock: every task reports
  // the post-batch depth, captured before any worker could dequeue.
  EXPECT_EQ(observer.max_depth.load(), 100u);
}

}  // namespace
}  // namespace piggyweb::util

#include "proxy/prefetch.h"

#include <gtest/gtest.h>

namespace piggyweb::proxy {
namespace {

CacheConfig cache_config() {
  CacheConfig c;
  c.capacity_bytes = 1'000'000;
  c.freshness_interval = 3600;
  return c;
}

PrefetchConfig prefetch_config() {
  PrefetchConfig c;
  c.max_resource_bytes = 1000;
  c.budget_bytes_per_piggyback = 2500;
  c.skip_if_modified_within = 60;
  c.useful_window = 300;
  return c;
}

core::PiggybackMessage message_with(
    std::initializer_list<core::PiggybackElement> elements) {
  core::PiggybackMessage m;
  m.volume = 1;
  m.elements = elements;
  return m;
}

TEST(Prefetcher, PlansUncachedSmallResources) {
  ProxyCache cache(cache_config());
  Prefetcher prefetcher(prefetch_config(), cache);
  const auto planned = prefetcher.plan(
      0, message_with({{1, 500, 0}, {2, 400, 0}}), {1000});
  EXPECT_EQ(planned.size(), 2u);
}

TEST(Prefetcher, SkipsCachedResources) {
  ProxyCache cache(cache_config());
  cache.insert({0, 1}, 500, 0, {0});
  Prefetcher prefetcher(prefetch_config(), cache);
  const auto planned =
      prefetcher.plan(0, message_with({{1, 500, 0}, {2, 400, 0}}), {1000});
  ASSERT_EQ(planned.size(), 1u);
  EXPECT_EQ(planned[0].resource, 2u);
}

TEST(Prefetcher, SkipsOversizedResources) {
  ProxyCache cache(cache_config());
  Prefetcher prefetcher(prefetch_config(), cache);
  const auto planned =
      prefetcher.plan(0, message_with({{1, 5000, 0}}), {1000});
  EXPECT_TRUE(planned.empty());
}

TEST(Prefetcher, RespectsByteBudget) {
  ProxyCache cache(cache_config());
  Prefetcher prefetcher(prefetch_config(), cache);  // budget 2500
  const auto planned = prefetcher.plan(
      0,
      message_with({{1, 1000, 0}, {2, 1000, 0}, {3, 1000, 0}, {4, 100, 0}}),
      {1000});
  // 1000+1000 fits; the third 1000 would blow the budget; the 100 fits.
  ASSERT_EQ(planned.size(), 3u);
  EXPECT_EQ(planned[2].resource, 4u);
}

TEST(Prefetcher, SkipsRecentlyModified) {
  ProxyCache cache(cache_config());
  Prefetcher prefetcher(prefetch_config(), cache);
  // Modified 30s ago (< 60s settle time): too hot.
  const auto planned =
      prefetcher.plan(0, message_with({{1, 500, /*lm=*/970}}), {1000});
  EXPECT_TRUE(planned.empty());
  // Modified 120s ago: fine.
  const auto planned2 =
      prefetcher.plan(0, message_with({{2, 500, /*lm=*/880}}), {1000});
  EXPECT_EQ(planned2.size(), 1u);
}

TEST(Prefetcher, CompleteInsertsIntoCache) {
  ProxyCache cache(cache_config());
  Prefetcher prefetcher(prefetch_config(), cache);
  prefetcher.complete(0, {1, 500, 100}, {1000});
  EXPECT_TRUE(cache.contains({0, 1}));
  EXPECT_EQ(prefetcher.stats().issued, 1u);
  EXPECT_EQ(prefetcher.stats().bytes_fetched, 500u);
  EXPECT_EQ(prefetcher.outstanding(), 1u);
}

TEST(Prefetcher, ClientRequestWithinWindowIsUseful) {
  ProxyCache cache(cache_config());
  Prefetcher prefetcher(prefetch_config(), cache);
  prefetcher.complete(0, {1, 500, 100}, {1000});
  prefetcher.on_client_request({0, 1}, {1200});
  EXPECT_EQ(prefetcher.stats().useful, 1u);
  EXPECT_EQ(prefetcher.stats().useful_bytes, 500u);
  EXPECT_EQ(prefetcher.outstanding(), 0u);
}

TEST(Prefetcher, UnusedPrefetchExpiresFutile) {
  ProxyCache cache(cache_config());
  Prefetcher prefetcher(prefetch_config(), cache);
  prefetcher.complete(0, {1, 500, 100}, {1000});
  prefetcher.expire({1400});  // window 300 passed
  EXPECT_EQ(prefetcher.stats().futile, 1u);
  EXPECT_EQ(prefetcher.stats().futile_bytes, 500u);
  EXPECT_EQ(prefetcher.outstanding(), 0u);
}

TEST(Prefetcher, LateClientRequestDoesNotCredit) {
  ProxyCache cache(cache_config());
  Prefetcher prefetcher(prefetch_config(), cache);
  prefetcher.complete(0, {1, 500, 100}, {1000});
  prefetcher.on_client_request({0, 1}, {2000});  // past the window
  EXPECT_EQ(prefetcher.stats().useful, 0u);
  EXPECT_EQ(prefetcher.stats().futile, 1u);
}

TEST(Prefetcher, DoesNotReplanOutstanding) {
  ProxyCache cache(cache_config());
  Prefetcher prefetcher(prefetch_config(), cache);
  prefetcher.complete(0, {1, 500, 100}, {1000});
  // Entry is now cached AND outstanding — a replan must skip it.
  const auto planned =
      prefetcher.plan(0, message_with({{1, 500, 100}}), {1100});
  EXPECT_TRUE(planned.empty());
}

TEST(Prefetcher, FutileFractionMath) {
  PrefetchStats stats;
  EXPECT_DOUBLE_EQ(stats.futile_fraction(), 0.0);
  stats.useful = 3;
  stats.futile = 1;
  EXPECT_DOUBLE_EQ(stats.futile_fraction(), 0.25);
}

}  // namespace
}  // namespace piggyweb::proxy

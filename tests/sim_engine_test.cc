// The topology-general engine: structural helpers, a depth-3 multi-origin
// tree driven by a client-trace workload (many origin servers), request
// conservation across the node graph, piggyback relay reaching every
// cache level, per-link cost accounting, and the informed-fetch replay.
#include <gtest/gtest.h>

#include <algorithm>

#include "sim/end_to_end.h"
#include "sim/engine.h"
#include "sim/hierarchy.h"
#include "trace/profiles.h"

namespace piggyweb {
namespace {

const trace::SyntheticWorkload& client_workload() {
  // AT&T client-trace profile: requests spread over many origin servers,
  // exercising the multi-origin side of the engine.
  static const trace::SyntheticWorkload workload =
      trace::generate(trace::att_client_profile(0.02));
  return workload;
}

sim::UniformTreeSpec tree_spec(int depth, int fanout) {
  sim::UniformTreeSpec spec;
  spec.depth = depth;
  spec.fanout = fanout;
  spec.leaf_cache.capacity_bytes = 2ULL * 1024 * 1024;
  spec.leaf_cache.freshness_interval = 2 * util::kHour;
  spec.root_cache.capacity_bytes = 32ULL * 1024 * 1024;
  spec.root_cache.freshness_interval = 2 * util::kHour;
  spec.base_filter.max_elements = 20;
  return spec;
}

sim::EngineConfig engine_config() {
  sim::EngineConfig config;
  config.volumes.level = 1;
  return config;
}

TEST(SimulationEngine, DepthThreeMultiOriginTree) {
  auto spec = tree_spec(3, 2);
  spec.origin_link = net::NetworkConfig{};
  const auto topology = sim::uniform_tree_topology(spec);
  sim::SimulationEngine engine(client_workload(), topology, engine_config());
  const auto result = engine.run();

  EXPECT_EQ(result.client_requests, client_workload().trace.size());
  EXPECT_GT(result.server_contacts, 0u);
  // Client traces hit many origin sites; the center tracks one volume
  // directory per server.
  EXPECT_GT(result.center.servers_tracked, 1u);

  // Conservation: every request is unresolved, served at some node, or
  // reaches an origin.
  EXPECT_EQ(result.client_requests,
            result.unresolved + result.total_fresh_hits() +
                result.server_contacts);

  // All three levels participate: leaves serve their clients, inner and
  // root levels serve walk-ups.
  ASSERT_EQ(result.nodes.size(), 7u);
  EXPECT_GT(result.leaf_fresh_hits(), 0u);
  EXPECT_GT(result.root_fresh_hits(), 0u);

  // The relay carries each origin piggyback down the request path, so
  // every depth sees coherency traffic.
  for (int depth = 0; depth < 3; ++depth) {
    std::uint64_t processed = 0;
    for (const auto& node : result.nodes) {
      if (node.depth == depth) processed += node.coherency.piggybacks_processed;
    }
    EXPECT_GT(processed, 0u) << "no piggybacks at depth " << depth;
  }

  // Only the root has a cost-accounted link in this preset.
  EXPECT_GT(result.connections.opened, 0u);
  EXPECT_GT(result.user_latency_sum, 0.0);
  EXPECT_GT(result.total_packets, 0u);
}

TEST(SimulationEngine, RelayOffKeepsLowerLevelsCold) {
  auto topology = sim::uniform_tree_topology(tree_spec(3, 2));
  topology.relay_to_descendants = false;
  sim::SimulationEngine engine(client_workload(), topology, engine_config());
  const auto result = engine.run();
  for (const auto& node : result.nodes) {
    if (node.depth > 0) {
      EXPECT_EQ(node.coherency.piggybacks_processed, 0u) << node.name;
    }
  }
  EXPECT_GT(result.merged_root_coherency().piggybacks_processed, 0u);
}

TEST(SimulationEngine, DeeperTreesServeMoreLocally) {
  // Sanity on the sweep dimension: adding cache levels must not increase
  // origin contacts (every level can only absorb more requests).
  auto flat_spec = tree_spec(1, 1);
  const auto flat =
      sim::SimulationEngine(client_workload(),
                            sim::uniform_tree_topology(flat_spec),
                            engine_config())
          .run();
  const auto deep =
      sim::SimulationEngine(client_workload(),
                            sim::uniform_tree_topology(tree_spec(3, 2)),
                            engine_config())
          .run();
  EXPECT_LE(deep.server_contacts,
            flat.server_contacts + flat.server_contacts / 10);
}

TEST(SimulationEngine, EndToEndPresetShape) {
  sim::EndToEndConfig config;
  config.network.rtt_seconds = 0.25;
  const auto topology = sim::EndToEndSimulator::topology_for(config);
  ASSERT_EQ(topology.nodes.size(), 1u);
  EXPECT_EQ(topology.nodes[0].parent, -1);
  EXPECT_FALSE(topology.nodes[0].upstream_source.has_value());
  ASSERT_TRUE(topology.nodes[0].link.has_value());
  EXPECT_EQ(topology.nodes[0].link->rtt_seconds, 0.25);
  const auto engine = sim::EndToEndSimulator::engine_config_for(config);
  EXPECT_TRUE(engine.piggybacking);
}

TEST(SimulationEngine, HierarchyPresetShape) {
  sim::HierarchyConfig config;
  config.child_proxies = 3;
  const auto topology = sim::HierarchySimulator::topology_for(config);
  ASSERT_EQ(topology.nodes.size(), 4u);
  EXPECT_EQ(topology.nodes[0].parent, -1);
  EXPECT_TRUE(topology.nodes[0].upstream_source.has_value());
  EXPECT_FALSE(topology.nodes[0].link.has_value());  // links are free
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_EQ(topology.nodes[i].parent, 0);
  }
  EXPECT_EQ(sim::leaf_indices(topology), (std::vector<int>{1, 2, 3}));
}

TEST(SimulationEngine, InformedFetchSchedules) {
  trace::LogProfile profile = trace::aiusa_profile(0.05);
  const auto workload = trace::generate(profile);
  sim::EndToEndConfig config;
  config.cache.capacity_bytes = 16ULL * 1024 * 1024;
  config.cache.freshness_interval = 2 * util::kHour;
  config.base_filter.max_elements = 20;
  config.volumes.level = 1;
  config.enable_informed_fetch = true;
  const auto result = sim::EndToEndSimulator(workload, config).run();

  ASSERT_TRUE(result.informed_fetch.has_value());
  ASSERT_TRUE(result.informed_fetch_fifo.has_value());
  EXPECT_EQ(result.informed_fetch->completion_by_id.size(),
            result.server_contacts);
  // Shortest-first cannot do worse than FIFO on mean waiting time (§4).
  EXPECT_LE(result.informed_fetch->mean_wait,
            result.informed_fetch_fifo->mean_wait);
  // Without the flag the optionals stay empty.
  config.enable_informed_fetch = false;
  const auto off = sim::EndToEndSimulator(workload, config).run();
  EXPECT_FALSE(off.informed_fetch.has_value());
}

}  // namespace
}  // namespace piggyweb

// End-to-end HTTP integration: a proxy-side client and the simulated
// origin server exchange real serialized HTTP/1.1 bytes, with the
// Piggy-filter request header and the P-volume chunked trailer exactly as
// §2.3 specifies.
#include <gtest/gtest.h>

#include "http/date.h"
#include "http/message.h"
#include "http/piggy_headers.h"
#include "proxy/cache.h"
#include "proxy/coherency.h"
#include "proxy/filter_policy.h"
#include "server/origin.h"
#include "util/rng.h"
#include "util/strings.h"
#include "volume/directory.h"

namespace piggyweb {
namespace {

class HttpRoundTripTest : public ::testing::Test {
 protected:
  HttpRoundTripTest()
      : site_(make_site()),
        volumes_(make_volume_config()),
        origin_(site_, volumes_, server_paths_),
        cache_(make_cache_config()),
        filter_policy_(make_policy_config(),
                       std::make_unique<core::AlwaysEnable>()),
        coherency_(cache_) {
    volumes_.bind_paths(server_paths_);
    server_id_ = proxy_paths_.intern(site_.host());
  }

  static trace::SiteModel make_site() {
    util::Rng rng(1234);
    trace::SiteShape shape;
    shape.pages = 40;
    shape.top_dirs = 4;
    shape.images_per_page_mean = 3.0;
    return trace::SiteModel(shape, 10 * util::kDay, rng);
  }

  static volume::DirectoryVolumeConfig make_volume_config() {
    volume::DirectoryVolumeConfig config;
    config.level = 1;
    return config;
  }

  static proxy::CacheConfig make_cache_config() {
    proxy::CacheConfig config;
    config.capacity_bytes = 8 * 1024 * 1024;
    config.freshness_interval = 600;
    return config;
  }

  static proxy::FilterPolicyConfig make_policy_config() {
    proxy::FilterPolicyConfig config;
    config.base.max_elements = 10;
    config.rpv.timeout = 60;
    return config;
  }

  // Full proxy-side fetch over serialized bytes: build request, parse at
  // the server, serialize the response, parse at the proxy, apply cache
  // and piggyback processing. Returns the parsed response.
  http::Response fetch(const std::string& path, util::TimePoint now) {
    http::Request request;
    request.target = path;
    request.headers.add("Host", site_.host());
    const proxy::CacheKey key{server_id_, proxy_paths_.intern(path)};
    if (const auto lm = cache_.cached_last_modified(key)) {
      request.headers.add("If-Modified-Since", http::format_http_date(*lm));
    }
    http::attach_filter(request, filter_policy_.filter_for(server_id_, now));

    // --- wire: proxy -> server ---
    const auto request_bytes = request.serialize();
    http::ParseError error;
    const auto server_view = http::parse_request(request_bytes, error);
    EXPECT_TRUE(server_view.has_value()) << error.message;

    auto response = origin_.handle(server_view->request, now, /*source=*/1);

    // --- wire: server -> proxy ---
    const auto response_bytes = response.serialize();
    const auto proxy_view = http::parse_response(response_bytes, error);
    EXPECT_TRUE(proxy_view.has_value()) << error.message;
    const auto& parsed = proxy_view->response;

    // Proxy bookkeeping: cache the body / revalidate, then process the
    // piggyback (§2.1 "proxy receives a server response").
    std::int64_t lm = -1;
    if (const auto lm_text = parsed.headers.get("Last-Modified")) {
      EXPECT_TRUE(http::parse_http_date(*lm_text, lm));
    }
    if (parsed.status == 200) {
      cache_.insert(key, parsed.body.size(), lm, now);
    } else if (parsed.status == 304) {
      cache_.revalidate(key, now);
    }
    if (const auto piggyback =
            http::extract_pvolume(parsed, proxy_paths_)) {
      coherency_.process(server_id_, *piggyback, now);
      filter_policy_.on_piggyback(server_id_, piggyback->volume, now);
    }
    return parsed;
  }

  // Two pages sharing a 1-level directory.
  std::pair<std::string, std::string> directory_pair() const {
    const auto& pages = site_.pages_by_popularity();
    for (const auto a : pages) {
      for (const auto b : pages) {
        if (a == b) continue;
        const auto pa = site_.resource(a).path;
        const auto pb = site_.resource(b).path;
        if (util::directory_prefix(pa, 1) == util::directory_prefix(pb, 1) &&
            util::directory_prefix(pa, 1) != "/") {
          return {pa, pb};
        }
      }
    }
    return {};
  }

  trace::SiteModel site_;
  util::InternTable server_paths_;
  util::InternTable proxy_paths_;
  volume::DirectoryVolumes volumes_;
  server::OriginServer origin_;
  proxy::ProxyCache cache_;
  proxy::FilterPolicy filter_policy_;
  proxy::CoherencyAgent coherency_;
  util::InternId server_id_ = 0;
};

TEST_F(HttpRoundTripTest, BasicFetchCachesResource) {
  const auto& res = site_.resource(site_.pages_by_popularity()[0]);
  const auto response = fetch(res.path, {100});
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.body.size(), res.size);
  EXPECT_TRUE(
      cache_.contains({server_id_, *proxy_paths_.find(res.path)}));
}

TEST_F(HttpRoundTripTest, RevalidationGets304) {
  const auto& res = site_.resource(site_.pages_by_popularity()[0]);
  fetch(res.path, {100});
  // Past the freshness interval the proxy sends If-Modified-Since; the
  // resource is unchanged so the server answers 304.
  const auto response = fetch(res.path, {100 + 700});
  EXPECT_EQ(response.status, 304);
  EXPECT_TRUE(response.body.empty());
}

TEST_F(HttpRoundTripTest, PiggybackFlowsThroughWire) {
  const auto [first, second] = directory_pair();
  ASSERT_FALSE(first.empty());
  fetch(first, {100});
  const auto response = fetch(second, {105});
  EXPECT_EQ(response.status, 200);
  EXPECT_TRUE(response.chunked);
  ASSERT_TRUE(response.headers.contains("Trailer"));
  util::InternTable scratch;
  const auto piggyback = http::extract_pvolume(response, scratch);
  ASSERT_TRUE(piggyback.has_value());
  EXPECT_GE(piggyback->elements.size(), 1u);
}

TEST_F(HttpRoundTripTest, PiggybackRefreshAvoidsRevalidation) {
  const auto [first, second] = directory_pair();
  ASSERT_FALSE(first.empty());

  fetch(first, {100});  // cache `first`
  // Just before expiry, a request for `second` piggybacks `first`'s
  // Last-Modified, refreshing the cache entry for free.
  fetch(second, {100 + 590});
  EXPECT_GE(coherency_.stats().refreshed, 1u);
  // At 100+650 `first` would have been stale without the refresh; the
  // refreshed entry serves without any revalidation.
  const proxy::CacheKey key{server_id_, *proxy_paths_.find(first)};
  EXPECT_EQ(cache_.lookup(key, {100 + 650}),
            proxy::LookupOutcome::kFreshHit);
}

TEST_F(HttpRoundTripTest, RpvSuppressesRepeatPiggybacks) {
  const auto [first, second] = directory_pair();
  ASSERT_FALSE(first.empty());
  fetch(first, {100});
  const auto with_piggy = fetch(second, {105});
  util::InternTable scratch;
  ASSERT_TRUE(http::extract_pvolume(with_piggy, scratch).has_value());
  // Immediately after, the proxy's RPV names that volume — the server
  // must stay silent.
  const auto suppressed = fetch(first, {110});
  util::InternTable scratch2;
  EXPECT_FALSE(http::extract_pvolume(suppressed, scratch2).has_value());
}

TEST_F(HttpRoundTripTest, FeedbackLoopClosesOverTheWire) {
  // §5: the proxy reports cache hits attributable to piggybacked volumes
  // on its next request; the server aggregates them with no per-proxy
  // state.
  const auto [first, second] = directory_pair();
  ASSERT_FALSE(first.empty());

  core::HitFeedback feedback;
  fetch(first, {100});
  const auto response = fetch(second, {105});
  util::InternTable scratch;
  const auto piggyback = http::extract_pvolume(response, scratch);
  ASSERT_TRUE(piggyback.has_value());

  // Track the piggyback, then record two cache hits for the mentioned
  // resource (use proxy-side path ids to mirror fetch()'s bookkeeping).
  core::PiggybackMessage proxy_view;
  proxy_view.volume = piggyback->volume;
  for (const auto& element : piggyback->elements) {
    proxy_view.elements.push_back(
        {proxy_paths_.intern(scratch.str(element.resource)), element.size,
         element.last_modified});
  }
  feedback.note_piggyback(server_id_, proxy_view);
  feedback.note_cache_hit(server_id_, proxy_view.elements[0].resource);
  feedback.note_cache_hit(server_id_, proxy_view.elements[0].resource);

  // Next request carries the report.
  http::Request request;
  request.target = first;
  request.headers.add("Host", site_.host());
  http::attach_filter(request,
                      filter_policy_.filter_for(server_id_, {110}));
  http::attach_hits(request, feedback.drain(server_id_));

  const auto wire = request.serialize();
  EXPECT_NE(wire.find("Piggy-hits: "), std::string::npos);
  http::ParseError error;
  const auto at_server = http::parse_request(wire, error);
  ASSERT_TRUE(at_server.has_value()) << error.message;
  origin_.handle(at_server->request, {110}, 1);

  EXPECT_EQ(origin_.feedback().total_hits(), 2u);
  EXPECT_EQ(origin_.feedback().hits_for(piggyback->volume), 2u);
}

TEST_F(HttpRoundTripTest, WireBytesLookLikeThePaper) {
  const auto [first, second] = directory_pair();
  ASSERT_FALSE(first.empty());
  fetch(first, {100});

  // Build the request the proxy would send for `second` and check the
  // §2.3 shape of the on-the-wire text.
  http::Request request;
  request.target = second;
  request.headers.add("Host", site_.host());
  http::attach_filter(request,
                      filter_policy_.filter_for(server_id_, {105}));
  const auto wire = request.serialize();
  EXPECT_NE(wire.find("TE: chunked\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Piggy-filter: "), std::string::npos);

  auto response = origin_.handle(request, {105}, 1);
  const auto response_wire = response.serialize();
  EXPECT_NE(response_wire.find("Transfer-Encoding: chunked\r\n"),
            std::string::npos);
  EXPECT_NE(response_wire.find("Trailer: P-volume\r\n"), std::string::npos);
  EXPECT_NE(response_wire.find("P-volume: vid="), std::string::npos);
  // The chunked body ends with the mandatory zero-length chunk before the
  // trailer.
  EXPECT_NE(response_wire.find("\r\n0\r\n"), std::string::npos);
}

}  // namespace
}  // namespace piggyweb

#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <map>

#include <gtest/gtest.h>

namespace piggyweb::util {
namespace {

TEST(Splitmix64, DeterministicSequence) {
  std::uint64_t s1 = 42, s2 = 42;
  EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  EXPECT_EQ(s1, s2);
}

TEST(Splitmix64, DifferentSeedsDiffer) {
  std::uint64_t s1 = 1, s2 = 2;
  EXPECT_NE(splitmix64(s1), splitmix64(s2));
}

TEST(Rng, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(7);
  const auto first = a();
  a();
  a.reseed(7);
  EXPECT_EQ(a(), first);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(13);
  for (std::uint64_t bound : {1ULL, 2ULL, 7ULL, 100ULL, 1ULL << 40}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowOneAlwaysZero) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowCoversAllResidues) {
  Rng rng(19);
  std::map<std::uint64_t, int> seen;
  for (int i = 0; i < 10000; ++i) ++seen[rng.below(5)];
  EXPECT_EQ(seen.size(), 5u);
  for (const auto& [v, n] : seen) EXPECT_GT(n, 1500) << "residue " << v;
}

TEST(Rng, BetweenInclusiveBounds) {
  Rng rng(23);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.between(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(29);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceMatchesProbability) {
  Rng rng(31);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) hits += rng.chance(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(Rng, ExponentialMean) {
  Rng rng(37);
  double sum = 0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) sum += rng.exponential(42.0);
  EXPECT_NEAR(sum / kN, 42.0, 1.0);
}

TEST(Rng, ExponentialNonNegative) {
  Rng rng(41);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(rng.exponential(5.0), 0.0);
}

TEST(Rng, NormalMoments) {
  Rng rng(43);
  double sum = 0, sumsq = 0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal();
    sum += x;
    sumsq += x * x;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sumsq / kN, 1.0, 0.03);
}

TEST(Rng, LognormalMedian) {
  Rng rng(47);
  std::vector<double> xs;
  for (int i = 0; i < 50001; ++i) xs.push_back(rng.lognormal(3.0, 1.0));
  std::nth_element(xs.begin(), xs.begin() + 25000, xs.end());
  // Median of lognormal(mu, sigma) is e^mu.
  EXPECT_NEAR(xs[25000], std::exp(3.0), 0.5);
}

TEST(Rng, ParetoWithinBounds) {
  Rng rng(53);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.pareto(1.2, 1.0, 100.0);
    EXPECT_GE(x, 1.0);
    EXPECT_LE(x, 100.0);
  }
}

TEST(Rng, ParetoHeavyTail) {
  Rng rng(59);
  // Shape 0.5: a visible share of mass should land above 10x the minimum.
  int above = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) above += rng.pareto(0.5, 1.0, 1000.0) > 10.0;
  EXPECT_GT(above, kN / 20);
}

TEST(Rng, PoissonZeroMean) {
  Rng rng(61);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, PoissonSmallMean) {
  Rng rng(67);
  double sum = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    sum += static_cast<double>(rng.poisson(3.5));
  }
  EXPECT_NEAR(sum / kN, 3.5, 0.05);
}

TEST(Rng, PoissonLargeMeanNormalApprox) {
  Rng rng(71);
  double sum = 0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    sum += static_cast<double>(rng.poisson(100.0));
  }
  EXPECT_NEAR(sum / kN, 100.0, 0.5);
}

TEST(ZipfSampler, SingleElement) {
  ZipfSampler zipf(1, 1.0);
  Rng rng(73);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf(rng), 0u);
}

TEST(ZipfSampler, RanksWithinRange) {
  ZipfSampler zipf(50, 0.9);
  Rng rng(79);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(zipf(rng), 50u);
}

TEST(ZipfSampler, RankZeroMostPopular) {
  ZipfSampler zipf(100, 1.0);
  Rng rng(83);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 100000; ++i) ++counts[zipf(rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[90]);
}

TEST(ZipfSampler, PmfSumsToOne) {
  ZipfSampler zipf(200, 0.8);
  double total = 0;
  for (std::size_t k = 0; k < zipf.size(); ++k) total += zipf.pmf(k);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfSampler, SkewZeroIsUniform) {
  ZipfSampler zipf(10, 0.0);
  for (std::size_t k = 0; k < 10; ++k) EXPECT_NEAR(zipf.pmf(k), 0.1, 1e-9);
}

TEST(ZipfSampler, EmpiricalMatchesPmf) {
  ZipfSampler zipf(5, 1.0);
  Rng rng(89);
  std::vector<int> counts(5, 0);
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) ++counts[zipf(rng)];
  for (std::size_t k = 0; k < 5; ++k) {
    EXPECT_NEAR(static_cast<double>(counts[k]) / kN, zipf.pmf(k), 0.01);
  }
}

TEST(DiscreteSampler, RespectsWeights) {
  DiscreteSampler sampler({1.0, 0.0, 3.0});
  Rng rng(97);
  std::vector<int> counts(3, 0);
  constexpr int kN = 40000;
  for (int i = 0; i < kN; ++i) ++counts[sampler(rng)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / kN, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / kN, 0.75, 0.02);
}

TEST(DiscreteSampler, SingleWeight) {
  DiscreteSampler sampler({5.0});
  Rng rng(101);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sampler(rng), 0u);
}

}  // namespace
}  // namespace piggyweb::util

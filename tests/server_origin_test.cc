#include "server/origin.h"

#include <gtest/gtest.h>

#include "http/date.h"
#include "http/piggy_headers.h"
#include "util/rng.h"
#include "util/strings.h"
#include "volume/directory.h"

namespace piggyweb::server {
namespace {

class OriginServerTest : public ::testing::Test {
 protected:
  OriginServerTest()
      : site_(make_site()),
        volumes_(make_volume_config()),
        server_(site_, volumes_, paths_) {
    volumes_.bind_paths(paths_);
  }

  static trace::SiteModel make_site() {
    util::Rng rng(99);
    trace::SiteShape shape;
    shape.pages = 30;
    shape.top_dirs = 3;
    shape.images_per_page_mean = 2.0;
    return trace::SiteModel(shape, 10 * util::kDay, rng);
  }

  static volume::DirectoryVolumeConfig make_volume_config() {
    volume::DirectoryVolumeConfig config;
    config.level = 1;
    return config;
  }

  http::Request get(std::string_view path, bool with_filter = true,
                    std::uint32_t maxpiggy = 10) {
    http::Request request;
    request.target = std::string(path);
    request.headers.add("Host", site_.host());
    if (with_filter) {
      core::ProxyFilter filter;
      filter.max_elements = maxpiggy;
      http::attach_filter(request, filter);
    }
    return request;
  }

  trace::SiteModel site_;
  util::InternTable paths_;
  volume::DirectoryVolumes volumes_;
  OriginServer server_;
};

TEST_F(OriginServerTest, ServesExistingResource) {
  const auto& res = site_.resource(0);
  const auto response = server_.handle(get(res.path), {100}, 1);
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.body.size(), res.size);
  EXPECT_TRUE(response.headers.contains("Last-Modified"));
}

TEST_F(OriginServerTest, Returns404ForUnknownPath) {
  const auto response = server_.handle(get("/no/such/file.html"), {100}, 1);
  EXPECT_EQ(response.status, 404);
  EXPECT_EQ(server_.stats().not_found, 1u);
}

TEST_F(OriginServerTest, ValidatesWithIfModifiedSince) {
  const auto& res = site_.resource(0);
  const auto lm = site_.last_modified(0, {100});

  auto request = get(res.path);
  request.headers.add(
      "If-Modified-Since",
      http::format_http_date(lm.value + OriginServer::kWireEpoch));
  const auto response = server_.handle(request, {100}, 1);
  EXPECT_EQ(response.status, 304);
  EXPECT_TRUE(response.body.empty());
  EXPECT_EQ(server_.stats().not_modified, 1u);
}

TEST_F(OriginServerTest, StaleIfModifiedSinceGetsFullResponse) {
  const auto& res = site_.resource(0);
  const auto lm = site_.last_modified(0, {100});
  auto request = get(res.path);
  request.headers.add(
      "If-Modified-Since",
      http::format_http_date(lm.value - 10 + OriginServer::kWireEpoch));
  const auto response = server_.handle(request, {100}, 1);
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.body.size(), res.size);
}

TEST_F(OriginServerTest, PiggybacksAfterVolumeWarmup) {
  // Two resources in the same 1-level directory: the second request's
  // response should piggyback the first resource.
  const auto& pages = site_.pages_by_popularity();
  // Find two pages sharing a top-level directory.
  std::string first, second;
  for (const auto a : pages) {
    for (const auto b : pages) {
      if (a == b) continue;
      const auto pa = site_.resource(a).path;
      const auto pb = site_.resource(b).path;
      if (util::directory_prefix(pa, 1) == util::directory_prefix(pb, 1) &&
          util::directory_prefix(pa, 1) != "/") {
        first = pa;
        second = pb;
        break;
      }
    }
    if (!first.empty()) break;
  }
  ASSERT_FALSE(first.empty()) << "site has no directory with two pages";

  server_.handle(get(first), {100}, 1);
  const auto response = server_.handle(get(second), {105}, 1);
  EXPECT_EQ(response.status, 200);
  ASSERT_TRUE(response.chunked);
  util::InternTable proxy_paths;
  const auto piggyback = http::extract_pvolume(response, proxy_paths);
  ASSERT_TRUE(piggyback.has_value());
  bool mentions_first = false;
  for (const auto& e : piggyback->elements) {
    mentions_first |= proxy_paths.str(e.resource) == first;
  }
  EXPECT_TRUE(mentions_first);
  EXPECT_GE(server_.stats().piggybacks_sent, 1u);
}

TEST_F(OriginServerTest, NoFilterNoPiggyback) {
  const auto& res0 = site_.resource(0).path;
  server_.handle(get(res0), {100}, 1);
  const auto response =
      server_.handle(get(res0, /*with_filter=*/false), {105}, 1);
  EXPECT_FALSE(response.chunked);
  util::InternTable proxy_paths;
  EXPECT_FALSE(http::extract_pvolume(response, proxy_paths).has_value());
}

TEST_F(OriginServerTest, NopiggyFilterSuppresses) {
  const auto& res0 = site_.resource(0).path;
  server_.handle(get(res0), {100}, 1);
  auto request = get(res0);
  core::ProxyFilter filter;
  filter.enabled = false;
  http::attach_filter(request, filter);
  const auto response = server_.handle(request, {105}, 1);
  util::InternTable proxy_paths;
  EXPECT_FALSE(http::extract_pvolume(response, proxy_paths).has_value());
}

TEST_F(OriginServerTest, MaxpiggyHonored) {
  // Warm a directory with several resources, then ask with maxpiggy=2.
  const auto& pages = site_.pages_by_popularity();
  std::vector<std::string> in_dir;
  for (const auto p : pages) {
    const auto path = site_.resource(p).path;
    if (util::directory_prefix(path, 1) ==
        util::directory_prefix(site_.resource(pages[0]).path, 1)) {
      in_dir.push_back(path);
    }
  }
  for (std::size_t i = 0; i < in_dir.size(); ++i) {
    server_.handle(get(in_dir[i]), {static_cast<util::Seconds>(100 + i)}, 1);
  }
  const auto response = server_.handle(get(in_dir[0], true, /*maxpiggy=*/2),
                                       {200}, 1);
  util::InternTable proxy_paths;
  const auto piggyback = http::extract_pvolume(response, proxy_paths);
  if (piggyback) {
    EXPECT_LE(piggyback->elements.size(), 2u);
  }
}

TEST_F(OriginServerTest, PiggybackOn304UsesHeader) {
  const auto& pages = site_.pages_by_popularity();
  const auto path0 = site_.resource(pages[0]).path;
  server_.handle(get(path0), {100}, 1);

  // Another resource in the same directory warms the volume further.
  auto request = get(path0);
  const auto lm = site_.last_modified(pages[0], {100});
  request.headers.add(
      "If-Modified-Since",
      http::format_http_date(lm.value + OriginServer::kWireEpoch));
  const auto response = server_.handle(request, {110}, 1);
  EXPECT_EQ(response.status, 304);
  EXPECT_FALSE(response.chunked);  // 304 has no body to chunk
  // A piggyback, if present, rides in a plain header.
  if (response.headers.contains("P-volume")) {
    util::InternTable proxy_paths;
    EXPECT_TRUE(http::extract_pvolume(response, proxy_paths).has_value());
  }
}

TEST_F(OriginServerTest, WireVolumeIdWithinBound) {
  EXPECT_EQ(OriginServer::wire_volume_id(5), 5u);
  EXPECT_LE(OriginServer::wire_volume_id(1'000'000),
            core::kMaxWireVolumeId);
}

TEST_F(OriginServerTest, IngestsPiggyHitsFeedback) {
  auto request = get(site_.resource(0).path);
  http::attach_hits(request, {{3, 12}, {7, 4}});
  server_.handle(request, {100}, 1);
  EXPECT_EQ(server_.feedback().hits_for(3), 12u);
  EXPECT_EQ(server_.feedback().hits_for(7), 4u);
  EXPECT_EQ(server_.feedback().total_hits(), 16u);

  // A second report accumulates.
  auto again = get(site_.resource(0).path);
  http::attach_hits(again, {{3, 1}});
  server_.handle(again, {110}, 1);
  EXPECT_EQ(server_.feedback().hits_for(3), 13u);
}

TEST_F(OriginServerTest, NoFeedbackHeaderNoIngest) {
  server_.handle(get(site_.resource(0).path), {100}, 1);
  EXPECT_EQ(server_.feedback().total_hits(), 0u);
}

TEST_F(OriginServerTest, AnswersPiggybackValidation) {
  const auto lm0 = site_.last_modified(0, {100});
  const auto lm1 = site_.last_modified(1, {100});

  auto request = get(site_.resource(2).path);
  const std::vector<core::ValidationItem> items = {
      // Current copy of resource 0.
      {paths_.intern(site_.resource(0).path),
       lm0.value + OriginServer::kWireEpoch},
      // Outdated copy of resource 1.
      {paths_.intern(site_.resource(1).path),
       lm1.value - 10 + OriginServer::kWireEpoch},
      // Unknown resource: no verdict.
      {paths_.intern("/not/there.html"), 0}};
  http::attach_validate(request, items, paths_);

  const auto response = server_.handle(request, {100}, 1);
  util::InternTable proxy_paths;
  const auto reply = http::extract_validate_reply(response, proxy_paths);
  ASSERT_TRUE(reply.has_value());
  ASSERT_EQ(reply->fresh.size(), 1u);
  EXPECT_EQ(proxy_paths.str(reply->fresh[0]), site_.resource(0).path);
  ASSERT_EQ(reply->stale.size(), 1u);
  EXPECT_EQ(proxy_paths.str(reply->stale[0].resource),
            site_.resource(1).path);
  EXPECT_EQ(reply->stale[0].last_modified,
            lm1.value + OriginServer::kWireEpoch);
  EXPECT_EQ(server_.stats().validations_piggybacked, 3u);
}

TEST_F(OriginServerTest, StatsAccumulate) {
  const auto& res = site_.resource(0);
  server_.handle(get(res.path), {100}, 1);
  server_.handle(get("/missing.html"), {101}, 1);
  EXPECT_EQ(server_.stats().requests, 2u);
  EXPECT_EQ(server_.stats().ok_responses, 1u);
  EXPECT_EQ(server_.stats().not_found, 1u);
}

}  // namespace
}  // namespace piggyweb::server

#include "http/date.h"

#include <gtest/gtest.h>

namespace piggyweb::http {
namespace {

// RFC 1123's canonical example: Sun, 06 Nov 1994 08:49:37 GMT == 784111777.
constexpr std::int64_t kRfcExample = 784111777;

TEST(HttpDate, FormatsCanonicalExample) {
  EXPECT_EQ(format_http_date(kRfcExample), "Sun, 06 Nov 1994 08:49:37 GMT");
}

TEST(HttpDate, ParsesCanonicalExample) {
  std::int64_t out = 0;
  ASSERT_TRUE(parse_http_date("Sun, 06 Nov 1994 08:49:37 GMT", out));
  EXPECT_EQ(out, kRfcExample);
}

TEST(HttpDate, RoundTripSweep) {
  for (std::int64_t ts = 0; ts < 2'000'000'000; ts += 86'400'000 + 12'345) {
    std::int64_t out = 0;
    ASSERT_TRUE(parse_http_date(format_http_date(ts), out)) << ts;
    EXPECT_EQ(out, ts);
  }
}

TEST(HttpDate, ParseIsCaseTolerantOnMonth) {
  std::int64_t out = 0;
  EXPECT_TRUE(parse_http_date("Sun, 06 NOV 1994 08:49:37 GMT", out));
  EXPECT_EQ(out, kRfcExample);
}

TEST(HttpDate, ParseTrimsWhitespace) {
  std::int64_t out = 0;
  EXPECT_TRUE(parse_http_date("  Sun, 06 Nov 1994 08:49:37 GMT  ", out));
  EXPECT_EQ(out, kRfcExample);
}

TEST(HttpDate, RejectsMalformed) {
  std::int64_t out = 0;
  EXPECT_FALSE(parse_http_date("", out));
  EXPECT_FALSE(parse_http_date("06 Nov 1994 08:49:37 GMT", out));
  EXPECT_FALSE(parse_http_date("Sun, 06 Foo 1994 08:49:37 GMT", out));
  EXPECT_FALSE(parse_http_date("Sun, 99 Nov 1994 08:49:37 GMT", out));
  EXPECT_FALSE(parse_http_date("Sun, 06 Nov 1994 25:49:37 GMT", out));
  EXPECT_FALSE(parse_http_date("Sun, 06 Nov 19", out));
}

TEST(HttpDate, EpochFormats) {
  EXPECT_EQ(format_http_date(0), "Thu, 01 Jan 1970 00:00:00 GMT");
}

}  // namespace
}  // namespace piggyweb::http

#include "sim/hierarchy.h"

#include <gtest/gtest.h>

#include "trace/profiles.h"

namespace piggyweb::sim {
namespace {

const trace::SyntheticWorkload& shared_workload() {
  static const trace::SyntheticWorkload workload =
      trace::generate(trace::aiusa_profile(0.05));
  return workload;
}

HierarchyConfig base_config() {
  HierarchyConfig config;
  config.child_proxies = 4;
  config.child_cache.capacity_bytes = 2ULL * 1024 * 1024;
  config.child_cache.freshness_interval = 2 * util::kHour;
  config.parent_cache.capacity_bytes = 32ULL * 1024 * 1024;
  config.parent_cache.freshness_interval = 2 * util::kHour;
  config.base_filter.max_elements = 20;
  config.volumes.level = 1;
  return config;
}

TEST(Hierarchy, ProcessesWholeTrace) {
  HierarchySimulator sim(shared_workload(), base_config());
  const auto result = sim.run();
  EXPECT_EQ(result.client_requests, shared_workload().trace.size());
  EXPECT_EQ(result.client_requests,
            result.child_fresh_hits + result.parent_fresh_hits +
                result.server_contacts);
}

TEST(Hierarchy, ParentAbsorbsChildMisses) {
  HierarchySimulator sim(shared_workload(), base_config());
  const auto result = sim.run();
  EXPECT_GT(result.child_fresh_hits, 0u);
  EXPECT_GT(result.parent_fresh_hits, 0u);
  EXPECT_GT(result.overall_hit_rate(), result.child_hit_rate());
  EXPECT_LT(result.server_contact_rate(), 1.0);
}

TEST(Hierarchy, PiggybackingReachesBothLevels) {
  auto config = base_config();
  config.relay_to_children = true;
  HierarchySimulator sim(shared_workload(), config);
  const auto result = sim.run();
  EXPECT_GT(result.parent_coherency.piggybacks_processed, 0u);
  EXPECT_GT(result.child_coherency.piggybacks_processed, 0u);
  EXPECT_GT(result.parent_coherency.refreshed, 0u);
}

TEST(Hierarchy, RelayOffKeepsChildrenDark) {
  auto config = base_config();
  config.relay_to_children = false;
  HierarchySimulator sim(shared_workload(), config);
  const auto result = sim.run();
  EXPECT_EQ(result.child_coherency.piggybacks_processed, 0u);
  EXPECT_GT(result.parent_coherency.piggybacks_processed, 0u);
}

TEST(Hierarchy, PiggybackingOffMeansNoCoherency) {
  auto config = base_config();
  config.piggybacking = false;
  HierarchySimulator sim(shared_workload(), config);
  const auto result = sim.run();
  EXPECT_EQ(result.parent_coherency.piggybacks_processed, 0u);
  EXPECT_EQ(result.child_coherency.piggybacks_processed, 0u);
}

TEST(Hierarchy, PiggybackingCutsServerContacts) {
  auto off = base_config();
  off.piggybacking = false;
  const auto without = HierarchySimulator(shared_workload(), off).run();
  const auto with =
      HierarchySimulator(shared_workload(), base_config()).run();
  // Parent-level refreshes avoid upstream validations, so the origin
  // sees fewer requests.
  EXPECT_LT(with.server_contacts, without.server_contacts);
}

TEST(Hierarchy, MoreChildrenDiluteChildHitRate) {
  auto few = base_config();
  few.child_proxies = 1;
  auto many = base_config();
  many.child_proxies = 16;
  const auto one = HierarchySimulator(shared_workload(), few).run();
  const auto sixteen = HierarchySimulator(shared_workload(), many).run();
  // One big child sees all cross-client locality; sixteen small ones
  // fragment it.
  EXPECT_GE(one.child_hit_rate(), sixteen.child_hit_rate());
}

}  // namespace
}  // namespace piggyweb::sim

#include "util/stats.h"


#include <gtest/gtest.h>

namespace piggyweb::util {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic textbook dataset
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats all, a, b;
  for (int i = 0; i < 100; ++i) {
    const double x = i * 0.37 - 5.0;
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  RunningStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Quantiles, MedianOddCount) {
  Quantiles q;
  for (const double x : {3.0, 1.0, 2.0}) q.add(x);
  EXPECT_DOUBLE_EQ(q.median(), 2.0);
}

TEST(Quantiles, MedianInterpolates) {
  Quantiles q;
  for (const double x : {1.0, 2.0, 3.0, 4.0}) q.add(x);
  EXPECT_DOUBLE_EQ(q.median(), 2.5);
}

TEST(Quantiles, Extremes) {
  Quantiles q;
  for (int i = 1; i <= 10; ++i) q.add(i);
  EXPECT_DOUBLE_EQ(q.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(q.quantile(1.0), 10.0);
}

TEST(Quantiles, SingleSample) {
  Quantiles q;
  q.add(7.0);
  EXPECT_DOUBLE_EQ(q.quantile(0.0), 7.0);
  EXPECT_DOUBLE_EQ(q.quantile(0.5), 7.0);
  EXPECT_DOUBLE_EQ(q.quantile(1.0), 7.0);
}

TEST(Quantiles, CdfBasics) {
  Quantiles q;
  for (int i = 1; i <= 100; ++i) q.add(i);
  EXPECT_DOUBLE_EQ(q.cdf(0.0), 0.0);
  EXPECT_DOUBLE_EQ(q.cdf(50.0), 0.5);
  EXPECT_DOUBLE_EQ(q.cdf(100.0), 1.0);
  EXPECT_DOUBLE_EQ(q.cdf(1000.0), 1.0);
}

TEST(Quantiles, AddAfterQueryResorts) {
  Quantiles q;
  q.add(10.0);
  EXPECT_DOUBLE_EQ(q.median(), 10.0);
  q.add(0.0);
  q.add(5.0);
  EXPECT_DOUBLE_EQ(q.median(), 5.0);
}

TEST(Histogram, BucketAssignment) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.0);   // bucket 0
  h.add(9.99);  // bucket 9
  h.add(5.0);   // bucket 5
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(9), 1u);
  EXPECT_EQ(h.bucket_count(5), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, UnderOverflow) {
  Histogram h(0.0, 10.0, 5);
  h.add(-1.0);
  h.add(10.0);  // hi edge is exclusive
  h.add(100.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, BucketEdges) {
  Histogram h(0.0, 100.0, 4);
  EXPECT_DOUBLE_EQ(h.bucket_low(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bucket_high(0), 25.0);
  EXPECT_DOUBLE_EQ(h.bucket_low(3), 75.0);
  EXPECT_DOUBLE_EQ(h.bucket_high(3), 100.0);
}

TEST(Histogram, CumulativeFraction) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.add(i + 0.5);
  EXPECT_DOUBLE_EQ(h.cumulative_fraction(4), 0.5);
  EXPECT_DOUBLE_EQ(h.cumulative_fraction(9), 1.0);
}

TEST(FrequencyTable, CountsAndTotal) {
  FrequencyTable t;
  t.add(3);
  t.add(3);
  t.add(7, 5);
  EXPECT_EQ(t.count(3), 2u);
  EXPECT_EQ(t.count(7), 5u);
  EXPECT_EQ(t.count(99), 0u);
  EXPECT_EQ(t.total(), 7u);
  EXPECT_EQ(t.distinct(), 2u);
}

TEST(FrequencyTable, ByRankOrdering) {
  FrequencyTable t;
  t.add(0, 1);
  t.add(1, 10);
  t.add(2, 5);
  const auto ranked = t.by_rank();
  ASSERT_EQ(ranked.size(), 3u);
  EXPECT_EQ(ranked[0], 1u);
  EXPECT_EQ(ranked[1], 2u);
  EXPECT_EQ(ranked[2], 0u);
}

TEST(FrequencyTable, ByRankTieBreaksById) {
  FrequencyTable t;
  t.add(5, 3);
  t.add(2, 3);
  const auto ranked = t.by_rank();
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0], 2u);
  EXPECT_EQ(ranked[1], 5u);
}

TEST(FrequencyTable, CoverageShareSkewed) {
  FrequencyTable t;
  t.add(0, 90);  // one heavy hitter
  for (std::uint32_t id = 1; id <= 10; ++id) t.add(id, 1);
  // One of 11 ids covers 90% >= 50%.
  EXPECT_NEAR(t.coverage_share(0.5), 1.0 / 11.0, 1e-9);
}

TEST(FrequencyTable, CoverageShareUniform) {
  FrequencyTable t;
  for (std::uint32_t id = 0; id < 10; ++id) t.add(id, 1);
  EXPECT_NEAR(t.coverage_share(0.5), 0.5, 1e-9);
}

TEST(Percent, Formatting) {
  EXPECT_EQ(percent(0.1234), "12.3%");
  EXPECT_EQ(percent(0.5, 0), "50%");
  EXPECT_EQ(percent(1.0, 2), "100.00%");
}

}  // namespace
}  // namespace piggyweb::util

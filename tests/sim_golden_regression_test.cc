// Golden regression for the engine refactor: every counter of
// EndToEndResult / HierarchyResult for fixed seeds and configs, captured
// from the pre-engine implementations (PR 1 tree) and asserted exactly —
// including bit-exact latency doubles. The topology presets must
// reproduce the historical harness behaviour down to accumulation order;
// any drift here means the engine changed observable semantics.
#include <gtest/gtest.h>

#include "sim/end_to_end.h"
#include "sim/hierarchy.h"
#include "trace/profiles.h"
#include "volume/pair_counter.h"
#include "volume/probability.h"

namespace piggyweb {
namespace {

const trace::SyntheticWorkload& shared_workload() {
  static const trace::SyntheticWorkload workload =
      trace::generate(trace::aiusa_profile(0.05));
  return workload;
}

sim::EndToEndConfig e2e_base() {
  sim::EndToEndConfig config;
  config.cache.capacity_bytes = 16ULL * 1024 * 1024;
  config.cache.freshness_interval = 2 * util::kHour;
  config.base_filter.max_elements = 20;
  config.volumes.level = 1;
  config.rpv.timeout = 60;
  return config;
}

sim::HierarchyConfig hier_base() {
  sim::HierarchyConfig config;
  config.child_proxies = 4;
  config.child_cache.capacity_bytes = 2ULL * 1024 * 1024;
  config.child_cache.freshness_interval = 2 * util::kHour;
  config.parent_cache.capacity_bytes = 32ULL * 1024 * 1024;
  config.parent_cache.freshness_interval = 2 * util::kHour;
  config.base_filter.max_elements = 20;
  config.volumes.level = 1;
  config.rpv.timeout = 60;
  return config;
}

struct E2eGolden {
  std::uint64_t server_contacts, validations, validations_not_modified;
  std::uint64_t stale_served, piggyback_bytes, body_bytes, total_packets;
  double user_latency_sum, prefetch_latency_sum;
  std::uint64_t fresh_hits, stale_hits, misses, insertions;
  std::uint64_t piggyback_refreshes, piggyback_invalidations;
  std::uint64_t coh_piggybacks, coh_elements, coh_refreshed, coh_invalidated,
      coh_not_cached;
  std::uint64_t prefetch_issued, prefetch_useful, prefetch_futile,
      prefetch_bytes;
  std::uint64_t pcv_batches, pcv_items, pcv_freshened, pcv_invalidated;
  std::uint64_t conn_opened, conn_reused;
  std::uint64_t center_exchanges, center_piggybacks, center_elements,
      center_servers;
};

void expect_e2e(const sim::EndToEndResult& r, const E2eGolden& g) {
  EXPECT_EQ(r.client_requests, 9035u);
  EXPECT_EQ(r.server_contacts, g.server_contacts);
  EXPECT_EQ(r.validations, g.validations);
  EXPECT_EQ(r.validations_not_modified, g.validations_not_modified);
  EXPECT_EQ(r.stale_served, g.stale_served);
  EXPECT_EQ(r.piggyback_bytes, g.piggyback_bytes);
  EXPECT_EQ(r.body_bytes, g.body_bytes);
  EXPECT_EQ(r.total_packets, g.total_packets);
  EXPECT_EQ(r.user_latency_sum, g.user_latency_sum);  // bit-exact
  EXPECT_EQ(r.prefetch_latency_sum, g.prefetch_latency_sum);
  EXPECT_EQ(r.cache.lookups, 9035u);
  EXPECT_EQ(r.cache.fresh_hits, g.fresh_hits);
  EXPECT_EQ(r.cache.stale_hits, g.stale_hits);
  EXPECT_EQ(r.cache.misses, g.misses);
  EXPECT_EQ(r.cache.insertions, g.insertions);
  EXPECT_EQ(r.cache.evictions, 0u);
  EXPECT_EQ(r.cache.piggyback_refreshes, g.piggyback_refreshes);
  EXPECT_EQ(r.cache.piggyback_invalidations, g.piggyback_invalidations);
  EXPECT_EQ(r.coherency.piggybacks_processed, g.coh_piggybacks);
  EXPECT_EQ(r.coherency.elements_processed, g.coh_elements);
  EXPECT_EQ(r.coherency.refreshed, g.coh_refreshed);
  EXPECT_EQ(r.coherency.invalidated, g.coh_invalidated);
  EXPECT_EQ(r.coherency.not_cached, g.coh_not_cached);
  EXPECT_EQ(r.prefetch.issued, g.prefetch_issued);
  EXPECT_EQ(r.prefetch.useful, g.prefetch_useful);
  EXPECT_EQ(r.prefetch.futile, g.prefetch_futile);
  EXPECT_EQ(r.prefetch.bytes_fetched, g.prefetch_bytes);
  EXPECT_EQ(r.pcv.batches_sent, g.pcv_batches);
  EXPECT_EQ(r.pcv.items_sent, g.pcv_items);
  EXPECT_EQ(r.pcv.freshened, g.pcv_freshened);
  EXPECT_EQ(r.pcv.invalidated, g.pcv_invalidated);
  EXPECT_EQ(r.connections.opened, g.conn_opened);
  EXPECT_EQ(r.connections.reused, g.conn_reused);
  EXPECT_EQ(r.center.exchanges_observed, g.center_exchanges);
  EXPECT_EQ(r.center.piggybacks_injected, g.center_piggybacks);
  EXPECT_EQ(r.center.elements_injected, g.center_elements);
  EXPECT_EQ(r.center.servers_tracked, g.center_servers);
}

struct HierGolden {
  std::uint64_t child_fresh_hits, parent_fresh_hits, server_contacts,
      stale_served;
  std::uint64_t parent_piggybacks, parent_elements, parent_refreshed,
      parent_invalidated, parent_not_cached;
  std::uint64_t child_piggybacks, child_elements, child_refreshed,
      child_invalidated, child_not_cached;
};

void expect_hier(const sim::HierarchyResult& r, const HierGolden& g) {
  EXPECT_EQ(r.client_requests, 9035u);
  EXPECT_EQ(r.child_fresh_hits, g.child_fresh_hits);
  EXPECT_EQ(r.parent_fresh_hits, g.parent_fresh_hits);
  EXPECT_EQ(r.server_contacts, g.server_contacts);
  EXPECT_EQ(r.stale_served, g.stale_served);
  EXPECT_EQ(r.parent_coherency.piggybacks_processed, g.parent_piggybacks);
  EXPECT_EQ(r.parent_coherency.elements_processed, g.parent_elements);
  EXPECT_EQ(r.parent_coherency.refreshed, g.parent_refreshed);
  EXPECT_EQ(r.parent_coherency.invalidated, g.parent_invalidated);
  EXPECT_EQ(r.parent_coherency.not_cached, g.parent_not_cached);
  EXPECT_EQ(r.child_coherency.piggybacks_processed, g.child_piggybacks);
  EXPECT_EQ(r.child_coherency.elements_processed, g.child_elements);
  EXPECT_EQ(r.child_coherency.refreshed, g.child_refreshed);
  EXPECT_EQ(r.child_coherency.invalidated, g.child_invalidated);
  EXPECT_EQ(r.child_coherency.not_cached, g.child_not_cached);
}

TEST(SimGoldenRegression, WorkloadSizePinned) {
  EXPECT_EQ(shared_workload().trace.size(), 9035u);
}

TEST(SimGoldenRegression, EndToEndDefault) {
  const auto result =
      sim::EndToEndSimulator(shared_workload(), e2e_base()).run();
  E2eGolden g{};
  g.server_contacts = 1460;
  g.validations = 1209;
  g.validations_not_modified = 1174;
  g.stale_served = 35;
  g.piggyback_bytes = 572943;
  g.body_bytes = 2459677;
  g.total_packets = 6297;
  g.user_latency_sum = 316.28241882324158;
  g.prefetch_latency_sum = 0;
  g.fresh_hits = 7575;
  g.stale_hits = 1209;
  g.misses = 251;
  g.insertions = 286;
  g.piggyback_refreshes = 15098;
  g.piggyback_invalidations = 167;
  g.coh_piggybacks = 1228;
  g.coh_elements = 15577;
  g.coh_refreshed = 15098;
  g.coh_invalidated = 167;
  g.coh_not_cached = 312;
  g.conn_opened = 846;
  g.conn_reused = 614;
  g.center_exchanges = 1460;
  g.center_piggybacks = 1228;
  g.center_elements = 15577;
  g.center_servers = 1;
  expect_e2e(result, g);
}

TEST(SimGoldenRegression, EndToEndPiggybackingOff) {
  auto config = e2e_base();
  config.piggybacking = false;
  const auto result = sim::EndToEndSimulator(shared_workload(), config).run();
  E2eGolden g{};
  g.server_contacts = 5670;
  g.validations = 5585;
  g.validations_not_modified = 5383;
  g.stale_served = 35;
  g.piggyback_bytes = 0;
  g.body_bytes = 2469335;
  g.total_packets = 15234;
  g.user_latency_sum = 981.54563217155976;
  g.prefetch_latency_sum = 0;
  g.fresh_hits = 3365;
  g.stale_hits = 5585;
  g.misses = 85;
  g.insertions = 287;
  g.conn_opened = 1173;
  g.conn_reused = 4497;
  g.center_exchanges = 5670;
  g.center_servers = 1;
  expect_e2e(result, g);
}

TEST(SimGoldenRegression, EndToEndAllApplications) {
  auto config = e2e_base();
  config.enable_prefetch = true;
  config.prefetch.max_resource_bytes = 64 * 1024;
  config.enable_pcv = true;
  config.enable_adaptive_ttl = true;
  config.min_piggyback_interval = 30;
  const auto result = sim::EndToEndSimulator(shared_workload(), config).run();
  E2eGolden g{};
  g.server_contacts = 1095;
  g.validations = 953;
  g.validations_not_modified = 915;
  g.stale_served = 66;
  g.piggyback_bytes = 889402;
  g.body_bytes = 2883125;
  g.total_packets = 6024;
  g.user_latency_sum = 237.53619918823404;
  g.prefetch_latency_sum = 51.349795532226516;
  g.fresh_hits = 7940;
  g.stale_hits = 953;
  g.misses = 142;
  g.insertions = 392;
  g.piggyback_refreshes = 8962;
  g.piggyback_invalidations = 269;
  g.coh_piggybacks = 713;
  g.coh_elements = 9175;
  g.coh_refreshed = 8962;
  g.coh_invalidated = 129;
  g.coh_not_cached = 84;
  g.prefetch_issued = 212;
  g.prefetch_useful = 25;
  g.prefetch_futile = 187;
  g.prefetch_bytes = 1045444;
  g.pcv_batches = 1017;
  g.pcv_items = 9803;
  g.pcv_freshened = 9663;
  g.pcv_invalidated = 140;
  g.conn_opened = 785;
  g.conn_reused = 522;
  g.center_exchanges = 1095;
  g.center_piggybacks = 713;
  g.center_elements = 9175;
  g.center_servers = 1;
  expect_e2e(result, g);
}

TEST(SimGoldenRegression, EndToEndProbabilityVolumes) {
  volume::PairCounterConfig pcc;
  pcc.window = 300;
  const auto counts =
      volume::PairCounterBuilder(pcc).build(shared_workload().trace, 10);
  volume::ProbabilityVolumeConfig pvc;
  pvc.probability_threshold = 0.2;
  pvc.effectiveness_threshold = 0.2;
  const auto set =
      volume::build_probability_volumes(shared_workload().trace, counts, pvc);
  auto config = e2e_base();
  config.probability_volumes = &set;
  const auto result = sim::EndToEndSimulator(shared_workload(), config).run();
  E2eGolden g{};
  g.server_contacts = 1655;
  g.validations = 1444;
  g.validations_not_modified = 1364;
  g.stale_served = 28;
  g.piggyback_bytes = 505024;
  g.body_bytes = 2516667;
  g.total_packets = 7035;
  g.user_latency_sum = 364.73950119018275;
  g.prefetch_latency_sum = 0;
  g.fresh_hits = 7380;
  g.stale_hits = 1444;
  g.misses = 211;
  g.insertions = 291;
  g.piggyback_refreshes = 12398;
  g.piggyback_invalidations = 127;
  g.coh_piggybacks = 1592;
  g.coh_elements = 12816;
  g.coh_refreshed = 12398;
  g.coh_invalidated = 127;
  g.coh_not_cached = 291;
  g.conn_opened = 1037;
  g.conn_reused = 618;
  g.center_exchanges = 1655;
  g.center_piggybacks = 1592;
  g.center_elements = 12816;
  g.center_servers = 0;
  expect_e2e(result, g);
}

TEST(SimGoldenRegression, HierarchyDefault) {
  const auto result =
      sim::HierarchySimulator(shared_workload(), hier_base()).run();
  HierGolden g{};
  g.child_fresh_hits = 4877;
  g.parent_fresh_hits = 2696;
  g.server_contacts = 1462;
  g.stale_served = 39;
  g.parent_piggybacks = 1232;
  g.parent_elements = 15777;
  g.parent_refreshed = 15304;
  g.parent_invalidated = 166;
  g.parent_not_cached = 307;
  g.child_piggybacks = 1232;
  g.child_elements = 15777;
  g.child_refreshed = 13867;
  g.child_invalidated = 290;
  g.child_not_cached = 1620;
  expect_hier(result, g);
}

TEST(SimGoldenRegression, HierarchyNoRelay) {
  auto config = hier_base();
  config.relay_to_children = false;
  const auto result =
      sim::HierarchySimulator(shared_workload(), config).run();
  HierGolden g{};
  g.child_fresh_hits = 2004;
  g.parent_fresh_hits = 5572;
  g.server_contacts = 1459;
  g.stale_served = 40;
  g.parent_piggybacks = 1229;
  g.parent_elements = 15759;
  g.parent_refreshed = 15286;
  g.parent_invalidated = 166;
  g.parent_not_cached = 307;
  expect_hier(result, g);
}

TEST(SimGoldenRegression, HierarchyPiggybackingOff) {
  auto config = hier_base();
  config.piggybacking = false;
  const auto result =
      sim::HierarchySimulator(shared_workload(), config).run();
  HierGolden g{};
  g.child_fresh_hits = 2004;
  g.parent_fresh_hits = 1430;
  g.server_contacts = 5601;
  g.stale_served = 38;
  expect_hier(result, g);
}

TEST(SimGoldenRegression, HierarchyWide) {
  auto config = hier_base();
  config.child_proxies = 16;
  const auto result =
      sim::HierarchySimulator(shared_workload(), config).run();
  HierGolden g{};
  g.child_fresh_hits = 3561;
  g.parent_fresh_hits = 4025;
  g.server_contacts = 1449;
  g.stale_served = 38;
  g.parent_piggybacks = 1216;
  g.parent_elements = 15441;
  g.parent_refreshed = 14964;
  g.parent_invalidated = 167;
  g.parent_not_cached = 310;
  g.child_piggybacks = 1216;
  g.child_elements = 15441;
  g.child_refreshed = 10550;
  g.child_invalidated = 578;
  g.child_not_cached = 4313;
  expect_hier(result, g);
}

}  // namespace
}  // namespace piggyweb

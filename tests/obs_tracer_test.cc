#include "obs/tracer.h"

#include <memory>
#include <set>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "obs/json.h"
#include "util/parallel.h"
#include "util/thread_pool.h"

namespace piggyweb::obs {
namespace {

TEST(Tracer, RecordsCompleteAndInstantEvents) {
  Tracer tracer;
  {
    Span span(&tracer, "outer");
    Span inner(&tracer, "inner");
  }
  tracer.instant("marker");
  EXPECT_EQ(tracer.event_count(), 3u);
  EXPECT_EQ(tracer.thread_count(), 1u);
}

TEST(Tracer, NullTracerSpanIsANoOp) {
  Span span(nullptr, "ignored");  // must not crash or allocate a buffer
  OBS_SPAN("also_ignored");       // global tracer is null by default
  SUCCEED();
}

TEST(Tracer, ExplicitEndIsIdempotent) {
  Tracer tracer;
  Span span(&tracer, "walk");
  span.end();
  span.end();
  EXPECT_EQ(tracer.event_count(), 1u);
}

TEST(Tracer, ChromeTraceIsWellFormed) {
  Tracer tracer;
  { Span span(&tracer, "a"); }
  tracer.instant("b");
  const auto text = tracer.chrome_trace_json();
  const auto parsed = parse_json(text);
  ASSERT_TRUE(parsed.has_value());
  const auto* events = parsed->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->items().size(), 2u);
  for (const auto& event : events->items()) {
    ASSERT_NE(event.find("name"), nullptr);
    ASSERT_NE(event.find("ph"), nullptr);
    ASSERT_NE(event.find("ts"), nullptr);
    ASSERT_NE(event.find("pid"), nullptr);
    ASSERT_NE(event.find("tid"), nullptr);
    if (event.find("ph")->string() == "X") {
      ASSERT_NE(event.find("dur"), nullptr);
    }
  }
}

TEST(Tracer, PerThreadBuffersUnderAPool) {
  Tracer tracer;
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kTasks = 64;
  {
    util::ThreadPool pool(kThreads);
    util::parallel_shards(pool, kTasks, [&tracer](std::size_t) {
      Span span(&tracer, "task");
    });
  }
  EXPECT_EQ(tracer.event_count(), kTasks);
  EXPECT_GE(tracer.thread_count(), 1u);
  EXPECT_LE(tracer.thread_count(), kThreads);

  // Every worker's events carry its own tid.
  const auto trace = tracer.chrome_trace();
  std::set<double> tids;
  for (const auto& event : trace.find("traceEvents")->items()) {
    tids.insert(event.find("tid")->number());
  }
  EXPECT_EQ(tids.size(), tracer.thread_count());
}

TEST(Tracer, GlobalInstallUninstall) {
  EXPECT_EQ(global_tracer(), nullptr);
  Tracer tracer;
  set_global_tracer(&tracer);
  { OBS_SPAN("global_span"); }
  set_global_tracer(nullptr);
  { OBS_SPAN("after_uninstall"); }  // no-op again
  EXPECT_EQ(tracer.event_count(), 1u);
}

TEST(Tracer, PerThreadCapDropsNewestAndCounts) {
  Tracer tracer(/*max_events_per_thread=*/5);
  EXPECT_EQ(tracer.max_events_per_thread(), 5u);
  for (int i = 0; i < 12; ++i) tracer.instant("event");
  // The first five survive (drop-newest: the full post-run export keeps
  // the run's beginning; the flight recorder covers the end).
  EXPECT_EQ(tracer.event_count(), 5u);
  EXPECT_EQ(tracer.dropped(), 7u);
}

TEST(Tracer, CapIsPerThread) {
  Tracer tracer(/*max_events_per_thread=*/4);
  tracer.instant("main");
  std::thread worker([&tracer] {
    for (int i = 0; i < 10; ++i) tracer.instant("worker");
  });
  worker.join();
  EXPECT_EQ(tracer.event_count(), 5u);  // 1 main + 4 worker
  EXPECT_EQ(tracer.dropped(), 6u);
}

TEST(Tracer, DefaultCapIsGenerous) {
  Tracer tracer;
  EXPECT_EQ(tracer.max_events_per_thread(), std::size_t{1} << 20);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(Tracer, SecondTracerDoesNotInheritStaleThreadCache) {
  // The thread-local buffer cache is keyed by tracer identity; a new
  // tracer on this thread must get its own buffer, not the old one's.
  auto first = std::make_unique<Tracer>();
  first->instant("one");
  first.reset();
  Tracer second;
  second.instant("two");
  EXPECT_EQ(second.event_count(), 1u);
}

}  // namespace
}  // namespace piggyweb::obs

// PIGGYTRC columnar container: canonical round trips, batch decoding,
// transform slices through the binary format, and — the untrusted-input
// half — rejection of every corruption class the reader documents:
// truncation, bit flips, column-length mismatches, out-of-range ids and
// methods, duplicate string-table entries, wrong magic/version.
#include "trace/binary.h"

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "persist/codec.h"
#include "trace/transform.h"
#include "util/hash.h"

namespace piggyweb {
namespace {

// Section order as documented in trace/binary.h; the crafted-container
// helpers below rebuild files section by section in this order.
constexpr std::string_view kSections[] = {
    "header",      "strings.sources", "strings.servers",
    "strings.paths", "col.time",      "col.source",
    "col.server",  "col.path",        "col.method",
    "col.status",  "col.size",        "col.last_modified"};
constexpr std::size_t kSectionCount = 12;

trace::Trace make_trace() {
  trace::Trace t;
  t.add({100}, "10.0.0.1", "www.a.org", "/index.html", trace::Method::kGet,
        200, 1024, 90);
  t.add({105}, "10.0.0.2", "www.a.org", "/img/logo.gif", trace::Method::kGet,
        200, 4096);
  t.add({110}, "10.0.0.1", "www.b.org", "/form", trace::Method::kPost, 302,
        0, -1);
  t.add({120}, "10.0.0.3", "www.a.org", "/index.html", trace::Method::kHead,
        304, 0, 90);
  t.add({130}, "10.0.0.2", "www.b.org", "/data.bin", trace::Method::kGet,
        404, 17, 125);
  return t;
}

void expect_traces_equal(const trace::Trace& a, const trace::Trace& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto& x = a.requests()[i];
    const auto& y = b.requests()[i];
    EXPECT_EQ(x.time, y.time) << "request " << i;
    EXPECT_EQ(x.source, y.source) << "request " << i;
    EXPECT_EQ(x.server, y.server) << "request " << i;
    EXPECT_EQ(x.path, y.path) << "request " << i;
    EXPECT_EQ(x.method, y.method) << "request " << i;
    EXPECT_EQ(x.status, y.status) << "request " << i;
    EXPECT_EQ(x.size, y.size) << "request " << i;
    EXPECT_EQ(x.last_modified, y.last_modified) << "request " << i;
  }
  const auto expect_tables_equal = [](const util::InternTable& s,
                                      const util::InternTable& u) {
    ASSERT_EQ(s.size(), u.size());
    for (std::size_t id = 0; id < s.size(); ++id) {
      EXPECT_EQ(s.str(static_cast<util::InternId>(id)),
                u.str(static_cast<util::InternId>(id)));
    }
  };
  expect_tables_equal(a.sources(), b.sources());
  expect_tables_equal(a.servers(), b.servers());
  expect_tables_equal(a.paths(), b.paths());
}

// Rebuild a valid container from mutated section payloads: parse the
// canonical bytes, let `mutate` edit the payload vector, recompute the
// content fingerprint the way the reader does, patch the header, and
// re-envelope. The result has valid checksums everywhere, so only the
// reader's *structural* validation can reject it — which is exactly what
// these tests target.
std::string rebuild_with(
    const std::string& bytes,
    const std::function<void(std::vector<std::string>&)>& mutate) {
  std::string error;
  auto parsed = persist::SnapshotReader::parse(
      bytes, error, trace::kBinaryTraceMagic, trace::kBinaryTraceVersion);
  EXPECT_TRUE(parsed.has_value()) << error;
  std::vector<std::string> payloads;
  for (std::size_t i = 0; i < kSectionCount; ++i) {
    payloads.emplace_back(parsed->sections()[i].payload);
  }
  mutate(payloads);
  std::uint64_t fp = util::fnv1a("piggyweb-trace-columns");
  for (std::size_t i = 1; i < kSectionCount; ++i) {
    fp = util::hash_combine(fp, util::fnv1a(payloads[i]));
  }
  // Header = u64 request count (kept) + u64 fingerprint (recomputed).
  persist::ByteReader header(payloads[0]);
  const std::uint64_t count = header.u64();
  persist::ByteWriter patched;
  patched.u64(count);
  patched.u64(fp);
  payloads[0] = patched.take();
  persist::SnapshotWriter writer;
  for (std::size_t i = 0; i < kSectionCount; ++i) {
    writer.add_section(kSections[i], std::move(payloads[i]));
  }
  return writer.finish(trace::kBinaryTraceMagic, trace::kBinaryTraceVersion);
}

TEST(TraceBinary, RoundTripIsExact) {
  const auto t = make_trace();
  const auto bytes = trace::serialize_binary_trace(t);
  trace::Trace reloaded;
  std::string error;
  ASSERT_TRUE(trace::load_binary_trace(bytes, reloaded, error)) << error;
  expect_traces_equal(t, reloaded);
  EXPECT_EQ(trace::trace_content_fingerprint(t),
            trace::trace_content_fingerprint(reloaded));
}

TEST(TraceBinary, SerializationIsCanonical) {
  const auto t = make_trace();
  const auto bytes = trace::serialize_binary_trace(t);
  EXPECT_EQ(bytes, trace::serialize_binary_trace(t));
  // Re-serializing the round-tripped trace reproduces the same file, so
  // the whole-file checksum is a stable trace identity.
  trace::Trace reloaded;
  std::string error;
  ASSERT_TRUE(trace::load_binary_trace(bytes, reloaded, error)) << error;
  EXPECT_EQ(bytes, trace::serialize_binary_trace(reloaded));
}

TEST(TraceBinary, EmptyTraceRoundTrips) {
  const trace::Trace empty;
  const auto bytes = trace::serialize_binary_trace(empty);
  trace::Trace reloaded;
  std::string error;
  ASSERT_TRUE(trace::load_binary_trace(bytes, reloaded, error)) << error;
  EXPECT_TRUE(reloaded.empty());
  EXPECT_EQ(trace::trace_content_fingerprint(empty),
            trace::trace_content_fingerprint(reloaded));
}

TEST(TraceBinary, MagicSniff) {
  const auto bytes = trace::serialize_binary_trace(make_trace());
  EXPECT_TRUE(trace::looks_like_binary_trace(bytes));
  EXPECT_FALSE(trace::looks_like_binary_trace("PIGGYSNP........"));
  EXPECT_FALSE(trace::looks_like_binary_trace("PIGGYT"));  // too short
  EXPECT_FALSE(trace::looks_like_binary_trace(
      "10.0.0.1 - - [01/Jan/1998:00:00:00 +0000] \"GET / HTTP/1.0\" 200 1"));
}

TEST(TraceBinary, ReaderCountsAndBatchDecode) {
  const auto t = make_trace();
  const auto bytes = trace::serialize_binary_trace(t);
  std::string error;
  const auto reader = trace::BinaryTraceReader::open(bytes, error);
  ASSERT_TRUE(reader.has_value()) << error;
  EXPECT_EQ(reader->request_count(), t.size());
  EXPECT_EQ(reader->source_count(), t.sources().size());
  EXPECT_EQ(reader->server_count(), t.servers().size());
  EXPECT_EQ(reader->path_count(), t.paths().size());
  EXPECT_EQ(reader->content_fingerprint(),
            trace::trace_content_fingerprint(t));

  // Decode in batches of 3 over 5 requests: 3, then 2, then 0.
  std::vector<trace::Request> buf(3);
  std::vector<trace::Request> decoded;
  std::size_t begin = 0;
  while (true) {
    const auto n = reader->read_batch(begin, buf);
    if (n == 0) break;
    decoded.insert(decoded.end(), buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(n));
    begin += n;
  }
  ASSERT_EQ(decoded.size(), t.size());
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(decoded[i].time, t.requests()[i].time);
    EXPECT_EQ(decoded[i].path, t.requests()[i].path);
    EXPECT_EQ(decoded[i].size, t.requests()[i].size);
    EXPECT_EQ(decoded[i].last_modified, t.requests()[i].last_modified);
  }
  EXPECT_EQ(reader->read_batch(t.size() + 10, buf), 0u);
}

TEST(TraceBinary, TransformSlicesRoundTrip) {
  const auto t = make_trace();
  // Transform outputs share the parent's intern tables verbatim —
  // including entries no surviving request references — and the container
  // must preserve exactly that, or volumes built on one slice would stop
  // applying to another.
  const auto [train, test] = trace::split_at_fraction(t, 0.5);
  const auto popular = trace::filter_unpopular(t, 2);
  for (const auto* slice : {&train, &test, &popular}) {
    const auto bytes = trace::serialize_binary_trace(*slice);
    trace::Trace reloaded;
    std::string error;
    ASSERT_TRUE(trace::load_binary_trace(bytes, reloaded, error)) << error;
    expect_traces_equal(*slice, reloaded);
  }
  EXPECT_EQ(train.paths().size(), t.paths().size());
}

TEST(TraceBinary, EveryTruncationRejected) {
  const auto bytes = trace::serialize_binary_trace(make_trace());
  std::string error;
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    trace::Trace out;
    EXPECT_FALSE(
        trace::load_binary_trace(bytes.substr(0, len), out, error))
        << "prefix of " << len << " bytes accepted";
  }
}

TEST(TraceBinary, EveryBitFlipRejected) {
  const auto bytes = trace::serialize_binary_trace(make_trace());
  std::string error;
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      auto mutated = bytes;
      mutated[i] = static_cast<char>(mutated[i] ^ (1 << bit));
      trace::Trace out;
      EXPECT_FALSE(trace::load_binary_trace(mutated, out, error))
          << "flip of byte " << i << " bit " << bit << " accepted";
    }
  }
}

TEST(TraceBinary, ColumnLengthMismatchRejected) {
  const auto bytes = trace::serialize_binary_trace(make_trace());
  // Drop one i64 cell from col.time: the envelope stays valid (checksums
  // recomputed), so only the count-vs-payload cross-check can catch it.
  const auto crafted = rebuild_with(bytes, [](auto& payloads) {
    payloads[4].resize(payloads[4].size() - 8);
  });
  trace::Trace out;
  std::string error;
  EXPECT_FALSE(trace::load_binary_trace(crafted, out, error));
  EXPECT_NE(error.find("does not match the header request count"),
            std::string::npos)
      << error;
}

TEST(TraceBinary, OutOfRangeMethodRejected) {
  const auto bytes = trace::serialize_binary_trace(make_trace());
  const auto crafted = rebuild_with(
      bytes, [](auto& payloads) { payloads[8][0] = 7; });
  trace::Trace out;
  std::string error;
  EXPECT_FALSE(trace::load_binary_trace(crafted, out, error));
}

TEST(TraceBinary, OutOfRangeInternIdRejected) {
  const auto bytes = trace::serialize_binary_trace(make_trace());
  const auto crafted = rebuild_with(bytes, [](auto& payloads) {
    // First col.path cell -> 0xffffffff, far past the path table.
    for (std::size_t b = 0; b < 4; ++b) payloads[7][b] = static_cast<char>(0xff);
  });
  trace::Trace out;
  std::string error;
  EXPECT_FALSE(trace::load_binary_trace(crafted, out, error));
}

TEST(TraceBinary, DuplicateStringTableEntryRejected) {
  const auto bytes = trace::serialize_binary_trace(make_trace());
  const auto original = make_trace();
  const auto path_count = original.paths().size();
  const auto crafted =
      rebuild_with(bytes, [path_count](auto& payloads) {
        // Same count, but every entry is the same string: ids would no
        // longer renumber 0..n-1 when re-interned.
        persist::ByteWriter table;
        table.u32(static_cast<std::uint32_t>(path_count));
        for (std::size_t i = 0; i < path_count; ++i) table.str("/dup");
        payloads[3] = table.take();
      });
  std::string error;
  // Structure is fine, so open() accepts it...
  ASSERT_TRUE(trace::BinaryTraceReader::open(crafted, error).has_value())
      << error;
  // ...but materializing must refuse to silently collapse intern ids.
  trace::Trace out;
  EXPECT_FALSE(trace::load_binary_trace(crafted, out, error));
  EXPECT_NE(error.find("duplicate string"), std::string::npos) << error;
}

TEST(TraceBinary, WrongMagicAndVersionRejected) {
  const auto bytes = trace::serialize_binary_trace(make_trace());
  std::string error;
  auto parsed = persist::SnapshotReader::parse(
      bytes, error, trace::kBinaryTraceMagic, trace::kBinaryTraceVersion);
  ASSERT_TRUE(parsed.has_value()) << error;
  persist::SnapshotWriter writer;
  for (const auto& section : parsed->sections()) {
    writer.add_section(section.name, std::string(section.payload));
  }
  trace::Trace out;
  // A structurally identical file under the snapshot magic is not a
  // trace; neither is a future container version.
  EXPECT_FALSE(trace::load_binary_trace(
      writer.finish(persist::kSnapshotMagic, trace::kBinaryTraceVersion),
      out, error));
  EXPECT_FALSE(trace::load_binary_trace(
      writer.finish(trace::kBinaryTraceMagic, trace::kBinaryTraceVersion + 1),
      out, error));
}

}  // namespace
}  // namespace piggyweb

// Property tests for the table serializers: every durable table round
// trips exactly (restore compares equal to the original), restoring and
// re-serializing reproduces the canonical bytes bit-for-bit, and
// malformed payloads are rejected with an error instead of crashing or
// tripping a contract.
#include "persist/tables.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "persist/state_access.h"
#include "proxy/cache.h"
#include "util/rng.h"
#include "volume/directory.h"
#include "volume/pair_counter.h"

namespace piggyweb::persist {
namespace {

// u64 vectors ---------------------------------------------------------------

TEST(U64Vector, RoundTrip) {
  const std::vector<std::uint64_t> values = {0, 1, 0xffffffffffffffffULL, 42};
  ByteWriter out;
  serialize_u64_vector(values, out);
  ByteReader in(out.bytes());
  std::vector<std::uint64_t> back;
  std::string error;
  ASSERT_TRUE(deserialize_u64_vector(in, back, error)) << error;
  EXPECT_EQ(back, values);
  EXPECT_TRUE(in.ok() && in.at_end());
}

TEST(U64Vector, OversizedCountIsRejected) {
  ByteWriter out;
  out.u64(1ULL << 60);  // count far beyond the payload
  ByteReader in(out.bytes());
  std::vector<std::uint64_t> back;
  std::string error;
  EXPECT_FALSE(deserialize_u64_vector(in, back, error));
  EXPECT_FALSE(error.empty());
}

// Intern tables -------------------------------------------------------------

TEST(InternTableCodec, ReloadReproducesIdAssignment) {
  util::InternTable table;
  const std::vector<std::string> strings = {"/a/b.html", "", "img.gif",
                                            std::string("nul\0inside", 10),
                                            "/a/b.html/very/deep/path"};
  std::vector<util::InternId> ids;
  for (const auto& s : strings) ids.push_back(table.intern(s));

  ByteWriter out;
  serialize_intern_table(table, out);
  const auto bytes = out.take();

  util::InternTable back;
  ByteReader in(bytes);
  std::string error;
  ASSERT_TRUE(deserialize_intern_table(in, back, error)) << error;
  ASSERT_EQ(back.size(), table.size());
  for (std::size_t i = 0; i < strings.size(); ++i) {
    EXPECT_EQ(back.str(ids[i]), strings[i]);
    EXPECT_EQ(back.find(strings[i]), ids[i]);
  }

  // Canonical bytes: re-serializing the restored table is an identity.
  ByteWriter again;
  serialize_intern_table(back, again);
  EXPECT_EQ(again.bytes(), bytes);
}

// FlatMap -------------------------------------------------------------------

void write_u64_value(ByteWriter& out, std::uint64_t value) { out.u64(value); }
bool read_u64_value(ByteReader& in, std::uint64_t& value, std::string&) {
  value = in.u64();
  return true;
}

TEST(FlatMapCodec, RoundTripUnderChurn) {
  // Heavy insert/erase churn exercises backward-shift deletion and
  // rehashing, so the two maps' probe layouts differ wildly; content
  // equality and canonical bytes must not care.
  util::Rng rng(0xf1a7);
  util::FlatMap<std::uint32_t, std::uint64_t> map;
  for (int round = 0; round < 5000; ++round) {
    const auto key = static_cast<std::uint32_t>(rng.below(700));
    if (rng.below(3) == 0) {
      map.erase(key);
    } else {
      map[key] = rng.below(1 << 30);
    }
  }
  ASSERT_GT(map.size(), 0u);

  ByteWriter out;
  serialize_flat_map(map, out, write_u64_value);
  const auto bytes = out.take();

  util::FlatMap<std::uint32_t, std::uint64_t> back;
  back[999999] = 1;  // deserialize must clear pre-existing contents
  ByteReader in(bytes);
  std::string error;
  ASSERT_TRUE(deserialize_flat_map(in, back, read_u64_value, error)) << error;
  EXPECT_TRUE(map == back);
  EXPECT_TRUE(in.ok() && in.at_end());

  ByteWriter again;
  serialize_flat_map(back, again, write_u64_value);
  EXPECT_EQ(again.bytes(), bytes);
}

TEST(FlatMapCodec, DuplicateKeyIsRejected) {
  ByteWriter out;
  out.u64(2);
  out.u64(7);
  out.u64(100);
  out.u64(7);  // duplicate key
  out.u64(200);
  ByteReader in(out.bytes());
  util::FlatMap<std::uint32_t, std::uint64_t> map;
  std::string error;
  EXPECT_FALSE(deserialize_flat_map(in, map, read_u64_value, error));
  EXPECT_NE(error.find("duplicate"), std::string::npos) << error;
}

TEST(FlatMapCodec, KeyOutOfRangeIsRejected) {
  ByteWriter out;
  out.u64(1);
  out.u64(1ULL << 40);  // does not fit in a u32 key
  out.u64(5);
  ByteReader in(out.bytes());
  util::FlatMap<std::uint32_t, std::uint64_t> map;
  std::string error;
  EXPECT_FALSE(deserialize_flat_map(in, map, read_u64_value, error));
  EXPECT_NE(error.find("range"), std::string::npos) << error;
}

TEST(FlatMapCodec, OversizedCountIsRejected) {
  ByteWriter out;
  out.u64(1ULL << 61);
  ByteReader in(out.bytes());
  util::FlatMap<std::uint32_t, std::uint64_t> map;
  std::string error;
  EXPECT_FALSE(deserialize_flat_map(in, map, read_u64_value, error));
  EXPECT_NE(error.find("overruns"), std::string::npos) << error;
}

// RPV lists -----------------------------------------------------------------

TEST(RpvCodec, ListRoundTripPreservesFifoOrder) {
  core::RpvConfig config;
  config.timeout = 60;
  config.max_entries = 8;
  core::RpvList list(config);
  list.note(3, util::TimePoint{100});
  list.note(7, util::TimePoint{110});
  list.note(3, util::TimePoint{120});  // refresh moves 3 behind 7

  ByteWriter out;
  serialize_rpv_list(list, out);
  const auto bytes = out.take();

  ByteReader in(bytes);
  std::vector<core::RpvEntry> entries;
  std::string error;
  ASSERT_TRUE(deserialize_rpv_entries(in, entries, error)) << error;
  core::RpvList restored(config);
  restored.restore_entries(entries);
  EXPECT_EQ(restored.entries(), list.entries());
  EXPECT_EQ(restored.live(util::TimePoint{125}),
            (std::vector<core::VolumeId>{7, 3}));

  ByteWriter again;
  serialize_rpv_list(restored, again);
  EXPECT_EQ(again.bytes(), bytes);
}

TEST(RpvCodec, TruncatedEntriesAreRejected) {
  ByteWriter out;
  out.u64(5);  // promises 5 entries, delivers none
  ByteReader in(out.bytes());
  std::vector<core::RpvEntry> entries;
  std::string error;
  EXPECT_FALSE(deserialize_rpv_entries(in, entries, error));
  EXPECT_FALSE(error.empty());
}

// Sharded pair counters -----------------------------------------------------

TEST(PairCounterCodec, RoundTripAcrossStripeCounts) {
  volume::ShardedPairCounterTable table(8);
  util::Rng rng(0xc0117);
  for (int i = 0; i < 2000; ++i) {
    const auto r = static_cast<util::InternId>(rng.below(40));
    const auto s = static_cast<util::InternId>(rng.below(40));
    table.add_pair(r, s);
    table.add_occurrence(r);
  }

  ByteWriter out;
  serialize_sharded_pair_counts(table, out);
  const auto bytes = out.take();

  // The stripe count is a concurrency detail; restore into a table with a
  // different one and expect identical logical contents.
  volume::ShardedPairCounterTable back(3);
  ByteReader in(bytes);
  std::string error;
  ASSERT_TRUE(deserialize_sharded_pair_counts(in, back, error)) << error;
  EXPECT_TRUE(in.ok() && in.at_end());

  auto expect_entries = table.pair_entries();
  auto got_entries = back.pair_entries();
  std::sort(expect_entries.begin(), expect_entries.end());
  std::sort(got_entries.begin(), got_entries.end());
  EXPECT_EQ(got_entries, expect_entries);
  EXPECT_EQ(back.occurrence_vector(), table.occurrence_vector());

  ByteWriter again;
  serialize_sharded_pair_counts(back, again);
  EXPECT_EQ(again.bytes(), bytes);
}

TEST(PairCounterCodec, PairCountsRoundTrip) {
  volume::ShardedPairCounterTable table(4);
  table.add_pair(1, 2, 5);
  table.add_pair(1, 3, 2);
  table.add_pair(2, 3, 9);
  table.add_occurrence(1, 10);
  table.add_occurrence(2, 12);
  const volume::PairCounts counts = table.to_pair_counts();

  ByteWriter out;
  StateAccess::serialize_pair_counts(counts, out);
  const auto bytes = out.take();

  volume::PairCounts back;
  ByteReader in(bytes);
  std::string error;
  ASSERT_TRUE(StateAccess::deserialize_pair_counts(in, back, error)) << error;
  EXPECT_EQ(back.counter_count(), counts.counter_count());
  EXPECT_EQ(back.pair_count(1, 2), 5u);
  EXPECT_EQ(back.pair_count(2, 3), 9u);
  EXPECT_EQ(back.occurrences(2), 12u);
  EXPECT_DOUBLE_EQ(back.probability(1, 2), counts.probability(1, 2));

  ByteWriter again;
  StateAccess::serialize_pair_counts(back, again);
  EXPECT_EQ(again.bytes(), bytes);
}

// Probability volume sets ---------------------------------------------------

TEST(ProbabilityVolumeCodec, RoundTripPreservesIds) {
  volume::ProbabilityVolumeSet set;
  set.add_volume(5, {{7, 0.5, 0.4}, {9, 0.25, 0.0}});
  set.add_volume(2, {{5, 0.9, 0.9}});
  set.add_volume(9, {{2, 0.1, 0.05}, {5, 0.3, 0.2}, {7, 0.2, 0.1}});

  ByteWriter out;
  serialize_probability_volume_set(set, out);
  const auto bytes = out.take();

  volume::ProbabilityVolumeSet back;
  ByteReader in(bytes);
  std::string error;
  ASSERT_TRUE(deserialize_probability_volume_set(in, back, error)) << error;
  ASSERT_EQ(back.volume_count(), set.volume_count());
  for (const util::InternId r : {5u, 2u, 9u}) {
    EXPECT_EQ(back.volume_id(r), set.volume_id(r)) << "resource " << r;
    const auto* mine = set.volume_of(r);
    const auto* theirs = back.volume_of(r);
    ASSERT_NE(theirs, nullptr);
    ASSERT_EQ(theirs->size(), mine->size());
    for (std::size_t i = 0; i < mine->size(); ++i) {
      EXPECT_EQ((*theirs)[i].resource, (*mine)[i].resource);
      EXPECT_DOUBLE_EQ((*theirs)[i].probability, (*mine)[i].probability);
      EXPECT_DOUBLE_EQ((*theirs)[i].effectiveness, (*mine)[i].effectiveness);
    }
  }
  EXPECT_EQ(back.volume_id(1234), core::kNoVolume);

  ByteWriter again;
  serialize_probability_volume_set(back, again);
  EXPECT_EQ(again.bytes(), bytes);
}

// Directory volume images ---------------------------------------------------

std::vector<DirectoryVolumeImage> sample_images() {
  std::vector<DirectoryVolumeImage> images(2);
  images[0].server = 1;
  images[0].prefix = "/a";
  images[0].saved_id = 0;
  images[0].parts[0] = {{10, util::TimePoint{5}}, {11, util::TimePoint{3}}};
  images[0].parts[4] = {{12, util::TimePoint{9}}};
  images[1].server = 2;
  images[1].prefix = "";
  images[1].saved_id = 1;
  images[1].parts[5] = {{20, util::TimePoint{1}}};
  return images;
}

TEST(DirectoryImageCodec, RoundTrip) {
  const auto images = sample_images();
  ByteWriter out;
  serialize_directory_volume_images(images, out);
  const auto bytes = out.take();

  ByteReader in(bytes);
  std::vector<DirectoryVolumeImage> back;
  std::string error;
  ASSERT_TRUE(deserialize_directory_volume_images(in, back, error)) << error;
  EXPECT_TRUE(in.ok() && in.at_end());
  EXPECT_EQ(back, images);

  ByteWriter again;
  serialize_directory_volume_images(back, again);
  EXPECT_EQ(again.bytes(), bytes);
}

TEST(DirectoryImageCodec, OversizedElementCountIsRejected) {
  ByteWriter out;
  out.u64(1);           // one volume
  out.u32(1);           // server
  out.str("/a");        // prefix
  out.u32(0);           // saved id
  out.u64(1ULL << 62);  // elements in partition 0: absurd
  ByteReader in(out.bytes());
  std::vector<DirectoryVolumeImage> back;
  std::string error;
  EXPECT_FALSE(deserialize_directory_volume_images(in, back, error));
  EXPECT_FALSE(error.empty());
}

// DirectoryVolumes export/import -------------------------------------------

core::VolumeRequest make_request(util::InternId server, util::InternId path,
                                 std::int64_t time, std::uint64_t size,
                                 trace::ContentType type) {
  core::VolumeRequest request;
  request.server = server;
  request.source = 1;
  request.path = path;
  request.time = util::TimePoint{time};
  request.size = size;
  request.type = type;
  return request;
}

TEST(DirectoryVolumesCodec, ExportImportPreservesStructure) {
  util::InternTable paths;
  const auto a = paths.intern("/a/x.html");
  const auto b = paths.intern("/a/y.gif");
  const auto c = paths.intern("/b/z.html");

  volume::DirectoryVolumeConfig config;
  config.level = 1;
  volume::DirectoryVolumes original(config);
  original.bind_paths(paths);
  original.on_request(
      make_request(1, a, 10, 100, trace::ContentType::kHtml));
  original.on_request(
      make_request(1, b, 20, 64 * 1024, trace::ContentType::kImage));
  original.on_request(
      make_request(1, c, 30, 100, trace::ContentType::kHtml));
  original.on_request(
      make_request(2, a, 40, 100, trace::ContentType::kHtml));
  // Touch /a/x.html again so move-to-front ordering is part of the image.
  original.on_request(
      make_request(1, a, 50, 100, trace::ContentType::kHtml));

  const auto images = StateAccess::export_directory_volumes(original);
  ASSERT_EQ(images.size(), original.volume_count());

  volume::DirectoryVolumes restored(config);
  restored.bind_paths(paths);
  std::vector<const DirectoryVolumeImage*> pointers;
  for (const auto& image : images) pointers.push_back(&image);
  std::vector<core::VolumeId> assigned;
  std::string error;
  ASSERT_TRUE(StateAccess::import_directory_volumes(restored, pointers,
                                                    assigned, error))
      << error;
  ASSERT_EQ(assigned.size(), images.size());
  EXPECT_EQ(restored.volume_count(), original.volume_count());
  for (std::size_t i = 0; i < images.size(); ++i) {
    EXPECT_EQ(restored.volume_size(assigned[i]),
              original.volume_size(images[i].saved_id));
  }
  // The re-export must reproduce the same structural images (ids may be
  // renumbered, so compare everything except saved_id).
  auto re = StateAccess::export_directory_volumes(restored);
  ASSERT_EQ(re.size(), images.size());
  std::sort(re.begin(), re.end(), [](const auto& x, const auto& y) {
    return std::tie(x.server, x.prefix) < std::tie(y.server, y.prefix);
  });
  auto expected = images;
  std::sort(expected.begin(), expected.end(),
            [](const auto& x, const auto& y) {
              return std::tie(x.server, x.prefix) < std::tie(y.server, y.prefix);
            });
  for (std::size_t i = 0; i < re.size(); ++i) {
    EXPECT_EQ(re[i].server, expected[i].server);
    EXPECT_EQ(re[i].prefix, expected[i].prefix);
    EXPECT_EQ(re[i].parts, expected[i].parts);
  }
}

TEST(DirectoryVolumesCodec, DuplicateVolumeIdentityIsRejected) {
  const auto images = sample_images();
  volume::DirectoryVolumeConfig config;
  volume::DirectoryVolumes provider(config);
  std::vector<const DirectoryVolumeImage*> pointers = {&images[0], &images[0]};
  std::vector<core::VolumeId> assigned;
  std::string error;
  EXPECT_FALSE(StateAccess::import_directory_volumes(provider, pointers,
                                                     assigned, error));
  EXPECT_FALSE(error.empty());
}

// Proxy cache ---------------------------------------------------------------

// Drive `cache` through a deterministic mixed workload: inserts, hits,
// revalidations, piggyback refresh/invalidate, overrides, and enough
// volume to force evictions.
void churn_cache(proxy::ProxyCache& cache, util::Rng& rng, int operations) {
  for (int i = 0; i < operations; ++i) {
    const util::TimePoint now{static_cast<std::int64_t>(i) * 10};
    const proxy::CacheKey key{static_cast<util::InternId>(1 + rng.below(3)),
                              static_cast<util::InternId>(rng.below(60))};
    switch (rng.below(6)) {
      case 0:
      case 1:
        if (cache.lookup(key, now) == proxy::LookupOutcome::kMiss) {
          cache.insert(key, 50 + rng.below(400), /*last_modified=*/i, now);
        }
        break;
      case 2:
        cache.revalidate(key, now);
        break;
      case 3:
        cache.apply_piggyback(key, /*last_modified=*/i - 5, now);
        break;
      case 4:
        cache.set_freshness_override(
            key, static_cast<util::Seconds>(30 + rng.below(100)));
        break;
      case 5:
        cache.set_hint(key, static_cast<double>(rng.below(100)) / 100.0);
        break;
    }
  }
}

class ProxyCacheCodec
    : public ::testing::TestWithParam<proxy::ReplacementPolicy> {};

TEST_P(ProxyCacheCodec, ExactRestoreAndBehaviouralEquivalence) {
  proxy::CacheConfig config;
  config.capacity_bytes = 4000;  // small: plenty of evictions
  config.freshness_interval = 120;
  config.policy = GetParam();

  proxy::ProxyCache cache(config);
  util::Rng rng(0xcac4e + static_cast<std::uint64_t>(GetParam()));
  churn_cache(cache, rng, 3000);
  ASSERT_GT(cache.entry_count(), 0u);
  ASSERT_GT(cache.stats().evictions, 0u);

  ByteWriter out;
  StateAccess::serialize_proxy_cache(cache, out);
  const auto bytes = out.take();

  proxy::ProxyCache restored(config);
  ByteReader in(bytes);
  std::string error;
  ASSERT_TRUE(StateAccess::deserialize_proxy_cache(in, restored, error))
      << error;
  EXPECT_TRUE(in.ok() && in.at_end());
  EXPECT_EQ(restored.entry_count(), cache.entry_count());
  EXPECT_EQ(restored.used_bytes(), cache.used_bytes());
  EXPECT_EQ(restored.stats().lookups, cache.stats().lookups);
  EXPECT_EQ(restored.stats().evictions, cache.stats().evictions);

  // Canonical bytes: the restored cache re-serializes identically.
  ByteWriter again;
  StateAccess::serialize_proxy_cache(restored, again);
  EXPECT_EQ(again.bytes(), bytes);

  // Behavioural equivalence: continue both caches with the same workload
  // (same rng stream) and require identical victims and stats throughout.
  util::Rng continue_a(0x5eed + static_cast<std::uint64_t>(GetParam()));
  util::Rng continue_b = continue_a;
  churn_cache(cache, continue_a, 2000);
  churn_cache(restored, continue_b, 2000);
  EXPECT_EQ(restored.entry_count(), cache.entry_count());
  EXPECT_EQ(restored.used_bytes(), cache.used_bytes());
  EXPECT_EQ(restored.stats().fresh_hits, cache.stats().fresh_hits);
  EXPECT_EQ(restored.stats().stale_hits, cache.stats().stale_hits);
  EXPECT_EQ(restored.stats().misses, cache.stats().misses);
  EXPECT_EQ(restored.stats().evictions, cache.stats().evictions);
  EXPECT_EQ(restored.stats().piggyback_refreshes,
            cache.stats().piggyback_refreshes);
  EXPECT_EQ(restored.stats().piggyback_invalidations,
            cache.stats().piggyback_invalidations);

  // And the continued pair still serializes identically.
  ByteWriter final_a;
  ByteWriter final_b;
  StateAccess::serialize_proxy_cache(cache, final_a);
  StateAccess::serialize_proxy_cache(restored, final_b);
  EXPECT_EQ(final_a.bytes(), final_b.bytes());
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, ProxyCacheCodec,
    ::testing::Values(proxy::ReplacementPolicy::kLru,
                      proxy::ReplacementPolicy::kSize,
                      proxy::ReplacementPolicy::kGdSize,
                      proxy::ReplacementPolicy::kLruPiggyback,
                      proxy::ReplacementPolicy::kGdSizeHint),
    [](const auto& param_info) {
      std::string name = proxy::policy_name(param_info.param);
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

TEST(ProxyCacheCodec, ConfigMismatchIsRejected) {
  proxy::CacheConfig config;
  config.capacity_bytes = 4000;
  proxy::ProxyCache cache(config);
  cache.insert({1, 2}, 100, 0, util::TimePoint{1});
  ByteWriter out;
  StateAccess::serialize_proxy_cache(cache, out);

  proxy::CacheConfig other = config;
  other.capacity_bytes = 8000;
  proxy::ProxyCache target(other);
  ByteReader in(out.bytes());
  std::string error;
  EXPECT_FALSE(StateAccess::deserialize_proxy_cache(in, target, error));
  EXPECT_FALSE(error.empty());
}

TEST(ProxyCacheCodec, TruncatedPayloadIsRejected) {
  proxy::CacheConfig config;
  proxy::ProxyCache cache(config);
  cache.insert({1, 2}, 100, 0, util::TimePoint{1});
  cache.insert({1, 3}, 200, 0, util::TimePoint{2});
  ByteWriter out;
  StateAccess::serialize_proxy_cache(cache, out);
  const auto bytes = out.take();
  for (const std::size_t len : {bytes.size() / 4, bytes.size() / 2,
                                bytes.size() - 1}) {
    proxy::ProxyCache target(config);
    ByteReader in(std::string_view(bytes).substr(0, len));
    std::string error;
    EXPECT_FALSE(StateAccess::deserialize_proxy_cache(in, target, error))
        << "accepted truncation to " << len;
  }
}

// RPV tables ----------------------------------------------------------------

TEST(RpvTableCodec, RoundTripPreservesListsAndLruOrder) {
  core::RpvConfig config;
  config.timeout = 300;
  config.max_entries = 4;
  core::RpvTable table(config, /*max_servers=*/8);
  for (int i = 0; i < 40; ++i) {
    const auto server = static_cast<util::InternId>(1 + (i * 7) % 5);
    const auto volume = static_cast<core::VolumeId>(i % 6);
    table.note(server, volume, util::TimePoint{i});
  }
  ASSERT_GT(table.tracked_servers(), 0u);

  ByteWriter out;
  StateAccess::serialize_rpv_table(table, out);
  const auto bytes = out.take();

  core::RpvTable restored(config, 8);
  ByteReader in(bytes);
  std::string error;
  ASSERT_TRUE(StateAccess::deserialize_rpv_table(in, restored, error))
      << error;
  EXPECT_TRUE(in.ok() && in.at_end());
  EXPECT_EQ(restored.tracked_servers(), table.tracked_servers());
  for (util::InternId server = 1; server <= 5; ++server) {
    EXPECT_EQ(restored.live(server, util::TimePoint{40}),
              table.live(server, util::TimePoint{40}))
        << "server " << server;
  }

  ByteWriter again;
  StateAccess::serialize_rpv_table(restored, again);
  EXPECT_EQ(again.bytes(), bytes);
}

TEST(RpvTableCodec, ConfigMismatchIsRejected) {
  core::RpvConfig config;
  config.timeout = 300;
  core::RpvTable table(config, 8);
  table.note(1, 2, util::TimePoint{5});
  ByteWriter out;
  StateAccess::serialize_rpv_table(table, out);

  core::RpvConfig other = config;
  other.timeout = 600;
  core::RpvTable target(other, 8);
  ByteReader in(out.bytes());
  std::string error;
  EXPECT_FALSE(StateAccess::deserialize_rpv_table(in, target, error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace piggyweb::persist

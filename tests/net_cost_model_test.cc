#include "net/cost_model.h"

#include <gtest/gtest.h>

namespace piggyweb::net {
namespace {

NetworkConfig config() {
  NetworkConfig c;
  c.rtt_seconds = 0.1;
  c.bandwidth_bytes_per_sec = 1000.0;
  c.server_think_seconds = 0.05;
  c.persistent_idle_timeout = 60;
  return c;
}

TEST(ConnectionManager, FirstUseOpens) {
  ConnectionManager manager(60);
  EXPECT_FALSE(manager.use(1, 2, {100}));
  EXPECT_EQ(manager.stats().opened, 1u);
  EXPECT_EQ(manager.stats().reused, 0u);
}

TEST(ConnectionManager, ReuseWithinIdleTimeout) {
  ConnectionManager manager(60);
  manager.use(1, 2, {100});
  EXPECT_TRUE(manager.use(1, 2, {150}));
  EXPECT_TRUE(manager.use(1, 2, {210}));  // refreshed by previous use
  EXPECT_EQ(manager.stats().reused, 2u);
}

TEST(ConnectionManager, IdleTimeoutCloses) {
  ConnectionManager manager(60);
  manager.use(1, 2, {100});
  EXPECT_FALSE(manager.use(1, 2, {161}));
  EXPECT_EQ(manager.stats().opened, 2u);
}

TEST(ConnectionManager, PairsAreIndependent) {
  ConnectionManager manager(60);
  manager.use(1, 2, {100});
  EXPECT_FALSE(manager.use(1, 3, {100}));  // other server
  EXPECT_FALSE(manager.use(4, 2, {100}));  // other source
}

TEST(ConnectionManager, ReuseFraction) {
  ConnectionManager manager(60);
  manager.use(1, 2, {0});
  manager.use(1, 2, {1});
  manager.use(1, 2, {2});
  manager.use(1, 2, {3});
  EXPECT_DOUBLE_EQ(manager.stats().reuse_fraction(), 0.75);
}

TEST(CostModel, PacketsForBoundaries) {
  const CostModel model(config());
  EXPECT_EQ(model.packets_for(0), 1u);
  EXPECT_EQ(model.packets_for(1460), 1u);
  EXPECT_EQ(model.packets_for(1461), 2u);
}

TEST(CostModel, ReusedConnectionSkipsHandshake) {
  const CostModel model(config());
  const auto fresh = model.exchange(200, 1000, /*reused=*/false);
  const auto reused = model.exchange(200, 1000, /*reused=*/true);
  EXPECT_NEAR(fresh.latency_seconds - reused.latency_seconds, 0.1, 1e-9);
  EXPECT_EQ(fresh.packets - reused.packets, 2u);  // SYN + SYN-ACK
  EXPECT_TRUE(fresh.opened_connection);
  EXPECT_FALSE(reused.opened_connection);
}

TEST(CostModel, LatencyComposition) {
  const CostModel model(config());
  const auto cost = model.exchange(0, 2000, /*reused=*/true);
  // RTT (0.1) + think (0.05) + 2000/1000 bandwidth = 2.15.
  EXPECT_NEAR(cost.latency_seconds, 2.15, 1e-9);
}

TEST(CostModel, BytesSumBothDirections) {
  const CostModel model(config());
  const auto cost = model.exchange(300, 700, true);
  EXPECT_EQ(cost.bytes, 1000u);
}

TEST(CostModel, PacketsSumBothDirections) {
  const CostModel model(config());
  const auto cost = model.exchange(200, 3000, true);
  EXPECT_EQ(cost.packets, 1u + 3u);  // 200B request + ceil(3000/1460)
}

}  // namespace
}  // namespace piggyweb::net

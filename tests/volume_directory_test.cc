#include "volume/directory.h"

#include <gtest/gtest.h>

namespace piggyweb::volume {
namespace {

class DirectoryVolumesTest : public ::testing::Test {
 protected:
  core::VolumeRequest request(std::string_view path,
                              util::Seconds t = 0,
                              std::uint64_t size = 100,
                              trace::ContentType type =
                                  trace::ContentType::kHtml) {
    core::VolumeRequest r;
    r.server = 0;
    r.source = 0;
    r.path = paths_.intern(path);
    r.time = {t};
    r.size = size;
    r.type = type;
    return r;
  }

  DirectoryVolumes make(int level, std::size_t max_elements = 2000,
                        std::size_t max_candidates = 200) {
    DirectoryVolumeConfig config;
    config.level = level;
    config.max_volume_elements = max_elements;
    config.max_candidates = max_candidates;
    DirectoryVolumes volumes(config);
    volumes.bind_paths(paths_);
    return volumes;
  }

  util::InternTable paths_;
};

TEST_F(DirectoryVolumesTest, SamePrefixSharesVolume) {
  auto volumes = make(1);
  // The paper's example: /a/b.html and /a/d/e.html share a 1-level
  // volume; /f/g.html does not.
  const auto p1 = volumes.on_request(request("/a/b.html", 0));
  const auto p2 = volumes.on_request(request("/a/d/e.html", 1));
  const auto p3 = volumes.on_request(request("/f/g.html", 2));
  EXPECT_EQ(p1.volume, p2.volume);
  EXPECT_NE(p1.volume, p3.volume);
  EXPECT_EQ(volumes.volume_count(), 2u);
}

TEST_F(DirectoryVolumesTest, ZeroLevelIsSiteWide) {
  auto volumes = make(0);
  const auto p1 = volumes.on_request(request("/a/b.html", 0));
  const auto p2 = volumes.on_request(request("/f/g.html", 1));
  EXPECT_EQ(p1.volume, p2.volume);
  EXPECT_EQ(volumes.volume_count(), 1u);
}

TEST_F(DirectoryVolumesTest, CandidatesInRecencyOrder) {
  auto volumes = make(1);
  volumes.on_request(request("/a/1.html", 0));
  volumes.on_request(request("/a/2.html", 10));
  const auto p = volumes.on_request(request("/a/3.html", 20));
  ASSERT_EQ(p.resources.size(), 3u);
  EXPECT_EQ(paths_.str(p.resources[0]), "/a/3.html");
  EXPECT_EQ(paths_.str(p.resources[1]), "/a/2.html");
  EXPECT_EQ(paths_.str(p.resources[2]), "/a/1.html");
}

TEST_F(DirectoryVolumesTest, MoveToFrontOnReaccess) {
  auto volumes = make(1);
  volumes.on_request(request("/a/1.html", 0));
  volumes.on_request(request("/a/2.html", 10));
  volumes.on_request(request("/a/1.html", 20));  // 1 back to front
  const auto p = volumes.on_request(request("/a/3.html", 30));
  ASSERT_EQ(p.resources.size(), 3u);
  EXPECT_EQ(paths_.str(p.resources[1]), "/a/1.html");
  EXPECT_EQ(paths_.str(p.resources[2]), "/a/2.html");
}

TEST_F(DirectoryVolumesTest, NoDuplicateElements) {
  auto volumes = make(1);
  for (int i = 0; i < 5; ++i) {
    volumes.on_request(request("/a/x.html", i));
  }
  const auto p = volumes.on_request(request("/a/x.html", 10));
  EXPECT_EQ(p.resources.size(), 1u);
  EXPECT_EQ(volumes.volume_size(p.volume), 1u);
}

TEST_F(DirectoryVolumesTest, TrimsToMaxElements) {
  auto volumes = make(1, /*max_elements=*/3);
  for (int i = 0; i < 10; ++i) {
    volumes.on_request(
        request("/a/r" + std::to_string(i) + ".html", i));
  }
  const auto p = volumes.on_request(request("/a/q.html", 100));
  EXPECT_LE(volumes.volume_size(p.volume), 3u);
  // Survivors are the most recently used.
  ASSERT_GE(p.resources.size(), 2u);
  EXPECT_EQ(paths_.str(p.resources[0]), "/a/q.html");
  EXPECT_EQ(paths_.str(p.resources[1]), "/a/r9.html");
}

TEST_F(DirectoryVolumesTest, EvictionPicksOldestAcrossPartitions) {
  auto volumes = make(1, /*max_elements=*/2);
  volumes.on_request(request("/a/old.html", 0, 100,
                             trace::ContentType::kHtml));
  volumes.on_request(request("/a/img.gif", 10, 100,
                             trace::ContentType::kImage));
  volumes.on_request(request("/a/new.html", 20, 100,
                             trace::ContentType::kHtml));
  const auto p = volumes.on_request(request("/a/img.gif", 30));
  // old.html (the oldest) was evicted even though img.gif sat in a
  // different partition.
  for (const auto res : p.resources) {
    EXPECT_NE(paths_.str(res), "/a/old.html");
  }
}

TEST_F(DirectoryVolumesTest, MaxCandidatesCapsOutput) {
  auto volumes = make(1, 2000, /*max_candidates=*/5);
  for (int i = 0; i < 20; ++i) {
    volumes.on_request(request("/a/r" + std::to_string(i) + ".html", i));
  }
  const auto p = volumes.on_request(request("/a/q.html", 100));
  EXPECT_EQ(p.resources.size(), 5u);
}

TEST_F(DirectoryVolumesTest, PartitionMigrationOnTypeChange) {
  auto volumes = make(1);
  volumes.on_request(request("/a/r.html", 0, 100,
                             trace::ContentType::kHtml));
  // Same resource reported with a large size later: must migrate, not
  // duplicate.
  volumes.on_request(request("/a/r.html", 10, 100000,
                             trace::ContentType::kHtml));
  const auto p = volumes.on_request(request("/a/other.html", 20));
  EXPECT_EQ(p.resources.size(), 2u);
  EXPECT_EQ(volumes.volume_size(p.volume), 2u);
}

TEST_F(DirectoryVolumesTest, ServersKeepSeparateVolumes) {
  auto volumes = make(1);
  auto r1 = request("/a/x.html", 0);
  auto r2 = request("/a/x.html", 1);
  r2.server = 7;
  const auto p1 = volumes.on_request(r1);
  const auto p2 = volumes.on_request(r2);
  EXPECT_NE(p1.volume, p2.volume);
}

TEST_F(DirectoryVolumesTest, PeekVolumeDoesNotCreate) {
  auto volumes = make(1);
  EXPECT_EQ(volumes.peek_volume(0, "/a/x.html"), core::kNoVolume);
  volumes.on_request(request("/a/x.html", 0));
  EXPECT_NE(volumes.peek_volume(0, "/a/x.html"), core::kNoVolume);
  EXPECT_EQ(volumes.volume_count(), 1u);
}

TEST_F(DirectoryVolumesTest, DirectoryProbsEmpty) {
  auto volumes = make(1);
  const auto p = volumes.on_request(request("/a/x.html", 0));
  EXPECT_TRUE(p.probs.empty());
  EXPECT_STREQ(volumes.scheme_name(), "directory");
}

TEST_F(DirectoryVolumesTest, RootFilesShareRootVolume) {
  auto volumes = make(1);
  const auto p1 = volumes.on_request(request("/index.html", 0));
  const auto p2 = volumes.on_request(request("/about.html", 1));
  EXPECT_EQ(p1.volume, p2.volume);
}

// Level sweep: deeper prefixes never merge paths that shallower ones split.
class DirectoryLevelTest : public DirectoryVolumesTest,
                           public ::testing::WithParamInterface<int> {};

TEST_P(DirectoryLevelTest, VolumeCountGrowsWithLevel) {
  const int level = GetParam();
  auto shallow = make(level);
  auto deep = make(level + 1);
  const std::vector<std::string> paths = {
      "/a/b/c/one.html", "/a/b/d/two.html", "/a/e/f/three.html",
      "/g/h/i/four.html", "/top.html"};
  for (std::size_t i = 0; i < paths.size(); ++i) {
    shallow.on_request(request(paths[i], static_cast<util::Seconds>(i)));
    deep.on_request(request(paths[i], static_cast<util::Seconds>(i)));
  }
  EXPECT_LE(shallow.volume_count(), deep.volume_count());
}

INSTANTIATE_TEST_SUITE_P(Levels, DirectoryLevelTest,
                         ::testing::Values(0, 1, 2, 3));

}  // namespace
}  // namespace piggyweb::volume

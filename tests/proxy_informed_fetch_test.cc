#include "proxy/informed_fetch.h"

#include <gtest/gtest.h>

namespace piggyweb::proxy {
namespace {

std::vector<PendingFetch> batch(std::initializer_list<std::uint64_t> sizes) {
  std::vector<PendingFetch> fetches;
  std::uint64_t id = 0;
  for (const auto s : sizes) fetches.push_back({id++, s, 0.0});
  return fetches;
}

TEST(InformedFetch, EmptyBatch) {
  const auto result = schedule_fetches({}, 1000.0, FetchDiscipline::kFifo);
  EXPECT_DOUBLE_EQ(result.mean_wait, 0.0);
  EXPECT_TRUE(result.completion_by_id.empty());
}

TEST(InformedFetch, SingleJobNoWait) {
  const auto result = schedule_fetches(batch({5000}), 1000.0,
                                       FetchDiscipline::kFifo);
  EXPECT_DOUBLE_EQ(result.mean_wait, 0.0);
  EXPECT_DOUBLE_EQ(result.mean_completion, 5.0);
}

TEST(InformedFetch, FifoKeepsArrivalOrder) {
  // Big job first: the small one waits behind it under FIFO.
  const auto result = schedule_fetches(batch({10000, 1000}), 1000.0,
                                       FetchDiscipline::kFifo);
  EXPECT_DOUBLE_EQ(result.completion_by_id[0], 10.0);
  EXPECT_DOUBLE_EQ(result.completion_by_id[1], 11.0);
}

TEST(InformedFetch, ShortestFirstReorders) {
  const auto result = schedule_fetches(batch({10000, 1000}), 1000.0,
                                       FetchDiscipline::kShortestFirst);
  EXPECT_DOUBLE_EQ(result.completion_by_id[1], 1.0);
  EXPECT_DOUBLE_EQ(result.completion_by_id[0], 11.0);
}

TEST(InformedFetch, SjfMeanCompletionNeverWorse) {
  // Classic scheduling fact: SJF minimizes mean completion time for
  // simultaneously-arrived jobs. Check over several mixes.
  for (const auto& sizes :
       {batch({100, 200, 300}), batch({5000, 100, 2500, 400}),
        batch({1, 1, 1}), batch({9000, 8000, 50, 60, 70})}) {
    const auto fifo =
        schedule_fetches(sizes, 1000.0, FetchDiscipline::kFifo);
    const auto sjf =
        schedule_fetches(sizes, 1000.0, FetchDiscipline::kShortestFirst);
    EXPECT_LE(sjf.mean_completion, fifo.mean_completion + 1e-9);
  }
}

TEST(InformedFetch, StaggeredArrivalsRespected) {
  std::vector<PendingFetch> fetches = {
      {0, 1000, 0.0},   // runs 0-1
      {1, 1000, 10.0},  // link idle 1-10, runs 10-11
  };
  const auto result =
      schedule_fetches(fetches, 1000.0, FetchDiscipline::kFifo);
  EXPECT_DOUBLE_EQ(result.completion_by_id[0], 1.0);
  EXPECT_DOUBLE_EQ(result.completion_by_id[1], 1.0);  // no queueing
  EXPECT_DOUBLE_EQ(result.mean_wait, 0.0);
}

TEST(InformedFetch, NonPreemptive) {
  // A short job arriving during a long transfer waits for it to finish.
  std::vector<PendingFetch> fetches = {
      {0, 10000, 0.0},  // runs 0-10
      {1, 100, 1.0},    // arrives at 1, starts at 10
  };
  const auto result =
      schedule_fetches(fetches, 1000.0, FetchDiscipline::kShortestFirst);
  EXPECT_DOUBLE_EQ(result.completion_by_id[1], 9.1);  // 10.1 - 1.0
}

TEST(InformedFetch, MaxCompletionTracked) {
  const auto result = schedule_fetches(batch({1000, 2000}), 1000.0,
                                       FetchDiscipline::kFifo);
  EXPECT_DOUBLE_EQ(result.max_completion, 3.0);
}

TEST(InformedFetch, DisciplineNames) {
  EXPECT_STREQ(discipline_name(FetchDiscipline::kFifo), "fifo");
  EXPECT_STREQ(discipline_name(FetchDiscipline::kShortestFirst),
               "shortest-first");
}

}  // namespace
}  // namespace piggyweb::proxy

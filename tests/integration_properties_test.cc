// Property-style parameterized sweeps over the protocol invariants: for
// many (scheme, filter, workload) combinations, the structural guarantees
// of the piggybacking protocol must hold.
#include <gtest/gtest.h>

#include "core/wire_size.h"
#include "server/meta.h"
#include "sim/prediction_eval.h"
#include "trace/profiles.h"
#include "volume/directory.h"
#include "volume/pair_counter.h"
#include "volume/probability.h"

namespace piggyweb {
namespace {

struct SweepParam {
  const char* name;
  int directory_level;     // -1 = probability volumes
  std::uint32_t max_elements;
  std::uint32_t access_filter;
  bool use_rpv;
  util::Seconds min_interval;
};

std::ostream& operator<<(std::ostream& os, const SweepParam& p) {
  return os << p.name;
}

class ProtocolSweep : public ::testing::TestWithParam<SweepParam> {
 protected:
  static const trace::SyntheticWorkload& workload() {
    static const trace::SyntheticWorkload w =
        trace::generate(trace::apache_profile(0.004));
    return w;
  }

  // A recording provider wrapper would complicate things; instead the
  // invariants below are checked from the EvalResult totals plus scheme
  // construction rules tested elsewhere.
  sim::EvalResult run(const SweepParam& p) {
    server::TraceMetaOracle meta(workload().trace);
    sim::EvalConfig config;
    config.filter.max_elements = p.max_elements;
    config.filter.min_access_count = p.access_filter;
    config.use_rpv = p.use_rpv;
    config.min_piggyback_interval = p.min_interval;

    if (p.directory_level >= 0) {
      volume::DirectoryVolumeConfig dvc;
      dvc.level = p.directory_level;
      volume::DirectoryVolumes volumes(dvc);
      volumes.bind_paths(workload().trace.paths());
      return sim::PredictionEvaluator(config).run(workload().trace, volumes,
                                                  meta);
    }
    volume::PairCounterConfig pcc;
    const auto counts =
        volume::PairCounterBuilder(pcc).build(workload().trace, 10);
    volume::ProbabilityVolumeConfig pvc;
    pvc.probability_threshold = 0.2;
    const auto set =
        volume::build_probability_volumes(workload().trace, counts, pvc);
    volume::ProbabilityVolumes provider(&set, 200);
    return sim::PredictionEvaluator(config).run(workload().trace, provider,
                                                meta);
  }
};

TEST_P(ProtocolSweep, MetricsAreWellFormed) {
  const auto result = run(GetParam());
  EXPECT_EQ(result.requests, workload().trace.size());
  // All fractions in [0, 1].
  EXPECT_GE(result.fraction_predicted(), 0.0);
  EXPECT_LE(result.fraction_predicted(), 1.0);
  EXPECT_GE(result.true_prediction_fraction(), 0.0);
  EXPECT_LE(result.true_prediction_fraction(), 1.0);
  EXPECT_GE(result.update_fraction(), 0.0);
  EXPECT_LE(result.update_fraction(), 1.0);
  // Counter sanity.
  EXPECT_LE(result.predicted_requests, result.requests);
  EXPECT_LE(result.predictions_true, result.predictions_made);
  EXPECT_LE(result.piggyback_messages, result.requests);
  EXPECT_LE(result.prev_occurrence_within_window,
            result.prev_occurrence_within_horizon);
  EXPECT_LE(result.updated_by_piggyback, result.predicted_requests);
}

TEST_P(ProtocolSweep, MaxElementsIsRespectedOnAverage) {
  const auto& p = GetParam();
  const auto result = run(p);
  if (result.piggyback_messages > 0) {
    EXPECT_LE(result.avg_piggyback_size(),
              static_cast<double>(p.max_elements) + 1e-9);
  }
}

TEST_P(ProtocolSweep, PiggybackElementsImplyMessages) {
  const auto result = run(GetParam());
  if (result.piggyback_elements > 0) {
    EXPECT_GT(result.piggyback_messages, 0u);
    // Every message carries at least one element (empty ones are never
    // sent).
    EXPECT_GE(result.piggyback_elements, result.piggyback_messages);
  }
}

TEST_P(ProtocolSweep, PredictionsRequireMessages) {
  const auto result = run(GetParam());
  if (result.piggyback_messages == 0) {
    EXPECT_EQ(result.predicted_requests, 0u);
    EXPECT_EQ(result.predictions_made, 0u);
  }
  EXPECT_LE(result.predictions_made, result.piggyback_elements);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ProtocolSweep,
    ::testing::Values(
        SweepParam{"dir0_loose", 0, 100, 1, false, 0},
        SweepParam{"dir1_filter10", 1, 50, 10, false, 0},
        SweepParam{"dir1_filter50_rpv", 1, 50, 50, true, 0},
        SweepParam{"dir2_tiny", 2, 5, 10, false, 0},
        SweepParam{"dir1_throttled", 1, 20, 10, false, 60},
        SweepParam{"dir1_maxpiggy1", 1, 1, 1, false, 0},
        SweepParam{"prob_pt02", -1, 50, 0, false, 0},
        SweepParam{"prob_rpv", -1, 20, 0, true, 0},
        SweepParam{"prob_throttled", -1, 10, 0, false, 30}),
    [](const auto& param_info) { return std::string(param_info.param.name); });

// Wire-size property: encoded piggyback sizes follow the §2.3 element
// arithmetic for arbitrary messages.
class WireSizeProperty : public ::testing::TestWithParam<int> {};

TEST_P(WireSizeProperty, BytesMatchElementArithmetic) {
  util::InternTable paths;
  core::PiggybackMessage message;
  message.volume = 1;
  std::uint64_t expected = core::kVolumeIdBytes;
  for (int i = 0; i < GetParam(); ++i) {
    const std::string url = "/dir" + std::to_string(i % 7) + "/res" +
                            std::to_string(i) + ".html";
    message.elements.push_back(
        {paths.intern(url), static_cast<std::uint64_t>(i * 100), 875000000});
    expected += url.size() + core::kLastModifiedBytes + core::kSizeBytes;
  }
  EXPECT_EQ(core::piggyback_bytes(message, paths), expected);
}

INSTANTIATE_TEST_SUITE_P(Sizes, WireSizeProperty,
                         ::testing::Values(1, 2, 5, 10, 50, 200));

}  // namespace
}  // namespace piggyweb

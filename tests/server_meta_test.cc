#include "server/meta.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace piggyweb::server {
namespace {

TEST(TraceMetaOracle, LearnsFromTrace) {
  trace::Trace t;
  t.add({0}, "c1", "svr", "/a.html", trace::Method::kGet, 200, 1000, 500);
  t.add({10}, "c2", "svr", "/a.html", trace::Method::kGet, 200, 1000, 600);
  t.add({20}, "c1", "svr", "/b.gif", trace::Method::kGet, 200, 64, -1);
  const TraceMetaOracle meta(t);

  const auto server = *t.servers().find("svr");
  const auto a = meta.lookup(server, *t.paths().find("/a.html"));
  EXPECT_EQ(a.access_count, 2u);
  EXPECT_EQ(a.size, 1000u);
  EXPECT_EQ(a.last_modified, 600);  // the newest observed LM
  EXPECT_EQ(a.type, trace::ContentType::kHtml);

  const auto b = meta.lookup(server, *t.paths().find("/b.gif"));
  EXPECT_EQ(b.access_count, 1u);
  EXPECT_EQ(b.type, trace::ContentType::kImage);
}

TEST(TraceMetaOracle, SizeIsLargestObserved200) {
  trace::Trace t;
  t.add({0}, "c", "svr", "/a", trace::Method::kGet, 200, 500);
  t.add({1}, "c", "svr", "/a", trace::Method::kGet, 304, 0);
  t.add({2}, "c", "svr", "/a", trace::Method::kGet, 200, 700);
  const TraceMetaOracle meta(t);
  const auto a =
      meta.lookup(*t.servers().find("svr"), *t.paths().find("/a"));
  EXPECT_EQ(a.size, 700u);
  EXPECT_EQ(a.access_count, 3u);
}

TEST(TraceMetaOracle, UnknownResourceIsZero) {
  trace::Trace t;
  t.add({0}, "c", "svr", "/a");
  const TraceMetaOracle meta(t);
  const auto missing = meta.lookup(0, 999);
  EXPECT_EQ(missing.access_count, 0u);
  EXPECT_EQ(missing.size, 0u);
}

TEST(TraceMetaOracle, KeysSeparateServers) {
  trace::Trace t;
  t.add({0}, "c", "s1", "/a", trace::Method::kGet, 200, 100);
  t.add({1}, "c", "s2", "/a", trace::Method::kGet, 200, 200);
  const TraceMetaOracle meta(t);
  const auto path = *t.paths().find("/a");
  EXPECT_EQ(meta.lookup(*t.servers().find("s1"), path).size, 100u);
  EXPECT_EQ(meta.lookup(*t.servers().find("s2"), path).size, 200u);
}

TEST(SiteMetaOracle, ReadsGroundTruth) {
  util::Rng rng(5);
  trace::SiteShape shape;
  shape.pages = 20;
  const trace::SiteModel site(shape, util::kDay, rng);
  util::InternTable paths;
  SiteMetaOracle meta(site, paths);
  meta.set_now({1000});

  const auto& res = site.resource(0);
  const auto id = paths.intern(res.path);
  const auto looked = meta.lookup(0, id);
  EXPECT_EQ(looked.size, res.size);
  EXPECT_EQ(looked.type, res.type);
  EXPECT_EQ(looked.last_modified, site.last_modified(0, {1000}).value);
  EXPECT_EQ(looked.access_count, 0u);
}

TEST(SiteMetaOracle, CountsAccesses) {
  util::Rng rng(6);
  trace::SiteShape shape;
  shape.pages = 5;
  const trace::SiteModel site(shape, util::kDay, rng);
  util::InternTable paths;
  SiteMetaOracle meta(site, paths);
  const auto id = paths.intern(site.resource(0).path);
  meta.note_access(id);
  meta.note_access(id);
  EXPECT_EQ(meta.lookup(0, id).access_count, 2u);
}

TEST(SiteMetaOracle, UnknownPathIsEmptyMeta) {
  util::Rng rng(7);
  trace::SiteShape shape;
  shape.pages = 5;
  const trace::SiteModel site(shape, util::kDay, rng);
  util::InternTable paths;
  SiteMetaOracle meta(site, paths);
  const auto id = paths.intern("/not/on/site.html");
  EXPECT_EQ(meta.lookup(0, id).size, 0u);
}

}  // namespace
}  // namespace piggyweb::server

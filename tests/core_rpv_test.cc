#include "core/rpv.h"

#include <gtest/gtest.h>

namespace piggyweb::core {
namespace {

RpvConfig config(util::Seconds timeout = 60, std::size_t max = 4) {
  RpvConfig c;
  c.timeout = timeout;
  c.max_entries = max;
  return c;
}

TEST(RpvList, NoteAndLive) {
  RpvList list(config());
  list.note(3, {100});
  list.note(4, {110});
  const auto live = list.live({120});
  ASSERT_EQ(live.size(), 2u);
  EXPECT_EQ(live[0], 3u);
  EXPECT_EQ(live[1], 4u);
}

TEST(RpvList, EntriesExpireAfterTimeout) {
  RpvList list(config(60));
  list.note(1, {100});
  EXPECT_TRUE(list.contains(1, {160}));   // exactly at timeout: still live
  EXPECT_FALSE(list.contains(1, {161}));  // one past: expired
  EXPECT_TRUE(list.live({161}).empty());
}

TEST(RpvList, RefreshMovesToBack) {
  RpvList list(config());
  list.note(1, {100});
  list.note(2, {101});
  list.note(1, {102});  // refresh
  const auto live = list.live({103});
  ASSERT_EQ(live.size(), 2u);
  EXPECT_EQ(live[0], 2u);
  EXPECT_EQ(live[1], 1u);
}

TEST(RpvList, MaxEntriesEvictsOldest) {
  RpvList list(config(600, 3));
  for (VolumeId v = 0; v < 5; ++v) {
    list.note(v, {100 + static_cast<util::Seconds>(v)});
  }
  const auto live = list.live({110});
  ASSERT_EQ(live.size(), 3u);
  EXPECT_EQ(live[0], 2u);
  EXPECT_EQ(live[1], 3u);
  EXPECT_EQ(live[2], 4u);
}

TEST(RpvList, MixedExpiry) {
  RpvList list(config(60));
  list.note(1, {0});
  list.note(2, {50});
  const auto live = list.live({70});  // 1 expired, 2 alive
  ASSERT_EQ(live.size(), 1u);
  EXPECT_EQ(live[0], 2u);
}

TEST(RpvList, ContainsChecksSpecificVolume) {
  RpvList list(config());
  list.note(7, {10});
  EXPECT_TRUE(list.contains(7, {20}));
  EXPECT_FALSE(list.contains(8, {20}));
}

TEST(RpvTable, IndependentPerServer) {
  RpvTable table(config());
  table.note(/*server=*/1, /*volume=*/10, {100});
  table.note(/*server=*/2, /*volume=*/20, {100});
  const auto s1 = table.live(1, {110});
  const auto s2 = table.live(2, {110});
  ASSERT_EQ(s1.size(), 1u);
  EXPECT_EQ(s1[0], 10u);
  ASSERT_EQ(s2.size(), 1u);
  EXPECT_EQ(s2[0], 20u);
}

TEST(RpvTable, UnknownServerIsEmpty) {
  RpvTable table(config());
  EXPECT_TRUE(table.live(42, {0}).empty());
}

TEST(RpvTable, BoundsTrackedServers) {
  RpvTable table(config(), /*max_servers=*/3);
  for (util::InternId server = 0; server < 10; ++server) {
    table.note(server, 1, {100});
  }
  EXPECT_LE(table.tracked_servers(), 3u);
  // The most recently used server survives.
  const auto live = table.live(9, {101});
  ASSERT_EQ(live.size(), 1u);
}

TEST(RpvTable, TimeoutAppliesPerServer) {
  RpvTable table(config(30));
  table.note(1, 5, {100});
  const auto live = table.live(1, {130});  // exactly at the timeout
  ASSERT_EQ(live.size(), 1u);
  EXPECT_EQ(live[0], 5u);
  EXPECT_TRUE(table.live(1, {131}).empty());
}

}  // namespace
}  // namespace piggyweb::core

// Cross-module pipeline integration: synthetic workload -> pair counters
// -> probability volumes -> evaluator, and the directory pipeline beside
// it, asserting the paper's qualitative relationships hold end to end.
#include <gtest/gtest.h>

#include "server/meta.h"
#include "sim/prediction_eval.h"
#include "trace/profiles.h"
#include "volume/directory.h"
#include "volume/pair_counter.h"
#include "volume/probability.h"

namespace piggyweb {
namespace {

const trace::SyntheticWorkload& workload() {
  static const trace::SyntheticWorkload w =
      trace::generate(trace::aiusa_profile(0.08));
  return w;
}

sim::EvalResult eval_directory(int level, std::uint32_t access_filter,
                               bool use_rpv = false,
                               util::Seconds rpv_timeout = 30) {
  volume::DirectoryVolumeConfig dvc;
  dvc.level = level;
  volume::DirectoryVolumes volumes(dvc);
  volumes.bind_paths(workload().trace.paths());
  server::TraceMetaOracle meta(workload().trace);
  sim::EvalConfig config;
  config.filter.min_access_count = access_filter;
  config.use_rpv = use_rpv;
  config.rpv.timeout = rpv_timeout;
  return sim::PredictionEvaluator(config).run(workload().trace, volumes,
                                              meta);
}

sim::EvalResult eval_probability(double pt, double eff_threshold) {
  volume::PairCounterConfig pcc;
  const auto counts =
      volume::PairCounterBuilder(pcc).build(workload().trace, 10);
  volume::ProbabilityVolumeConfig pvc;
  pvc.probability_threshold = pt;
  pvc.effectiveness_threshold = eff_threshold;
  const auto set =
      volume::build_probability_volumes(workload().trace, counts, pvc);
  volume::ProbabilityVolumes provider(&set, 200);
  server::TraceMetaOracle meta(workload().trace);
  sim::EvalConfig config;
  return sim::PredictionEvaluator(config).run(workload().trace, provider,
                                              meta);
}

TEST(Pipeline, DirectoryVolumesPredictMeaningfully) {
  const auto result = eval_directory(1, 10);
  EXPECT_GT(result.fraction_predicted(), 0.3);
  EXPECT_GT(result.avg_piggyback_size(), 1.0);
}

TEST(Pipeline, DeeperLevelsShrinkPiggybacks) {
  // Figure 2's main effect: deeper prefixes -> smaller piggybacks.
  const auto l0 = eval_directory(0, 10);
  const auto l1 = eval_directory(1, 10);
  const auto l2 = eval_directory(2, 10);
  EXPECT_GT(l0.avg_piggyback_size(), l1.avg_piggyback_size());
  EXPECT_GE(l1.avg_piggyback_size(), l2.avg_piggyback_size());
}

TEST(Pipeline, AccessFilterShrinksPiggybacks) {
  const auto loose = eval_directory(1, 1);
  const auto tight = eval_directory(1, 50);
  EXPECT_GT(loose.avg_piggyback_size(), tight.avg_piggyback_size());
  // Aggressive filtering must not destroy the prediction rate (§3.2.2).
  // (A count-50 filter on this scaled-down trace is proportionally far
  // more aggressive than on the paper's multi-million-request logs.)
  EXPECT_GT(tight.fraction_predicted(),
            loose.fraction_predicted() * 0.35);
}

TEST(Pipeline, RpvCutsTrafficNotRecall) {
  // Figure 4: RPV slashes piggyback traffic with little recall loss.
  const auto without = eval_directory(1, 10, /*use_rpv=*/false);
  const auto with = eval_directory(1, 10, /*use_rpv=*/true, 30);
  EXPECT_LT(with.elements_per_request(),
            without.elements_per_request() * 0.9);
  EXPECT_GT(with.fraction_predicted(),
            without.fraction_predicted() * 0.8);
}

TEST(Pipeline, ProbabilityBeatsDirectoryAtSameSize) {
  // Figure 6 vs Figure 3: probability volumes reach a given recall with
  // smaller piggybacks — compare precision at comparable recall instead
  // of hand-picking sizes.
  const auto directory = eval_directory(1, 10);
  const auto probability = eval_probability(0.2, 0.0);
  EXPECT_LT(probability.avg_piggyback_size(),
            directory.avg_piggyback_size());
  EXPECT_GT(probability.true_prediction_fraction(),
            directory.true_prediction_fraction());
}

TEST(Pipeline, HigherThresholdRaisesPrecisionShrinksRecall) {
  const auto loose = eval_probability(0.1, 0.0);
  const auto tight = eval_probability(0.5, 0.0);
  EXPECT_GE(loose.fraction_predicted(), tight.fraction_predicted());
  EXPECT_LE(loose.true_prediction_fraction(),
            tight.true_prediction_fraction() + 0.05);
  EXPECT_GT(loose.avg_piggyback_size(), tight.avg_piggyback_size());
}

TEST(Pipeline, ThinningShrinksPiggybacksKeepsRecall) {
  // §3.3.2: effectiveness thinning cuts piggyback size without reducing
  // the prediction rate much.
  const auto base = eval_probability(0.2, 0.0);
  const auto thinned = eval_probability(0.2, 0.2);
  EXPECT_LE(thinned.avg_piggyback_size(), base.avg_piggyback_size());
  EXPECT_GT(thinned.fraction_predicted(),
            base.fraction_predicted() * 0.7);
}

TEST(Pipeline, MarimbaPredictsPoorly) {
  // Appendix A: the POST-dominated Marimba log yields poor predictions.
  const auto marimba = trace::generate(trace::marimba_profile(0.05));
  volume::PairCounterConfig pcc;
  const auto counts = volume::PairCounterBuilder(pcc).build(marimba.trace, 10);
  volume::ProbabilityVolumeConfig pvc;
  pvc.probability_threshold = 0.25;
  const auto set =
      volume::build_probability_volumes(marimba.trace, counts, pvc);
  volume::ProbabilityVolumes provider(&set, 200);
  server::TraceMetaOracle meta(marimba.trace);
  sim::EvalConfig config;
  const auto result =
      sim::PredictionEvaluator(config).run(marimba.trace, provider, meta);

  const auto aiusa = eval_probability(0.25, 0.0);
  EXPECT_LT(result.fraction_predicted(), aiusa.fraction_predicted());
}

}  // namespace
}  // namespace piggyweb

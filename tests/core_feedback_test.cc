#include "core/feedback.h"

#include <gtest/gtest.h>

namespace piggyweb::core {
namespace {

PiggybackMessage message(VolumeId volume,
                         std::initializer_list<util::InternId> resources) {
  PiggybackMessage m;
  m.volume = volume;
  for (const auto r : resources) m.elements.push_back({r, 0, 0});
  return m;
}

TEST(HitFeedback, AttributesHitsToVolumes) {
  HitFeedback feedback;
  feedback.note_piggyback(1, message(3, {10, 11}));
  feedback.note_cache_hit(1, 10);
  feedback.note_cache_hit(1, 10);
  feedback.note_cache_hit(1, 11);
  const auto drained = feedback.drain(1);
  ASSERT_EQ(drained.size(), 1u);
  EXPECT_EQ(drained[0].volume, 3u);
  EXPECT_EQ(drained[0].hits, 3u);
}

TEST(HitFeedback, UnattributedHitsIgnored) {
  HitFeedback feedback;
  feedback.note_piggyback(1, message(3, {10}));
  feedback.note_cache_hit(1, 99);  // never piggybacked
  EXPECT_TRUE(feedback.drain(1).empty());
}

TEST(HitFeedback, DrainClearsTallies) {
  HitFeedback feedback;
  feedback.note_piggyback(1, message(3, {10}));
  feedback.note_cache_hit(1, 10);
  EXPECT_EQ(feedback.drain(1).size(), 1u);
  EXPECT_TRUE(feedback.drain(1).empty());
  // Attribution survives the drain: later hits still count.
  feedback.note_cache_hit(1, 10);
  EXPECT_EQ(feedback.drain(1).size(), 1u);
}

TEST(HitFeedback, ServersIndependent) {
  HitFeedback feedback;
  feedback.note_piggyback(1, message(3, {10}));
  feedback.note_piggyback(2, message(5, {10}));
  feedback.note_cache_hit(1, 10);
  const auto s1 = feedback.drain(1);
  ASSERT_EQ(s1.size(), 1u);
  EXPECT_EQ(s1[0].volume, 3u);
  EXPECT_TRUE(feedback.drain(2).empty());
}

TEST(HitFeedback, NewestAttributionWins) {
  HitFeedback feedback;
  feedback.note_piggyback(1, message(3, {10}));
  feedback.note_piggyback(1, message(7, {10}));  // moved volumes
  feedback.note_cache_hit(1, 10);
  const auto drained = feedback.drain(1);
  ASSERT_EQ(drained.size(), 1u);
  EXPECT_EQ(drained[0].volume, 7u);
}

TEST(HitFeedback, MultipleVolumesSortedById) {
  HitFeedback feedback;
  feedback.note_piggyback(1, message(9, {20}));
  feedback.note_piggyback(1, message(2, {10}));
  feedback.note_cache_hit(1, 20);
  feedback.note_cache_hit(1, 10);
  const auto drained = feedback.drain(1);
  ASSERT_EQ(drained.size(), 2u);
  EXPECT_EQ(drained[0].volume, 2u);
  EXPECT_EQ(drained[1].volume, 9u);
}

TEST(HitFeedback, AttributionMemoryBounded) {
  HitFeedback feedback(/*max_attributions_per_server=*/2);
  feedback.note_piggyback(1, message(3, {10}));
  feedback.note_piggyback(1, message(3, {11}));
  feedback.note_piggyback(1, message(3, {12}));  // evicts 10
  feedback.note_cache_hit(1, 10);                // forgotten
  feedback.note_cache_hit(1, 12);
  const auto drained = feedback.drain(1);
  ASSERT_EQ(drained.size(), 1u);
  EXPECT_EQ(drained[0].hits, 1u);
}

TEST(FeedbackCollector, AggregatesAcrossReports) {
  FeedbackCollector collector;
  collector.ingest({{3, 5}, {7, 2}});
  collector.ingest({{3, 1}});
  EXPECT_EQ(collector.hits_for(3), 6u);
  EXPECT_EQ(collector.hits_for(7), 2u);
  EXPECT_EQ(collector.hits_for(99), 0u);
  EXPECT_EQ(collector.total_hits(), 8u);
}

TEST(FeedbackCollector, RankedByUsefulness) {
  FeedbackCollector collector;
  collector.ingest({{1, 2}, {2, 9}, {3, 2}});
  const auto ranked = collector.ranked();
  ASSERT_EQ(ranked.size(), 3u);
  EXPECT_EQ(ranked[0].volume, 2u);
  EXPECT_EQ(ranked[1].volume, 1u);  // tie with 3, lower id first
  EXPECT_EQ(ranked[2].volume, 3u);
}

}  // namespace
}  // namespace piggyweb::core

#include "trace/log_stats.h"

#include <gtest/gtest.h>

#include "trace/profiles.h"

namespace piggyweb::trace {
namespace {

TEST(LogStats, EmptyTrace) {
  Trace trace;
  const auto stats = compute_log_stats(trace);
  EXPECT_EQ(stats.requests, 0u);
  EXPECT_EQ(stats.unique_resources, 0u);
  EXPECT_DOUBLE_EQ(stats.requests_per_source, 0.0);
}

TEST(LogStats, BasicCounts) {
  Trace trace;
  trace.add({0}, "c1", "s", "/a", Method::kGet, 200, 100);
  trace.add({1}, "c1", "s", "/b", Method::kGet, 200, 300);
  trace.add({2}, "c2", "s", "/a", Method::kGet, 304, 0);
  trace.add({3}, "c2", "s", "/a", Method::kPost, 200, 50);
  const auto stats = compute_log_stats(trace);
  EXPECT_EQ(stats.requests, 4u);
  EXPECT_EQ(stats.distinct_sources, 2u);
  EXPECT_EQ(stats.distinct_servers, 1u);
  EXPECT_EQ(stats.unique_resources, 2u);
  EXPECT_DOUBLE_EQ(stats.requests_per_source, 2.0);
  EXPECT_DOUBLE_EQ(stats.not_modified_fraction, 0.25);
  EXPECT_DOUBLE_EQ(stats.post_fraction, 0.25);
  EXPECT_EQ(stats.span, 3);
}

TEST(LogStats, ResponseSizeMoments) {
  Trace trace;
  trace.add({0}, "c", "s", "/a", Method::kGet, 200, 100);
  trace.add({1}, "c", "s", "/b", Method::kGet, 200, 200);
  trace.add({2}, "c", "s", "/c", Method::kGet, 200, 900);
  trace.add({3}, "c", "s", "/a", Method::kGet, 304, 0);  // excluded
  const auto stats = compute_log_stats(trace);
  EXPECT_DOUBLE_EQ(stats.mean_response_size, 400.0);
  EXPECT_DOUBLE_EQ(stats.median_response_size, 200.0);
}

TEST(LogStats, SkewMetricsOnSyntheticLog) {
  const auto workload = generate(aiusa_profile(0.05));
  const auto stats = compute_log_stats(workload.trace);
  // Zipf popularity: the top 10% of resources take a disproportionate
  // share of requests (10% would be the uniform baseline).
  EXPECT_GT(stats.top10pct_resource_share, 0.25);
  // Heavy per-client skew.
  EXPECT_GT(stats.top10pct_source_share, 0.2);
  // Heavy-tailed sizes: mean well above median.
  EXPECT_GT(stats.mean_response_size, stats.median_response_size);
}

TEST(LogStats, ServersForHalfAccessesOnClientTrace) {
  const auto workload = generate(att_client_profile(0.004));
  const auto stats = compute_log_stats(workload.trace);
  EXPECT_GT(stats.distinct_servers, 1u);
  // Site popularity is Zipf: far fewer than half the servers cover half
  // the accesses.
  EXPECT_GT(stats.servers_for_half_accesses, 0.0);
  EXPECT_LT(stats.servers_for_half_accesses, 0.4);
}

TEST(LogStats, RowFormatting) {
  Trace trace;
  trace.add({0}, "c", "s", "/a", Method::kGet, 200, 10);
  const auto stats = compute_log_stats(trace);
  const auto server_row = format_server_log_row("test", stats);
  EXPECT_NE(server_row.find("test"), std::string::npos);
  EXPECT_NE(server_row.find('1'), std::string::npos);
  const auto client_row = format_client_log_row("test", stats);
  EXPECT_NE(client_row.find("test"), std::string::npos);
}

}  // namespace
}  // namespace piggyweb::trace

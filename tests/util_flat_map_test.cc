#include "util/flat_map.h"

#include <algorithm>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "util/arena.h"
#include "util/intern.h"
#include "util/rng.h"

namespace piggyweb::util {
namespace {

TEST(FlatMap, EmptyMap) {
  FlatMap<std::uint64_t, int> map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.size(), 0u);
  EXPECT_EQ(map.find(0), map.end());
  EXPECT_EQ(map.find(~0ULL), map.end());
  EXPECT_FALSE(map.contains(42));
  EXPECT_EQ(map.erase(42), 0u);
  EXPECT_EQ(map.begin(), map.end());
}

TEST(FlatMap, InsertFindErase) {
  FlatMap<std::uint64_t, std::string> map;
  EXPECT_TRUE(map.try_emplace(1, "one").second);
  EXPECT_FALSE(map.try_emplace(1, "uno").second);
  EXPECT_EQ(map.at(1), "one");
  map[2] = "two";
  EXPECT_EQ(map.size(), 2u);
  EXPECT_EQ(map.find(2)->second, "two");
  EXPECT_EQ(map.erase(1), 1u);
  EXPECT_EQ(map.erase(1), 0u);
  EXPECT_FALSE(map.contains(1));
  EXPECT_EQ(map.at(2), "two");
}

TEST(FlatMap, OperatorBracketDefaultConstructs) {
  FlatMap<std::uint32_t, std::uint64_t> map;
  EXPECT_EQ(map[7], 0u);
  map[7] += 3;
  map[7] += 4;
  EXPECT_EQ(map.at(7), 7u);
}

TEST(FlatMap, ZeroKeyAndMaxKeyAreValid) {
  FlatMap<std::uint64_t, int> map;
  map[0] = 10;
  map[~0ULL] = 20;
  EXPECT_EQ(map.at(0), 10);
  EXPECT_EQ(map.at(~0ULL), 20);
  EXPECT_EQ(map.size(), 2u);
  EXPECT_EQ(map.erase(0), 1u);
  EXPECT_EQ(map.at(~0ULL), 20);
}

TEST(FlatMap, GrowthPreservesContents) {
  FlatMap<std::uint32_t, std::uint32_t> map;
  for (std::uint32_t i = 0; i < 10000; ++i) map[i] = i * 3;
  EXPECT_EQ(map.size(), 10000u);
  for (std::uint32_t i = 0; i < 10000; ++i) {
    ASSERT_EQ(map.at(i), i * 3) << i;
  }
}

TEST(FlatMap, ClearKeepsCapacityAndEmpties) {
  FlatMap<std::uint64_t, int> map;
  for (std::uint64_t i = 0; i < 100; ++i) map[i] = 1;
  const auto buckets = map.bucket_count();
  map.clear();
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.bucket_count(), buckets);
  EXPECT_EQ(map.begin(), map.end());
  for (std::uint64_t i = 0; i < 100; ++i) EXPECT_FALSE(map.contains(i));
  map[5] = 7;
  EXPECT_EQ(map.at(5), 7);
}

TEST(FlatMap, ReserveAvoidsRehash) {
  FlatMap<std::uint64_t, int> map;
  map.reserve(1000);
  const auto buckets = map.bucket_count();
  for (std::uint64_t i = 0; i < 1000; ++i) map[i] = 1;
  EXPECT_EQ(map.bucket_count(), buckets);
}

TEST(FlatMap, IterationVisitsEveryElementOnce) {
  FlatMap<std::uint64_t, std::uint64_t> map;
  std::uint64_t expected_sum = 0;
  for (std::uint64_t i = 1; i <= 500; ++i) {
    map[i * 977] = i;
    expected_sum += i;
  }
  std::uint64_t sum = 0;
  std::size_t n = 0;
  for (const auto& [key, value] : map) {
    EXPECT_EQ(map.at(key), value);
    sum += value;
    ++n;
  }
  EXPECT_EQ(n, 500u);
  EXPECT_EQ(sum, expected_sum);
}

TEST(FlatMap, EraseByIterator) {
  FlatMap<std::uint64_t, int> map;
  for (std::uint64_t i = 0; i < 64; ++i) map[i] = static_cast<int>(i);
  auto it = map.find(17);
  ASSERT_NE(it, map.end());
  map.erase(it);
  EXPECT_EQ(map.size(), 63u);
  EXPECT_FALSE(map.contains(17));
  for (std::uint64_t i = 0; i < 64; ++i) {
    if (i != 17) {
      ASSERT_TRUE(map.contains(i)) << i;
    }
  }
}

TEST(FlatMap, CopyAndMoveSemantics) {
  FlatMap<std::uint64_t, std::string> map;
  map[1] = "a";
  map[2] = "b";

  FlatMap<std::uint64_t, std::string> copy(map);
  EXPECT_EQ(copy.size(), 2u);
  EXPECT_EQ(copy.at(1), "a");
  copy[3] = "c";
  EXPECT_FALSE(map.contains(3));  // deep copy

  FlatMap<std::uint64_t, std::string> moved(std::move(copy));
  EXPECT_EQ(moved.size(), 3u);
  EXPECT_EQ(moved.at(3), "c");

  FlatMap<std::uint64_t, std::string> assigned;
  assigned[9] = "old";
  assigned = map;
  EXPECT_EQ(assigned.size(), 2u);
  EXPECT_FALSE(assigned.contains(9));

  FlatMap<std::uint64_t, std::string> move_assigned;
  move_assigned = std::move(moved);
  EXPECT_EQ(move_assigned.size(), 3u);
  EXPECT_EQ(move_assigned.at(2), "b");
}

TEST(FlatMap, NonDefaultConstructibleValues) {
  struct NoDefault {
    explicit NoDefault(int x) : value(x) {}
    int value;
  };
  FlatMap<std::uint32_t, NoDefault> map;
  map.try_emplace(1, 42);
  map.try_emplace(2, 43);
  EXPECT_EQ(map.at(1).value, 42);
  EXPECT_EQ(map.at(2).value, 43);
  EXPECT_EQ(map.erase(1), 1u);
  EXPECT_EQ(map.at(2).value, 43);
}

// Backward-shift deletion edge case: a probe chain that wraps around the
// end of the table must stay reachable after erasing a member in the
// middle. Keys are crafted by brute force to share a home slot near the
// top of the minimum-capacity table.
TEST(FlatMap, BackwardShiftAcrossWraparound) {
  // Find keys whose home slot (in a 16-slot table) is 15, so their probe
  // chains wrap to slot 0.
  std::vector<std::uint64_t> colliders;
  for (std::uint64_t k = 0; colliders.size() < 5 && k < 2'000'000; ++k) {
    if ((mix64(k) & 15u) == 15u) colliders.push_back(k);
  }
  ASSERT_EQ(colliders.size(), 5u);

  FlatMap<std::uint64_t, std::uint64_t> map;
  for (const auto k : colliders) map[k] = k + 1;
  ASSERT_EQ(map.bucket_count(), 16u) << "test assumes min capacity 16";

  // Erase the chain head; the wrapped members must shift back and stay
  // findable.
  EXPECT_EQ(map.erase(colliders[0]), 1u);
  for (std::size_t i = 1; i < colliders.size(); ++i) {
    ASSERT_TRUE(map.contains(colliders[i])) << i;
    EXPECT_EQ(map.at(colliders[i]), colliders[i] + 1);
  }
  // Erase a middle member too.
  EXPECT_EQ(map.erase(colliders[2]), 1u);
  EXPECT_TRUE(map.contains(colliders[1]));
  EXPECT_TRUE(map.contains(colliders[3]));
  EXPECT_TRUE(map.contains(colliders[4]));
}

// The core correctness pin: a long randomized mixed workload must keep
// FlatMap and std::unordered_map in exact agreement, including under
// heavy erase churn (which exercises backward shift constantly).
TEST(FlatMap, RandomizedDifferentialAgainstUnorderedMap) {
  Rng rng(0xF1A7F1A7ULL);
  FlatMap<std::uint64_t, std::uint64_t> flat;
  std::unordered_map<std::uint64_t, std::uint64_t> ref;

  // Small key space forces constant collisions, overwrites, and erases of
  // present keys; mixed with occasional huge keys for sparse probes.
  const auto random_key = [&rng]() -> std::uint64_t {
    return rng.chance(0.9) ? rng.below(512) : rng();
  };

  for (int op = 0; op < 200000; ++op) {
    const auto key = random_key();
    const auto roll = rng.uniform();
    if (roll < 0.40) {
      const auto value = rng();
      flat[key] = value;
      ref[key] = value;
    } else if (roll < 0.55) {
      flat[key] += 1;
      ref[key] += 1;
    } else if (roll < 0.70) {
      const auto inserted_flat = flat.try_emplace(key, op).second;
      const auto inserted_ref =
          ref.try_emplace(key, static_cast<std::uint64_t>(op)).second;
      ASSERT_EQ(inserted_flat, inserted_ref);
    } else if (roll < 0.90) {
      ASSERT_EQ(flat.erase(key), ref.erase(key));
    } else {
      const auto it_flat = flat.find(key);
      const auto it_ref = ref.find(key);
      ASSERT_EQ(it_flat == flat.end(), it_ref == ref.end());
      if (it_ref != ref.end()) {
        ASSERT_EQ(it_flat->second, it_ref->second);
      }
    }
    ASSERT_EQ(flat.size(), ref.size());

    // Periodically compare full contents via iteration both ways.
    if (op % 20000 == 19999) {
      std::size_t visited = 0;
      for (const auto& [k, v] : flat) {
        const auto it = ref.find(k);
        ASSERT_NE(it, ref.end()) << k;
        ASSERT_EQ(v, it->second) << k;
        ++visited;
      }
      ASSERT_EQ(visited, ref.size());
      for (const auto& [k, v] : ref) {
        ASSERT_TRUE(flat.contains(k)) << k;
        ASSERT_EQ(flat.at(k), v) << k;
      }
    }
  }
}

// Same differential discipline, but with erase-heavy sliding-window churn
// so the table repeatedly fills, drains, and wraps.
TEST(FlatMap, SlidingWindowChurnDifferential) {
  Rng rng(0xBADC0FFEULL);
  FlatMap<std::uint64_t, std::uint64_t> flat;
  std::unordered_map<std::uint64_t, std::uint64_t> ref;
  constexpr std::uint64_t kWindow = 300;
  for (std::uint64_t i = 0; i < 30000; ++i) {
    flat[i] = i;
    ref[i] = i;
    if (i >= kWindow) {
      ASSERT_EQ(flat.erase(i - kWindow), ref.erase(i - kWindow));
    }
    if (i % 1000 == 0) {
      const auto peek = rng.below(i + 1);
      ASSERT_EQ(flat.contains(peek), ref.contains(peek) != 0);
    }
    ASSERT_EQ(flat.size(), ref.size());
  }
  std::size_t visited = 0;
  for (const auto& [k, v] : flat) {
    ASSERT_EQ(ref.at(k), v);
    ++visited;
  }
  ASSERT_EQ(visited, ref.size());
}

// operator== is content equality: the probe layout, capacity, and the
// churn history that produced each side must not matter. The snapshot
// layer depends on this — a map rebuilt from serialized entries compares
// equal to the original.
TEST(FlatMap, EqualityIgnoresLayoutAndHistory) {
  FlatMap<std::uint32_t, std::uint64_t> a;
  FlatMap<std::uint32_t, std::uint64_t> b;
  b.reserve(4096);  // different capacity from the start
  EXPECT_TRUE(a == b);  // both empty

  // Fill a forward, and b with heavy insert/erase churn landing on the
  // same final contents via a different probe history.
  for (std::uint32_t k = 0; k < 500; ++k) a[k] = k * 3;
  for (std::uint32_t k = 500; k-- > 0;) b[k] = 1;       // reverse order
  for (std::uint32_t k = 0; k < 500; k += 2) b.erase(k);  // drain half
  for (std::uint32_t k = 0; k < 500; ++k) b[k] = k * 3;   // restore
  EXPECT_TRUE(a == b);
  EXPECT_TRUE(b == a);

  b.at(123) = 0;  // one differing value
  EXPECT_FALSE(a == b);
  b.at(123) = 123 * 3;
  EXPECT_TRUE(a == b);

  b.erase(77);  // one missing key
  EXPECT_FALSE(a == b);
  EXPECT_FALSE(b == a);
  b[77] = 77 * 3;
  EXPECT_TRUE(a == b);

  b[9999] = 1;  // one extra key
  EXPECT_FALSE(a == b);
}

TEST(FlatMap, EqualityComparesMappedValuesWithTheirOwnOperator) {
  FlatMap<std::uint32_t, std::string> a;
  FlatMap<std::uint32_t, std::string> b;
  a[1] = "x";
  b[1] = "x";
  EXPECT_TRUE(a == b);
  b[1] = "y";
  EXPECT_FALSE(a == b);
}

TEST(StringArena, StoresBytesWithStableViews) {
  StringArena arena;
  const auto a = arena.store("hello");
  const auto b = arena.store("world");
  // Force many chunk allocations; early views must stay intact.
  std::vector<std::string_view> views;
  for (int i = 0; i < 50000; ++i) {
    views.push_back(arena.store("/path/to/resource" + std::to_string(i)));
  }
  EXPECT_EQ(a, "hello");
  EXPECT_EQ(b, "world");
  for (int i = 0; i < 50000; ++i) {
    ASSERT_EQ(views[static_cast<std::size_t>(i)],
              "/path/to/resource" + std::to_string(i));
  }
  EXPECT_GT(arena.chunk_count(), 1u);
  EXPECT_GE(arena.allocated_bytes(), arena.stored_bytes());
}

TEST(StringArena, OversizeStringGetsOwnChunk) {
  StringArena arena;
  const std::string big(256 * 1024, 'x');
  const auto view = arena.store(big);
  EXPECT_EQ(view.size(), big.size());
  EXPECT_EQ(view, big);
  const auto after = arena.store("small");
  EXPECT_EQ(after, "small");
}

TEST(StringArena, EmptyString) {
  StringArena arena;
  const auto v = arena.store("");
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(arena.stored_bytes(), 0u);
}

// Intern/arena round trip: every id must map back to exactly the bytes
// interned, across growth, and the arena must hold each string once.
TEST(InternArena, RoundTripSingleStorage) {
  InternTable table;
  std::vector<std::string> inputs;
  std::size_t total_bytes = 0;
  for (int i = 0; i < 20000; ++i) {
    inputs.push_back("/dir" + std::to_string(i % 97) + "/page" +
                     std::to_string(i) + ".html");
    total_bytes += inputs.back().size();
  }
  std::vector<InternId> ids;
  ids.reserve(inputs.size());
  for (const auto& s : inputs) ids.push_back(table.intern(s));

  // Re-interning returns the same ids and stores nothing new.
  const auto bytes_after_first_pass = table.arena_bytes();
  EXPECT_EQ(bytes_after_first_pass, total_bytes);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    EXPECT_EQ(table.intern(inputs[i]), ids[i]);
  }
  EXPECT_EQ(table.arena_bytes(), bytes_after_first_pass);

  for (std::size_t i = 0; i < inputs.size(); ++i) {
    ASSERT_EQ(table.str(ids[i]), inputs[i]);
    ASSERT_EQ(table.find(inputs[i]), std::optional<InternId>(ids[i]));
  }
}

TEST(InternArena, CopyIsDeepAndIndependent) {
  InternTable table;
  const auto a = table.intern("/alpha.html");
  const auto b = table.intern("/beta.html");

  InternTable copy(table);
  EXPECT_EQ(copy.str(a), "/alpha.html");
  EXPECT_EQ(copy.str(b), "/beta.html");
  EXPECT_EQ(copy.size(), 2u);

  const auto c = copy.intern("/gamma.html");
  EXPECT_EQ(c, 2u);
  EXPECT_EQ(table.size(), 2u);
  EXPECT_FALSE(table.find("/gamma.html").has_value());

  InternTable assigned;
  assigned.intern("/other.html");
  assigned = table;
  EXPECT_EQ(assigned.size(), 2u);
  EXPECT_EQ(assigned.str(a), "/alpha.html");
  EXPECT_FALSE(assigned.find("/other.html").has_value());
}

TEST(InternArena, ReserveKeepsIdsAndLookups) {
  InternTable table;
  const auto a = table.intern("before-reserve");
  table.reserve(5000);
  EXPECT_EQ(table.str(a), "before-reserve");
  EXPECT_EQ(table.intern("before-reserve"), a);
  std::string key;
  for (int i = 0; i < 5000; ++i) {
    key = "k";
    key += std::to_string(i);
    table.intern(key);
  }
  EXPECT_EQ(table.size(), 5001u);
  EXPECT_EQ(*table.find("k4999"), 5000u);
}

}  // namespace
}  // namespace piggyweb::util
